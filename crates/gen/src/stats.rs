//! Per-tensor structural statistics: the quantities the Roofline bounds and
//! the harness tables need (`M`, per-mode `M_F`, HiCOO `n_b`, storage).

use tenbench_core::coo::CooTensor;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::scalar::Scalar;

/// Structural statistics of one sparse tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorStats {
    /// Tensor order.
    pub order: usize,
    /// Dimension sizes.
    pub dims: Vec<u32>,
    /// Nonzero count (`M`).
    pub nnz: usize,
    /// `nnz / prod(dims)`.
    pub density: f64,
    /// Mode-`n` fiber count (`M_F`) for every product mode `n`.
    pub fibers_per_mode: Vec<usize>,
    /// Longest mode-`n` fiber per mode (the Ttv/Ttm load-imbalance signal).
    pub max_fiber_len_per_mode: Vec<usize>,
    /// HiCOO block count (`n_b`) at the block size used.
    pub hicoo_blocks: usize,
    /// HiCOO block edge length `B`.
    pub block_size: u32,
    /// Mean nonzeros per HiCOO block (`alpha_b`).
    pub mean_nnz_per_block: f64,
    /// Largest block's nonzero count (the GPU HiCOO-Mttkrp imbalance signal).
    pub max_nnz_per_block: usize,
    /// COO storage bytes.
    pub coo_bytes: u64,
    /// HiCOO storage bytes.
    pub hicoo_bytes: u64,
}

impl TensorStats {
    /// Compute all statistics for `x` with HiCOO blocks of edge
    /// `2^block_bits`.
    pub fn compute<S: Scalar>(x: &CooTensor<S>, block_bits: u8) -> Self {
        let mut work = x.clone();
        let order = x.order();
        let mut fibers_per_mode = Vec::with_capacity(order);
        let mut max_fiber_len_per_mode = Vec::with_capacity(order);
        for mode in 0..order {
            let fp = work.fibers(mode).expect("mode in range");
            fibers_per_mode.push(fp.num_fibers());
            max_fiber_len_per_mode.push(fp.max_fiber_len());
        }
        let h = HicooTensor::from_coo_inplace(&mut work, block_bits).expect("valid block bits");
        TensorStats {
            order,
            dims: x.shape().dims().to_vec(),
            nnz: x.nnz(),
            density: x.density(),
            fibers_per_mode,
            max_fiber_len_per_mode,
            hicoo_blocks: h.num_blocks(),
            block_size: h.block_size(),
            mean_nnz_per_block: h.mean_nnz_per_block(),
            max_nnz_per_block: h.max_nnz_per_block(),
            coo_bytes: x.storage_bytes(),
            hicoo_bytes: h.storage_bytes(),
        }
    }

    /// Mean fiber count across modes (the paper averages Ttv/Ttm over all
    /// modes).
    pub fn mean_fibers(&self) -> f64 {
        self.fibers_per_mode.iter().sum::<usize>() as f64 / self.order as f64
    }

    /// HiCOO-to-COO storage ratio (below 1 means HiCOO compresses).
    pub fn compression_ratio(&self) -> f64 {
        self.hicoo_bytes as f64 / self.coo_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use tenbench_core::shape::Shape;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 1], 2.0),
                (vec![1, 1, 1], 3.0),
                (vec![3, 3, 3], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn counts_match_hand_computation() {
        let s = TensorStats::compute(&sample(), 1);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.order, 3);
        // Mode-2 fibers: (0,0,*) x2, (1,1,*), (3,3,*) -> 3 fibers.
        assert_eq!(s.fibers_per_mode[2], 3);
        assert_eq!(s.max_fiber_len_per_mode[2], 2);
        // Blocks at B=2: (0,0,0) holds 3 nnz, (1,1,1) holds 1.
        assert_eq!(s.hicoo_blocks, 2);
        assert_eq!(s.max_nnz_per_block, 3);
        assert_eq!(s.block_size, 2);
        assert!((s.mean_nnz_per_block - 2.0).abs() < 1e-12);
    }

    #[test]
    fn storage_numbers_are_consistent() {
        let x = sample();
        let s = TensorStats::compute(&x, 1);
        assert_eq!(s.coo_bytes, x.storage_bytes());
        assert!(s.compression_ratio() > 0.0);
    }

    #[test]
    fn mean_fibers_averages_modes() {
        let s = TensorStats::compute(&sample(), 1);
        let expect = s.fibers_per_mode.iter().sum::<usize>() as f64 / 3.0;
        assert_eq!(s.mean_fibers(), expect);
    }
}
