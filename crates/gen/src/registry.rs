//! The benchmark dataset registry: every tensor of the paper's Tables 2
//! and 3, with paper-scale descriptors for printing the tables and
//! laptop-scale surrogate generation for running the experiments.
//!
//! The paper's real-world tensors (FROSTT, HaTen2, CHOA) cannot be shipped
//! — several are tens of gigabytes and `choa` is private medical data — so
//! each `r*` entry generates a seeded power-law surrogate with the same
//! order, mode-size aspect ratios, and dense/sparse mode structure
//! (DESIGN.md §2 documents why this preserves kernel behaviour). The `s*`
//! entries are the paper's own synthetic recipes at reduced scale.

use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;

use crate::kronecker::KroneckerGenerator;
use crate::powerlaw::PowerLawGenerator;

/// Which generator family produces a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Stochastic Kronecker ("Kron." in Table 3).
    Kronecker,
    /// Biased power law ("PL" in Table 3).
    PowerLaw,
    /// Surrogate for a real-world tensor (Table 2), generated as power law.
    SurrogateReal,
}

/// One benchmark dataset: paper-scale description plus surrogate generation.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row id as used in the paper's tables ("r1".."r15", "s1".."s15").
    pub id: &'static str,
    /// Tensor name ("vast", "regS", …).
    pub name: &'static str,
    /// Generator family.
    pub kind: DatasetKind,
    /// Paper-scale dimensions.
    pub paper_dims: &'static [u64],
    /// Paper-scale nonzero count.
    pub paper_nnz: u64,
    /// Power-law exponent used for surrogate generation.
    pub alpha: f64,
}

/// Dimensions above this stay power-law sparse in surrogates; smaller modes
/// are treated as dense.
const SPARSE_THRESHOLD: u32 = 1000;
/// Bench dimensions: large modes are divided by this factor.
const DIM_DIVISOR: u64 = 64;
/// Large modes are never scaled below this.
const DIM_FLOOR: u64 = 2048;
/// Bench nonzeros: paper nonzeros divided by this, then clamped.
const NNZ_DIVISOR: u64 = 256;
/// Bench nonzero clamp range.
const NNZ_RANGE: (u64, u64) = (20_000, 400_000);

impl Dataset {
    /// Tensor order.
    pub fn order(&self) -> usize {
        self.paper_dims.len()
    }

    /// Paper-scale density.
    pub fn paper_density(&self) -> f64 {
        self.paper_nnz as f64 / self.paper_dims.iter().map(|&d| d as f64).product::<f64>()
    }

    /// Laptop-scale dimensions: modes larger than the floor are divided by
    /// `DIM_DIVISOR` (never below the floor), small modes are preserved so
    /// the dense/sparse mode structure survives.
    pub fn bench_dims(&self) -> Vec<u32> {
        self.paper_dims
            .iter()
            .map(|&d| {
                if d <= DIM_FLOOR {
                    d as u32
                } else {
                    (d / DIM_DIVISOR).max(DIM_FLOOR) as u32
                }
            })
            .collect()
    }

    /// Laptop-scale nonzero count.
    pub fn bench_nnz(&self) -> usize {
        (self.paper_nnz / NNZ_DIVISOR).clamp(NNZ_RANGE.0, NNZ_RANGE.1) as usize
    }

    /// A stable per-dataset seed (so every run of the suite sees the same
    /// tensors without coordinating seeds by hand).
    pub fn default_seed(&self) -> u64 {
        // FNV-1a over the id.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Generate the bench-scale tensor with the default seed.
    pub fn generate(&self) -> CooTensor<f32> {
        self.generate_with(self.bench_nnz(), self.default_seed())
    }

    /// Generate with an explicit nonzero count and seed (the harness's
    /// `--scale` knob multiplies the default count).
    pub fn generate_with(&self, nnz: usize, seed: u64) -> CooTensor<f32> {
        let shape = Shape::new(self.bench_dims());
        match self.kind {
            DatasetKind::Kronecker => KroneckerGenerator::rmat_like(shape, nnz).generate(seed),
            DatasetKind::PowerLaw | DatasetKind::SurrogateReal => {
                PowerLawGenerator::with_threshold(shape, self.alpha, nnz, SPARSE_THRESHOLD)
                    .generate(seed)
            }
        }
    }

    /// Generator label as printed in Table 3 ("Kron." / "PL"), or "surr."
    /// for Table 2 surrogates.
    pub fn gen_label(&self) -> &'static str {
        match self.kind {
            DatasetKind::Kronecker => "Kron.",
            DatasetKind::PowerLaw => "PL",
            DatasetKind::SurrogateReal => "surr.",
        }
    }
}

macro_rules! real {
    ($id:literal, $name:literal, [$($d:literal),+], $nnz:literal) => {
        Dataset {
            id: $id,
            name: $name,
            kind: DatasetKind::SurrogateReal,
            paper_dims: &[$($d),+],
            paper_nnz: $nnz,
            alpha: 1.4,
        }
    };
}

macro_rules! synth {
    ($id:literal, $name:literal, $kind:ident, [$($d:literal),+], $nnz:literal) => {
        Dataset {
            id: $id,
            name: $name,
            kind: DatasetKind::$kind,
            paper_dims: &[$($d),+],
            paper_nnz: $nnz,
            alpha: 1.4,
        }
    };
}

/// Table 2: the paper's real-world tensors (surrogate generation).
pub static REAL_DATASETS: &[Dataset] = &[
    real!("r1", "vast", [165_000, 11_000, 2], 26_000_000),
    real!("r2", "nell2", [12_092, 9_184, 28_818], 77_000_000),
    real!("r3", "choa", [712_329, 9_827, 767], 27_000_000),
    real!("r4", "darpa", [22_476, 22_476, 23_776_223], 28_000_000),
    real!("r5", "fb-m", [23_344_784, 23_344_784, 166], 100_000_000),
    real!("r6", "fb-s", [38_955_429, 38_955_429, 532], 140_000_000),
    real!(
        "r7",
        "flickr",
        [319_686, 28_153_045, 1_607_191],
        113_000_000
    ),
    real!("r8", "deli", [532_924, 17_262_471, 2_480_308], 140_000_000),
    real!(
        "r9",
        "nell1",
        [2_902_330, 2_143_368, 25_495_389],
        144_000_000
    ),
    real!("r10", "crime4d", [6_186, 24, 77, 32], 5_000_000),
    real!("r11", "uber4d", [183, 24, 1_140, 1_717], 3_000_000),
    real!("r12", "nips4d", [2_482, 2_862, 14_036, 17], 3_000_000),
    real!("r13", "enron4d", [6_066, 5_699, 244_268, 1_176], 54_000_000),
    real!(
        "r14",
        "flickr4d",
        [319_686, 28_153_045, 1_607_191, 731],
        113_000_000
    ),
    real!(
        "r15",
        "deli4d",
        [532_924, 17_262_471, 2_480_308, 1_443],
        140_000_000
    ),
];

/// Table 3: the paper's synthetic tensor recipes.
pub static SYNTHETIC_DATASETS: &[Dataset] = &[
    synth!("s1", "regS", Kronecker, [65_536, 65_536, 65_536], 1_100_000),
    synth!(
        "s2",
        "regM",
        Kronecker,
        [1_100_000, 1_100_000, 1_100_000],
        11_500_000
    ),
    synth!(
        "s3",
        "regL",
        Kronecker,
        [8_300_000, 8_300_000, 8_300_000],
        94_000_000
    ),
    synth!("s4", "irrS", PowerLaw, [32_768, 32_768, 76], 1_000_000),
    synth!("s5", "irrM", PowerLaw, [524_288, 524_288, 126], 10_000_000),
    synth!(
        "s6",
        "irrL",
        PowerLaw,
        [4_200_000, 4_200_000, 168],
        84_000_000
    ),
    synth!(
        "s7",
        "regS4d",
        Kronecker,
        [8_192, 8_192, 8_192, 8_192],
        1_000_000
    ),
    synth!(
        "s8",
        "regM4d",
        Kronecker,
        [2_100_000, 2_100_000, 2_100_000, 2_100_000],
        11_200_000
    ),
    synth!(
        "s9",
        "regL4d",
        Kronecker,
        [8_300_000, 8_300_000, 8_300_000, 8_300_000],
        110_000_000
    ),
    synth!(
        "s10",
        "irrS4d",
        PowerLaw,
        [1_600_000, 1_600_000, 1_600_000, 82],
        1_000_000
    ),
    synth!(
        "s11",
        "irrM4d",
        PowerLaw,
        [2_600_000, 2_600_000, 2_600_000, 144],
        10_800_000
    ),
    synth!(
        "s12",
        "irrL4d",
        PowerLaw,
        [4_200_000, 4_200_000, 4_200_000, 226],
        100_000_000
    ),
    synth!(
        "s13",
        "irr2S4d",
        PowerLaw,
        [1_000_000, 1_000_000, 122, 436],
        1_600_000
    ),
    synth!(
        "s14",
        "irr2M4d",
        PowerLaw,
        [4_200_000, 4_200_000, 232, 746],
        19_900_000
    ),
    synth!(
        "s15",
        "irr2L4d",
        PowerLaw,
        [8_300_000, 8_300_000, 952, 324],
        109_000_000
    ),
];

/// Look a dataset up by id ("r3", "s12", …) across both tables.
pub fn find(id: &str) -> Option<&'static Dataset> {
    REAL_DATASETS
        .iter()
        .chain(SYNTHETIC_DATASETS)
        .find(|d| d.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_sizes_match_the_paper() {
        assert_eq!(REAL_DATASETS.len(), 15);
        assert_eq!(SYNTHETIC_DATASETS.len(), 15);
    }

    #[test]
    fn orders_match_the_tables() {
        // Table 2: r1-r9 third order, r10-r15 fourth order.
        for d in REAL_DATASETS.iter().take(9) {
            assert_eq!(d.order(), 3, "{}", d.id);
        }
        for d in REAL_DATASETS.iter().skip(9) {
            assert_eq!(d.order(), 4, "{}", d.id);
        }
        // Table 3: s1-s6 third order, s7-s15 fourth order.
        for d in SYNTHETIC_DATASETS.iter().take(6) {
            assert_eq!(d.order(), 3, "{}", d.id);
        }
        for d in SYNTHETIC_DATASETS.iter().skip(6) {
            assert_eq!(d.order(), 4, "{}", d.id);
        }
    }

    #[test]
    fn paper_densities_are_in_table_range() {
        // vast is the densest real tensor (~6.9e-3), deli4d among the
        // sparsest (~4e-15).
        let vast = find("r1").unwrap();
        assert!((vast.paper_density() - 6.9e-3).abs() / 6.9e-3 < 0.1);
        let deli4d = find("r15").unwrap();
        assert!(deli4d.paper_density() < 1e-13);
    }

    #[test]
    fn bench_dims_preserve_small_modes() {
        let vast = find("r1").unwrap();
        let dims = vast.bench_dims();
        assert_eq!(dims[2], 2); // short mode survives scaling
        assert!(dims[0] >= 2048);
        let uber = find("r11").unwrap();
        assert_eq!(uber.bench_dims(), vec![183, 24, 1140, 1717]);
    }

    #[test]
    fn bench_nnz_is_clamped() {
        for d in REAL_DATASETS.iter().chain(SYNTHETIC_DATASETS) {
            let n = d.bench_nnz();
            assert!((20_000..=400_000).contains(&n), "{}: {n}", d.id);
        }
    }

    #[test]
    fn find_resolves_both_tables() {
        assert_eq!(find("r7").unwrap().name, "flickr");
        assert_eq!(find("s13").unwrap().name, "irr2S4d");
        assert!(find("x1").is_none());
    }

    #[test]
    fn generation_smoke_small() {
        // Generate a reduced instance of one dataset from each family.
        for (id, nnz) in [("r1", 5_000usize), ("s1", 5_000), ("s4", 5_000)] {
            let d = find(id).unwrap();
            let t = d.generate_with(nnz, 42);
            assert_eq!(t.nnz(), nnz, "{id}");
            assert!(t.validate().is_ok(), "{id}");
            assert_eq!(t.order(), d.order(), "{id}");
        }
    }

    #[test]
    fn default_seeds_are_distinct() {
        let mut seeds: Vec<u64> = REAL_DATASETS
            .iter()
            .chain(SYNTHETIC_DATASETS)
            .map(|d| d.default_seed())
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 30);
    }
}
