//! Biased power-law tensor generation (paper §4.2.2).
//!
//! The FireHose streaming benchmark's "biased power law" front-end emits an
//! edge stream whose key frequencies follow a power law; the paper combines
//! such streams into slices of higher-order tensors ("this process, when
//! repeated on 3rd order tensors can generate a sparse tensor with N
//! modes"). Here each *sparse* mode draws its index from a bounded Zipf
//! distribution while each *dense* mode cycles through its (much smaller)
//! extent, which makes those modes completely dense — the structure the
//! paper ascribes to its irregular tensors.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;

use crate::zipf::ZipfSampler;

/// Configuration for the biased power-law tensor generator.
#[derive(Debug, Clone)]
pub struct PowerLawGenerator {
    /// Target tensor shape.
    pub shape: Shape,
    /// Modes whose indices follow the power law (the hypersparse,
    /// equidimensional modes).
    pub sparse_modes: Vec<usize>,
    /// Power-law exponent for the sparse modes (FireHose biases around
    /// 1.3–2.0; larger is more skewed).
    pub alpha: f64,
    /// Number of distinct nonzeros to generate.
    pub nnz: usize,
}

impl PowerLawGenerator {
    /// Convenience constructor: modes with extent greater than `threshold`
    /// are treated as power-law sparse, the rest as small dense modes.
    pub fn with_threshold(shape: Shape, alpha: f64, nnz: usize, threshold: u32) -> Self {
        let sparse_modes = (0..shape.order())
            .filter(|&m| shape.dim(m) > threshold)
            .collect();
        PowerLawGenerator {
            shape,
            sparse_modes,
            alpha,
            nnz,
        }
    }

    /// Generate the tensor. Dense modes are guaranteed covered (the first
    /// draws cycle deterministically through their extents); sparse modes
    /// are Zipf-distributed. Duplicate coordinates are rejected; generation
    /// gives up after a generous attempt budget on over-dense requests.
    pub fn generate(&self, seed: u64) -> CooTensor<f32> {
        let order = self.shape.order();
        let mut rng = StdRng::seed_from_u64(seed);
        let samplers: Vec<Option<ZipfSampler>> = (0..order)
            .map(|m| {
                if self.sparse_modes.contains(&m) {
                    Some(ZipfSampler::new(self.shape.dim(m) as u64, self.alpha))
                } else {
                    None
                }
            })
            .collect();

        let mut seen: HashSet<Vec<u32>> = HashSet::with_capacity(self.nnz * 2);
        let mut entries: Vec<(Vec<u32>, f32)> = Vec::with_capacity(self.nnz);
        let max_attempts = self.nnz.saturating_mul(100).max(10_000);
        let mut attempts = 0usize;
        let mut serial = 0u64;

        while entries.len() < self.nnz && attempts < max_attempts {
            attempts += 1;
            let mut coord = vec![0u32; order];
            for m in 0..order {
                coord[m] = match &samplers[m] {
                    Some(z) => z.sample_index(&mut rng) as u32,
                    // Dense mode: round-robin guarantees full coverage once
                    // nnz >= extent, then keeps the marginal uniform.
                    None => (serial % self.shape.dim(m) as u64) as u32,
                };
            }
            serial += 1;
            if seen.insert(coord.clone()) {
                let v = rng.random::<f32>().max(f32::MIN_POSITIVE);
                entries.push((coord, v));
            }
        }

        CooTensor::from_entries(self.shape.clone(), entries)
            .expect("generated coordinates are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn irr3(nnz: usize) -> PowerLawGenerator {
        // The paper's irregular-3D shape: two equidimensional sparse modes,
        // one small dense mode.
        PowerLawGenerator::with_threshold(Shape::new(vec![32_768, 32_768, 76]), 1.4, nnz, 1000)
    }

    #[test]
    fn generates_requested_nnz_and_validates() {
        let t = irr3(10_000).generate(1);
        assert_eq!(t.nnz(), 10_000);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn sparse_and_dense_modes_detected_by_threshold() {
        let g = irr3(10);
        assert_eq!(g.sparse_modes, vec![0, 1]);
    }

    #[test]
    fn dense_mode_is_completely_covered() {
        let t = irr3(5_000).generate(2);
        let mut present = [false; 76];
        for &k in t.mode_inds(2) {
            present[k as usize] = true;
        }
        assert!(present.iter().all(|&p| p), "dense mode has holes");
    }

    #[test]
    fn sparse_modes_are_head_heavy() {
        let t = irr3(20_000).generate(3);
        let dim = 32_768f64;
        for m in 0..2 {
            let mean: f64 = t.mode_inds(m).iter().map(|&i| i as f64).sum::<f64>() / t.nnz() as f64;
            assert!(mean < dim / 4.0, "mode {m} mean {mean} not power-law");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = irr3(2_000);
        assert_eq!(g.generate(9).to_map(), g.generate(9).to_map());
        assert_ne!(g.generate(9).to_map(), g.generate(10).to_map());
    }

    #[test]
    fn fourth_order_two_dense_modes() {
        let g = PowerLawGenerator::with_threshold(
            Shape::new(vec![100_000, 100_000, 122, 436]),
            1.4,
            8_000,
            1000,
        );
        assert_eq!(g.sparse_modes, vec![0, 1]);
        let t = g.generate(4);
        assert_eq!(t.order(), 4);
        assert_eq!(t.nnz(), 8_000);
    }

    #[test]
    fn over_dense_request_saturates() {
        let g = PowerLawGenerator::with_threshold(Shape::new(vec![4, 4, 4]), 1.4, 1000, 1);
        let t = g.generate(5);
        assert!(t.nnz() <= 64);
    }
}
