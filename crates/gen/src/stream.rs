//! Streaming edge generation — the FireHose front-end the paper extends
//! (§4.2.2): "the generator produces a stream of edges that when combined
//! form a graph respecting the power law distribution. This is used to
//! create tensors by combining together the sparse graphs to form slices
//! of a third order tensor ... This process, when repeated on 3rd order
//! tensors can generate a sparse tensor with N modes."
//!
//! [`EdgeStream`] is the unbounded packet source; [`stack_slices`] folds
//! consecutive stream windows into the slices of a third-order tensor
//! (values count packet multiplicity within a window, FireHose-style), and
//! [`stack_epochs`] repeats that over epochs for a fourth-order tensor.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;

use crate::zipf::ZipfSampler;

/// An unbounded stream of `(src, dst)` edge packets whose endpoints follow
/// bounded power laws — the biased generator's output.
#[derive(Debug)]
pub struct EdgeStream {
    src: ZipfSampler,
    dst: ZipfSampler,
    rng: StdRng,
}

impl EdgeStream {
    /// A stream over `src_dim x dst_dim` endpoints with exponent `alpha`.
    pub fn new(src_dim: u32, dst_dim: u32, alpha: f64, seed: u64) -> Self {
        EdgeStream {
            src: ZipfSampler::new(src_dim as u64, alpha),
            dst: ZipfSampler::new(dst_dim as u64, alpha),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Iterator for EdgeStream {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        Some((
            self.src.sample_index(&mut self.rng) as u32,
            self.dst.sample_index(&mut self.rng) as u32,
        ))
    }
}

/// Consume `num_slices` windows of `edges_per_slice` packets and stack them
/// as the slices of a third-order `src x dst x num_slices` tensor. The
/// value of `(i, j, k)` is the number of times edge `(i, j)` appeared in
/// window `k` (packet counting, as in FireHose's analytics).
pub fn stack_slices(
    stream: &mut EdgeStream,
    src_dim: u32,
    dst_dim: u32,
    edges_per_slice: usize,
    num_slices: usize,
) -> CooTensor<f32> {
    let mut counts: HashMap<(u32, u32, u32), u32> = HashMap::new();
    for k in 0..num_slices as u32 {
        for _ in 0..edges_per_slice {
            let (i, j) = stream.next().expect("stream is unbounded");
            *counts.entry((i, j, k)).or_insert(0) += 1;
        }
    }
    let entries: Vec<(Vec<u32>, f32)> = counts
        .into_iter()
        .map(|((i, j, k), c)| (vec![i, j, k], c as f32))
        .collect();
    CooTensor::from_entries(
        Shape::new(vec![src_dim, dst_dim, num_slices as u32]),
        entries,
    )
    .expect("coordinates in range by construction")
}

/// Repeat [`stack_slices`] over `num_epochs` epochs to produce a
/// fourth-order `src x dst x num_slices x num_epochs` tensor — the paper's
/// "repeated on 3rd order tensors" construction.
pub fn stack_epochs(
    stream: &mut EdgeStream,
    src_dim: u32,
    dst_dim: u32,
    edges_per_slice: usize,
    num_slices: usize,
    num_epochs: usize,
) -> CooTensor<f32> {
    let mut counts: HashMap<(u32, u32, u32, u32), u32> = HashMap::new();
    for e in 0..num_epochs as u32 {
        for k in 0..num_slices as u32 {
            for _ in 0..edges_per_slice {
                let (i, j) = stream.next().expect("stream is unbounded");
                *counts.entry((i, j, k, e)).or_insert(0) += 1;
            }
        }
    }
    let entries: Vec<(Vec<u32>, f32)> = counts
        .into_iter()
        .map(|((i, j, k, e), c)| (vec![i, j, k, e], c as f32))
        .collect();
    CooTensor::from_entries(
        Shape::new(vec![src_dim, dst_dim, num_slices as u32, num_epochs as u32]),
        entries,
    )
    .expect("coordinates in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_in_range() {
        let a: Vec<(u32, u32)> = EdgeStream::new(1000, 500, 1.5, 7).take(200).collect();
        let b: Vec<(u32, u32)> = EdgeStream::new(1000, 500, 1.5, 7).take(200).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&(i, j)| i < 1000 && j < 500));
        let c: Vec<(u32, u32)> = EdgeStream::new(1000, 500, 1.5, 8).take(200).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn slices_partition_the_packet_budget() {
        let mut s = EdgeStream::new(4096, 4096, 1.4, 1);
        let t = stack_slices(&mut s, 4096, 4096, 2_000, 5);
        assert_eq!(t.order(), 3);
        assert_eq!(t.shape().dims()[2], 5);
        // Total multiplicity equals the packet count.
        let total: f64 = t.vals().iter().map(|&v| v as f64).sum();
        assert_eq!(total, 10_000.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn hot_edges_accumulate_multiplicity() {
        // With a strong bias the head edge repeats within a window.
        let mut s = EdgeStream::new(100_000, 100_000, 2.0, 3);
        let t = stack_slices(&mut s, 100_000, 100_000, 20_000, 1);
        let max_count = t.vals().iter().cloned().fold(0.0f32, f32::max);
        assert!(max_count > 1.0, "no repeated packets at all?");
        assert!(t.nnz() < 20_000);
    }

    #[test]
    fn epochs_produce_fourth_order() {
        let mut s = EdgeStream::new(2048, 2048, 1.4, 5);
        let t = stack_epochs(&mut s, 2048, 2048, 500, 4, 3);
        assert_eq!(t.order(), 4);
        assert_eq!(t.shape().dims()[2..], [4, 3]);
        let total: f64 = t.vals().iter().map(|&v| v as f64).sum();
        assert_eq!(total, (500 * 4 * 3) as f64);
    }

    #[test]
    fn every_slice_is_nonempty() {
        let mut s = EdgeStream::new(512, 512, 1.3, 11);
        let t = stack_slices(&mut s, 512, 512, 300, 8);
        let mut seen = [false; 8];
        for &k in t.mode_inds(2) {
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
