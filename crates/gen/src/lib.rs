//! # tenbench-gen
//!
//! Synthetic sparse tensor generation for the `tenbench` suite (paper §4).
//!
//! Two generator families are provided, both extended from synthetic graph
//! generation exactly as the paper describes:
//!
//! * [`kronecker`] — the stochastic Kronecker model (Graph500-style R-MAT
//!   descent generalized to `N` modes), producing equidimensional "regular"
//!   tensors with power-law degree distributions; oversized coordinates are
//!   stripped off per the paper's strip-off rule.
//! * [`powerlaw`] — a FireHose-style biased power-law stream generator
//!   whose edge streams are stacked into slices of 3rd/4th-order
//!   "irregular" tensors with one or two small dense modes.
//!
//! [`registry`] describes every tensor of the paper's Tables 2 and 3 (the
//! real-world tensors are replaced by seeded surrogates with the same order,
//! aspect ratios, and sparsity regime — see DESIGN.md §2) and generates
//! laptop-scale instances of each. [`stats`] computes the per-tensor
//! quantities (fiber counts, block counts) the Roofline bounds need.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kronecker;
pub mod powerlaw;
pub mod registry;
pub mod stats;
pub mod stream;
pub mod zipf;

pub use kronecker::KroneckerGenerator;
pub use powerlaw::PowerLawGenerator;
pub use registry::{Dataset, DatasetKind, REAL_DATASETS, SYNTHETIC_DATASETS};
pub use stats::TensorStats;
pub use stream::EdgeStream;
