//! Bounded Zipf sampling by rejection inversion (Hörmann & Derflinger), the
//! workhorse behind the biased power-law generator. Sampling is O(1) per
//! draw with no per-element tables, so hypersparse modes with millions of
//! indices cost nothing to set up.

use rand::{Rng, RngExt};

/// Samples `k ∈ [1, n]` with `P(k) ∝ k^{-alpha}`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// Create a sampler over `1..=n` with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0` (configuration errors).
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf support must be nonempty");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let h_integral_x1 = h_integral(1.5, alpha) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5, alpha);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, alpha) - h(2.0, alpha), alpha);
        ZipfSampler {
            n,
            alpha,
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// The support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw one 1-based sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u: f64 = rng.random::<f64>();
            let u = self.h_integral_n + u * (self.h_integral_x1 - self.h_integral_n);
            let x = h_integral_inverse(u, self.alpha);
            let mut k = (x + 0.5) as i64;
            if k < 1 {
                k = 1;
            } else if k as u64 > self.n {
                k = self.n as i64;
            }
            let kf = k as f64;
            if kf - x <= self.s || u >= h_integral(kf + 0.5, self.alpha) - h(kf, self.alpha) {
                return k as u64;
            }
        }
    }

    /// Draw one 0-based sample in `[0, n)`.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let k = self.sample(rng);
        // `sample` clamps into [1, n], so `k - 1` cannot underflow — but
        // that invariant lives in numeric code three helpers away. Assert
        // it in debug builds and saturate in release so a future clamp
        // regression yields index 0, not a silent huge index.
        debug_assert!(
            (1..=self.n).contains(&k),
            "Zipf sample {k} outside [1, {}]",
            self.n
        );
        k.saturating_sub(1).min(self.n - 1)
    }
}

/// `∫ h` — with `h(x) = x^{-alpha}` this is `(x^{1-alpha} - 1) / (1 - alpha)`
/// (`ln x` when `alpha == 1`), written in a numerically stable `expm1` form.
fn h_integral(x: f64, alpha: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - alpha) * log_x) * log_x
}

fn h(x: f64, alpha: f64) -> f64 {
    (-alpha * x.ln()).exp()
}

fn h_integral_inverse(x: f64, alpha: f64) -> f64 {
    let mut t = x * (1.0 - alpha);
    if t < -1.0 {
        // Numerical guard: t must stay above -1 for the log below.
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// `log1p(x)/x`, continuous at 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, continuous at 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(1000, 1.3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn distribution_is_head_heavy() {
        let z = ZipfSampler::new(10_000, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        let total = 50_000;
        for _ in 0..total {
            if z.sample(&mut rng) <= 10 {
                head += 1;
            }
        }
        // With alpha = 1.5 the first 10 ranks carry well over a third of the
        // mass; uniform sampling would put only 0.1% there.
        assert!(head as f64 / total as f64 > 0.3, "head mass {head}");
    }

    #[test]
    fn frequencies_follow_power_law_slope() {
        let z = ZipfSampler::new(100_000, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut c1 = 0u32;
        let mut c2 = 0u32;
        let n = 200_000;
        for _ in 0..n {
            match z.sample(&mut rng) {
                1 => c1 += 1,
                2 => c2 += 1,
                _ => {}
            }
        }
        // P(1)/P(2) = 2^alpha = 4; allow generous sampling noise.
        let ratio = c1 as f64 / c2 as f64;
        assert!((2.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alpha_one_is_supported() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!((1..=100).contains(&z.sample(&mut rng)));
        }
    }

    #[test]
    fn single_element_support() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(z.sample(&mut rng), 1);
        assert_eq!(z.sample_index(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_support_panics() {
        let _ = ZipfSampler::new(0, 1.5);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        // The serving stress generator indexes a tensor pool with
        // `sample_index`; pin the 1-based/0-based invariants across the
        // whole (n, alpha, seed) space, including the extreme alphas where
        // the rejection-inversion arithmetic is least comfortable.
        #[test]
        fn sample_respects_bounds_across_seeds_and_alphas(
            n in 1u64..5000,
            alpha_tenths in 1u64..60,
            seed in 0u64..1_000_000,
        ) {
            let z = ZipfSampler::new(n, alpha_tenths as f64 / 10.0);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                let k = z.sample(&mut rng);
                proptest::prop_assert!((1..=n).contains(&k), "sample {k} out of [1, {n}]");
                let i = z.sample_index(&mut rng);
                proptest::prop_assert!(i < n, "index {i} out of [0, {n})");
            }
        }
    }
}
