//! Resume-determinism acceptance: a CP-ALS job interrupted at iteration k
//! and resumed from its checkpoint produces factors bitwise-identical to
//! an uninterrupted run of the same spec — at 1 thread and at 4 threads.
//!
//! The comparison is on the serialized `TNC1` final checkpoint, which
//! holds every factor matrix, lambda, the fit (f64 bits), and the
//! iteration count: byte equality there IS bitwise factor equality.
//! Thread-count determinism rests on jobs pinning CP-ALS to
//! `MttkrpStrategy::Scheduled` and installing a fixed-size pool around
//! every step (`JobConfig::threads`).

use std::sync::Arc;

use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;
use tenbench_serve::{
    InjectedFault, InlineStepRunner, JobConfig, JobKind, JobOutcome, JobService, JobSpec,
    ScriptedFaults,
};

fn tensor() -> Arc<CooTensor<f32>> {
    Arc::new(
        CooTensor::from_entries(
            Shape::new(vec![20, 18, 16]),
            (0..600u32)
                .map(|i| {
                    (
                        vec![(i * 7 + 3) % 20, (i * 13 + 1) % 18, (i * 29) % 16],
                        (i % 97) as f32 * 0.125 + 0.5,
                    )
                })
                .collect(),
        )
        .unwrap(),
    )
}

fn spec(x: &Arc<CooTensor<f32>>) -> JobSpec {
    JobSpec {
        kind: JobKind::CpAls {
            rank: 5,
            max_iters: 7,
            tol: 0.0,
            seed: 42,
        },
        tensor: x.clone(),
    }
}

fn cfg(threads: usize) -> JobConfig {
    JobConfig {
        workers: 1,
        max_step_seconds: 30.0,
        max_recoveries: 4,
        threads: Some(threads),
        ..JobConfig::default()
    }
}

fn run_clean(x: &Arc<CooTensor<f32>>, threads: usize) -> JobOutcome {
    let svc = JobService::start_default(cfg(threads));
    let out = svc.submit(spec(x)).unwrap().wait().unwrap();
    svc.shutdown();
    out
}

/// Interrupt iteration `k` with a panic; the engine resumes from the
/// checkpoint written after iteration `k-1` and recomputes forward.
fn run_interrupted(x: &Arc<CooTensor<f32>>, threads: usize, k: usize) -> JobOutcome {
    let faults = ScriptedFaults::new(vec![(1, k, InjectedFault::PanicInStep)]);
    let svc = JobService::start(
        cfg(threads),
        Arc::new(InlineStepRunner),
        Some(Arc::new(faults)),
    );
    let out = svc.submit(spec(x)).unwrap().wait().unwrap();
    let report = svc.shutdown();
    assert_eq!(report.lost(), 0);
    assert!(report.recoveries >= 1, "the injected fault never fired");
    out
}

fn assert_bitwise_match(clean: &JobOutcome, resumed: &JobOutcome, label: &str) {
    assert!(resumed.recoveries >= 1, "{label}: no recovery recorded");
    assert!(
        resumed.progress.iter().any(|p| p.resumed),
        "{label}: no resume boundary in the progress stream"
    );
    assert_eq!(
        resumed.iterations, clean.iterations,
        "{label}: iteration count"
    );
    assert_eq!(
        resumed.fit.to_bits(),
        clean.fit.to_bits(),
        "{label}: final fit differs"
    );
    assert_eq!(
        resumed.final_checkpoint, clean.final_checkpoint,
        "{label}: resumed factors are not bitwise-identical to the clean run"
    );
    // Per-iteration fits from the resume boundary onward retrace the
    // clean run sample-for-sample (earlier samples match trivially: the
    // faulted attempt published nothing).
    for (a, b) in clean.progress.iter().zip(resumed.progress.iter()) {
        assert_eq!(a.iteration, b.iteration, "{label}: progress iteration");
        assert_eq!(
            a.fit.to_bits(),
            b.fit.to_bits(),
            "{label}: fit at iteration {} differs",
            a.iteration
        );
    }
}

#[test]
fn resume_is_bitwise_identical_at_1_thread() {
    let x = tensor();
    let clean = run_clean(&x, 1);
    let resumed = run_interrupted(&x, 1, 3);
    assert_bitwise_match(&clean, &resumed, "1 thread, interrupt at k=3");
}

#[test]
fn resume_is_bitwise_identical_at_4_threads() {
    let x = tensor();
    let clean = run_clean(&x, 4);
    let resumed = run_interrupted(&x, 4, 3);
    assert_bitwise_match(&clean, &resumed, "4 threads, interrupt at k=3");
}

#[test]
fn resume_at_first_iteration_is_bitwise_identical() {
    // A fault on the very first step resumes from the iteration-0
    // checkpoint (seeded init), not a reinit.
    let x = tensor();
    let clean = run_clean(&x, 2);
    let resumed = run_interrupted(&x, 2, 0);
    assert_eq!(
        resumed.reinits, 0,
        "iteration-0 checkpoint should cover this"
    );
    assert_bitwise_match(&clean, &resumed, "2 threads, interrupt at k=0");
}

#[test]
fn clean_runs_are_reproducible_across_services() {
    // Baseline sanity for the comparisons above: two services, same spec,
    // same thread count, byte-identical final checkpoints.
    let x = tensor();
    let a = run_clean(&x, 4);
    let b = run_clean(&x, 4);
    assert_eq!(a.final_checkpoint, b.final_checkpoint);
}
