//! The networked serving tier: a TCP front-end over sharded
//! [`KernelService`]s.
//!
//! One `TNF1` frame ([`tenbench_io::frame`]) per request and per
//! response. A request payload is a small fixed header (kernel, format,
//! mode, rank, deadline) followed by the tensor in the `TNB2` binary
//! format — the same untrusted-input discipline as the file readers, with
//! the allocation budget enforced before anything is sized from the wire.
//! Responses carry a one-byte status mapping the service's typed
//! [`RejectReason`]/[`ServeError`] onto the wire, so overload surfaces to
//! remote clients exactly as it does to in-process ones: queue-full,
//! deadline-expired, and shutting-down are *answers*, never dropped
//! connections.
//!
//! Behind the accept loop the request space is partitioned into N shards
//! by [`CooTensor::fingerprint`]: each shard is a full [`KernelService`]
//! owning its slice of the prep cache and its own admission queue, so one
//! hot tensor cannot stall admission for the rest of the key space.
//!
//! Causal tracing crosses the socket in the frame header's `ctx` word:
//! the client stamps its [`TraceCtx`] id, the connection handler mints a
//! child of that id ([`TraceCtx::mint_with_parent`]) and installs it
//! around the submit, and the service mints the request ctx as a child of
//! *that* — a flight-recorder dump stitches client → connection → shard →
//! pool worker into one chain.
//!
//! Protocol errors are typed, never fatal to the process: an undecodable
//! request payload inside a valid frame gets a [`WireStatus::BadRequest`]
//! response (the connection lives on — frame boundaries are intact), and
//! stream-level corruption (bad magic, CRC mismatch, truncation) gets a
//! best-effort [`FrameKind::Error`] frame before the connection closes.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tenbench_core::coo::CooTensor;
use tenbench_core::kernels::Kernel;
use tenbench_io::bin::{read_bin_with, ReadOptions};
use tenbench_io::frame::{read_frame, write_frame, FrameKind};
use tenbench_obs as obs;

use crate::cache::CacheStats;
use crate::service::{
    Executor, FormatKind, KernelService, RejectReason, Request, Response, ServeConfig, ServeError,
    ServeReport,
};

/// Response status codes on the wire. The discriminant is the wire value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// The kernel ran; the response carries its metrics.
    Ok = 0,
    /// Shed at admission: the shard's queue was at its bound.
    QueueFull = 1,
    /// Shed at dequeue: the deadline expired while queued.
    DeadlineExpired = 2,
    /// The shard (or the whole server) is shutting down.
    ShuttingDown = 3,
    /// The executor ran and failed (typed message in `detail`).
    Failed = 4,
    /// No worker answered within the server's wait cap.
    WorkerLost = 5,
    /// The request frame was well-formed but its payload was not a
    /// decodable request (bad kernel code, corrupt embedded tensor, ...).
    BadRequest = 6,
}

impl WireStatus {
    /// Decode a wire value.
    pub fn from_u8(v: u8) -> Option<WireStatus> {
        match v {
            0 => Some(WireStatus::Ok),
            1 => Some(WireStatus::QueueFull),
            2 => Some(WireStatus::DeadlineExpired),
            3 => Some(WireStatus::ShuttingDown),
            4 => Some(WireStatus::Failed),
            5 => Some(WireStatus::WorkerLost),
            6 => Some(WireStatus::BadRequest),
            _ => None,
        }
    }

    /// Stable lowercase label for reports.
    pub fn name(self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::QueueFull => "queue_full",
            WireStatus::DeadlineExpired => "deadline_expired",
            WireStatus::ShuttingDown => "shutting_down",
            WireStatus::Failed => "failed",
            WireStatus::WorkerLost => "worker_lost",
            WireStatus::BadRequest => "bad_request",
        }
    }

    /// Whether this status is a typed load-shed (client should back off).
    pub fn is_rejection(self) -> bool {
        matches!(
            self,
            WireStatus::QueueFull | WireStatus::DeadlineExpired | WireStatus::ShuttingDown
        )
    }
}

fn kernel_code(k: Kernel) -> u8 {
    match k {
        Kernel::Tew => 0,
        Kernel::Ts => 1,
        Kernel::Ttv => 2,
        Kernel::Ttm => 3,
        Kernel::Mttkrp => 4,
    }
}

fn kernel_from(code: u8) -> Option<Kernel> {
    match code {
        0 => Some(Kernel::Tew),
        1 => Some(Kernel::Ts),
        2 => Some(Kernel::Ttv),
        3 => Some(Kernel::Ttm),
        4 => Some(Kernel::Mttkrp),
        _ => None,
    }
}

/// The non-tensor half of a wire request.
#[derive(Debug, Clone, Copy)]
pub struct WireRequest {
    /// Which kernel to run.
    pub kernel: Kernel,
    /// Storage format to execute on.
    pub format: FormatKind,
    /// Product mode.
    pub mode: u8,
    /// Factor rank (0 for rank-free kernels).
    pub rank: u16,
    /// Queue deadline in milliseconds; 0 means none.
    pub deadline_ms: u32,
}

/// Encode a request payload: the fixed header followed by the tensor's
/// pre-serialized `TNB2` bytes (serialize once with
/// [`tenbench_io::bin::write_bin`], reuse across requests).
pub fn encode_request(req: &WireRequest, tensor_tnb2: &[u8]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(9 + tensor_tnb2.len());
    buf.put_u8(kernel_code(req.kernel));
    buf.put_u8(match req.format {
        FormatKind::Coo => 0,
        FormatKind::Hicoo => 1,
    });
    buf.put_u8(req.mode);
    buf.put_u16_le(req.rank);
    buf.put_u32_le(req.deadline_ms);
    buf.put_slice(tensor_tnb2);
    buf.into()
}

/// Decode a request payload. The tensor parses zero-copy out of the
/// frame's buffer ([`Bytes::chunk`]) under `max_tensor_bytes`.
fn decode_request(payload: &mut Bytes, max_tensor_bytes: u64) -> Result<Request, String> {
    if payload.remaining() < 9 {
        return Err(format!(
            "request header needs 9 bytes, got {}",
            payload.remaining()
        ));
    }
    let kernel = kernel_from(payload.get_u8()).ok_or("unknown kernel code")?;
    let format = match payload.get_u8() {
        0 => FormatKind::Coo,
        1 => FormatKind::Hicoo,
        other => return Err(format!("unknown format code {other}")),
    };
    let mode = payload.get_u8() as usize;
    let rank = payload.get_u16_le() as usize;
    let deadline_ms = payload.get_u32_le();
    let tensor: CooTensor<f32> = read_bin_with(
        payload.chunk(),
        ReadOptions {
            max_bytes: max_tensor_bytes,
        },
    )
    .map_err(|e| format!("embedded tensor: {e}"))?;
    Ok(Request {
        kernel,
        format,
        mode,
        rank,
        tensor: Arc::new(tensor),
        deadline: (deadline_ms > 0).then(|| Duration::from_millis(u64::from(deadline_ms))),
    })
}

/// A decoded response frame.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// Outcome status.
    pub status: WireStatus,
    /// Kernel output digest (0 unless `status == Ok`).
    pub digest: f64,
    /// Milliseconds queued server-side.
    pub queued_ms: f64,
    /// Milliseconds of batch preparation + execution.
    pub exec_ms: f64,
    /// Submit-to-response milliseconds server-side.
    pub total_ms: f64,
    /// Requests the answering batch coalesced.
    pub batch_size: u32,
    /// Whether format preparation was served from the shard's cache.
    pub cache_hit: bool,
    /// Strategy label for `Ok`; typed error detail otherwise.
    pub detail: String,
}

fn encode_response(status: WireStatus, resp: Option<&Response>, detail: &str) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + detail.len());
    buf.put_u8(status as u8);
    match resp {
        Some(r) => {
            buf.put_f64_le(r.digest);
            buf.put_f64_le(r.queued_ms);
            buf.put_f64_le(r.exec_ms);
            buf.put_f64_le(r.total_ms);
            buf.put_u32_le(r.batch_size as u32);
            buf.put_u8(u8::from(r.cache_hit));
            put_str(&mut buf, &r.strategy);
        }
        None => put_str(&mut buf, detail),
    }
    buf.into()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    // Truncate on a char boundary to fit the u16 length prefix.
    let mut end = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    buf.put_u16_le(end as u16);
    buf.put_slice(&s.as_bytes()[..end]);
}

fn get_str(payload: &mut Bytes) -> Result<String, String> {
    if payload.remaining() < 2 {
        return Err("truncated string length".into());
    }
    let len = payload.get_u16_le() as usize;
    if payload.remaining() < len {
        return Err(format!(
            "string claims {len} bytes, {} remain",
            payload.remaining()
        ));
    }
    let s = String::from_utf8_lossy(&payload.chunk()[..len]).into_owned();
    payload.advance(len);
    Ok(s)
}

/// Decode a response payload (the client side of [`encode_response`]).
pub fn decode_response(payload: &mut Bytes) -> Result<WireResponse, String> {
    if !payload.has_remaining() {
        return Err("empty response payload".into());
    }
    let status = WireStatus::from_u8(payload.get_u8()).ok_or("unknown status code")?;
    if status == WireStatus::Ok {
        if payload.remaining() < 8 * 4 + 4 + 1 {
            return Err("truncated ok-response body".into());
        }
        let digest = payload.get_f64_le();
        let queued_ms = payload.get_f64_le();
        let exec_ms = payload.get_f64_le();
        let total_ms = payload.get_f64_le();
        let batch_size = payload.get_u32_le();
        let cache_hit = payload.get_u8() != 0;
        let detail = get_str(payload)?;
        Ok(WireResponse {
            status,
            digest,
            queued_ms,
            exec_ms,
            total_ms,
            batch_size,
            cache_hit,
            detail,
        })
    } else {
        let detail = get_str(payload)?;
        Ok(WireResponse {
            status,
            digest: 0.0,
            queued_ms: 0.0,
            exec_ms: 0.0,
            total_ms: 0.0,
            batch_size: 0,
            cache_hit: false,
            detail,
        })
    }
}

fn status_of(err: &ServeError) -> WireStatus {
    match err {
        ServeError::Rejected(RejectReason::QueueFull { .. }) => WireStatus::QueueFull,
        ServeError::Rejected(RejectReason::DeadlineExpired { .. }) => WireStatus::DeadlineExpired,
        ServeError::Rejected(RejectReason::ShuttingDown) => WireStatus::ShuttingDown,
        ServeError::Failed(_) => WireStatus::Failed,
        ServeError::WorkerLost { .. } => WireStatus::WorkerLost,
    }
}

/// Network-tier tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Shard count: independent [`KernelService`]s partitioned by tensor
    /// fingerprint.
    pub shards: usize,
    /// Per-shard service configuration. `cache_bytes` is the *total*
    /// budget: the server divides it evenly so N shards together hold
    /// the same bytes one unsharded service would.
    pub serve: ServeConfig,
    /// Budget for one request's embedded tensor; larger frames are
    /// refused before allocation.
    pub max_request_bytes: u64,
    /// How long a connection handler waits for a shard's answer before
    /// reporting [`WireStatus::WorkerLost`].
    pub wait: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            shards: 2,
            serve: ServeConfig::default(),
            max_request_bytes: 256 << 20,
            wait: Duration::from_secs(60),
        }
    }
}

#[derive(Default)]
struct WireCounters {
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    protocol_errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

struct ServerState {
    cfg: NetConfig,
    shards: Vec<Arc<KernelService>>,
    /// Live connections by id, so shutdown can unblock handler reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    wire: WireCounters,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The TCP front-end. Owns the accept loop, the connection handlers, and
/// the shard services; [`NetServer::shutdown`] tears all three down and
/// returns the aggregated [`NetReport`].
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting. `make_exec` builds one executor per shard.
    pub fn start(
        cfg: NetConfig,
        addr: impl ToSocketAddrs,
        mut make_exec: impl FnMut() -> Box<dyn Executor>,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards = cfg.shards.max(1);
        let shard_cfg = ServeConfig {
            cache_bytes: (cfg.serve.cache_bytes / shards as u64).max(1),
            ..cfg.serve.clone()
        };
        let state = Arc::new(ServerState {
            shards: (0..shards)
                .map(|_| Arc::new(KernelService::start(shard_cfg.clone(), make_exec())))
                .collect(),
            cfg: NetConfig {
                shards,
                serve: shard_cfg,
                ..cfg
            },
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(1),
            wire: WireCounters::default(),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("tenbench-net-accept".into())
                .spawn(move || accept_loop(&listener, &state, &stop))
                .expect("spawn accept loop")
        };
        Ok(NetServer {
            addr: local,
            stop,
            accept: Some(accept),
            state,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, drain the shards, and
    /// aggregate their reports.
    pub fn shutdown(mut self) -> NetReport {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Unblock handlers parked in read_frame; they exit on the EOF.
        for (_, s) in lock(&self.state.conns).drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = lock(&self.state.handlers).drain(..).collect();
        for h in handlers {
            let _ = h.join();
        }
        let state = Arc::try_unwrap(self.state)
            .ok()
            .expect("all handler threads joined");
        let shards: Vec<ServeReport> = state
            .shards
            .into_iter()
            .map(|svc| {
                Arc::try_unwrap(svc)
                    .ok()
                    .expect("no handler holds a shard past join")
                    .shutdown()
            })
            .collect();
        NetReport {
            shards,
            connections: state.wire.connections.load(Ordering::Relaxed),
            requests: state.wire.requests.load(Ordering::Relaxed),
            responses: state.wire.responses.load(Ordering::Relaxed),
            protocol_errors: state.wire.protocol_errors.load(Ordering::Relaxed),
            bytes_in: state.wire.bytes_in.load(Ordering::Relaxed),
            bytes_out: state.wire.bytes_out.load(Ordering::Relaxed),
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        let Ok(track) = stream.try_clone() else {
            continue;
        };
        lock(&state.conns).insert(id, track);
        state.wire.connections.fetch_add(1, Ordering::Relaxed);
        obs::counters::NET_CONNECTIONS.add(1);
        let st = state.clone();
        let handle = std::thread::Builder::new()
            .name(format!("tenbench-net-conn-{id}"))
            .spawn(move || {
                handle_conn(&st, stream);
                lock(&st.conns).remove(&id);
            })
            .expect("spawn connection handler");
        lock(&state.handlers).push(handle);
    }
}

fn handle_conn(state: &ServerState, mut stream: TcpStream) {
    // Frame budget: the request header rides alongside the tensor bytes.
    let max_payload = state.cfg.max_request_bytes.saturating_add(1024);
    loop {
        match read_frame(&mut stream, max_payload) {
            Ok(None) => break, // clean close on a frame boundary
            Ok(Some(frame)) => {
                state
                    .wire
                    .bytes_in
                    .fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
                obs::counters::NET_BYTES_IN.add(frame.payload.len() as u64);
                if frame.kind != FrameKind::Request {
                    if !send_error(state, &mut stream, frame.ctx, "expected a request frame") {
                        break;
                    }
                    continue;
                }
                state.wire.requests.fetch_add(1, Ordering::Relaxed);
                obs::counters::NET_REQUESTS.add(1);
                // The wire-carried ctx id becomes the parent of this
                // connection-side context; the shard's submit then mints
                // the request ctx as *its* child.
                let ctx = obs::TraceCtx::mint_with_parent("net.request", frame.ctx);
                let _g = obs::ctx::install(ctx);
                obs::ctx::flow_recv("net.request", ctx);
                let mut payload = frame.payload;
                let reply = match decode_request(&mut payload, state.cfg.max_request_bytes) {
                    Err(msg) => {
                        // Frame boundaries are intact: answer typed and
                        // keep the connection.
                        state.wire.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        obs::counters::NET_PROTOCOL_ERRORS.add(1);
                        encode_response(WireStatus::BadRequest, None, &msg)
                    }
                    Ok(req) => {
                        let shard = (req.tensor.fingerprint() % state.shards.len() as u64) as usize;
                        match state.shards[shard].submit(req) {
                            Ok(ticket) => match ticket.wait_timeout(state.cfg.wait) {
                                Ok(resp) => encode_response(WireStatus::Ok, Some(&resp), ""),
                                Err(e) => encode_response(status_of(&e), None, &e.to_string()),
                            },
                            Err(e) => encode_response(status_of(&e), None, &e.to_string()),
                        }
                    }
                };
                if !send_frame(state, &mut stream, FrameKind::Response, ctx.id, &reply) {
                    break;
                }
            }
            Err(e) => {
                // Stream-level corruption: the frame boundary is lost, so
                // answer typed (best effort) and close. Drain what the
                // peer already sent before dropping the socket — closing
                // with unread bytes in the receive buffer turns into an
                // RST that can destroy the error frame in flight.
                state.wire.protocol_errors.fetch_add(1, Ordering::Relaxed);
                obs::counters::NET_PROTOCOL_ERRORS.add(1);
                send_error(state, &mut stream, 0, &e.to_string());
                drain_briefly(&mut stream);
                break;
            }
        }
    }
}

/// Read and discard whatever the peer has already sent, bounded by a
/// short timeout and a small byte cap so a hostile peer cannot pin the
/// handler. This lets the close complete as a FIN instead of an RST.
fn drain_briefly(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 << 10 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn send_frame(
    state: &ServerState,
    stream: &mut TcpStream,
    kind: FrameKind,
    ctx: u64,
    payload: &[u8],
) -> bool {
    match write_frame(stream, kind, ctx, payload) {
        Ok(()) => {
            state.wire.responses.fetch_add(1, Ordering::Relaxed);
            obs::counters::NET_RESPONSES.add(1);
            state
                .wire
                .bytes_out
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            obs::counters::NET_BYTES_OUT.add(payload.len() as u64);
            true
        }
        Err(_) => false, // client went away; the handler exits
    }
}

fn send_error(state: &ServerState, stream: &mut TcpStream, ctx: u64, msg: &str) -> bool {
    send_frame(state, stream, FrameKind::Error, ctx, msg.as_bytes())
}

/// Aggregated server-side metrics: per-shard [`ServeReport`]s plus the
/// wire-level counters.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// One report per shard, in shard order.
    pub shards: Vec<ServeReport>,
    /// Connections accepted.
    pub connections: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Frames written back (responses and error frames).
    pub responses: u64,
    /// Protocol-level errors (undecodable payloads, corrupt frames).
    pub protocol_errors: u64,
    /// Request payload bytes received.
    pub bytes_in: u64,
    /// Response payload bytes sent.
    pub bytes_out: u64,
}

impl NetReport {
    /// Requests completed across all shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Queue-full rejections across all shards.
    pub fn rejected_queue_full(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_queue_full).sum()
    }

    /// Deadline sheds across all shards.
    pub fn rejected_deadline(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_deadline).sum()
    }

    /// Cache counters summed across shards.
    pub fn cache(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.hits += s.cache.hits;
            total.misses += s.cache.misses;
            total.evictions += s.cache.evictions;
            total.collisions += s.cache.collisions;
            total.entries += s.cache.entries;
            total.bytes += s.cache.bytes;
        }
        total
    }

    /// JSON object: `{"wire": {...}, "shards": [...]}`.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        format!(
            concat!(
                "{{\"wire\": {{\"connections\": {}, \"requests\": {}, ",
                "\"responses\": {}, \"protocol_errors\": {}, ",
                "\"bytes_in\": {}, \"bytes_out\": {}}}, ",
                "\"shards\": [{}]}}"
            ),
            self.connections,
            self.requests,
            self.responses,
            self.protocol_errors,
            self.bytes_in,
            self.bytes_out,
            shards.join(", "),
        )
    }
}

/// A blocking client for the wire protocol: one request in flight per
/// connection (write a request frame, read the answer).
pub struct NetClient {
    stream: TcpStream,
    ctx: obs::TraceCtx,
    /// Budget for response frames.
    max_response_bytes: u64,
}

impl NetClient {
    /// Connect and mint the client-side trace context whose id rides
    /// every request frame.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        Ok(NetClient {
            stream: TcpStream::connect(addr)?,
            ctx: obs::TraceCtx::mint("net.client"),
            max_response_bytes: 1 << 20,
        })
    }

    /// The client's trace context.
    pub fn ctx(&self) -> obs::TraceCtx {
        self.ctx
    }

    /// Send one encoded request payload and block for the answer.
    /// Server-side [`FrameKind::Error`] frames surface as `Err` with the
    /// server's message.
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<WireResponse, String> {
        obs::ctx::flow_send("net.request", self.ctx);
        write_frame(&mut self.stream, FrameKind::Request, self.ctx.id, payload)
            .map_err(|e| format!("send: {e}"))?;
        let frame = read_frame(&mut self.stream, self.max_response_bytes)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("connection closed before the response")?;
        match frame.kind {
            FrameKind::Response => {
                let mut payload = frame.payload;
                decode_response(&mut payload)
            }
            FrameKind::Error => Err(format!(
                "server protocol error: {}",
                String::from_utf8_lossy(frame.payload.chunk())
            )),
            FrameKind::Request => Err("server sent a request frame".into()),
        }
    }

    /// Encode and send one request; `tensor_tnb2` is the tensor's
    /// pre-serialized `TNB2` bytes.
    pub fn request(
        &mut self,
        req: &WireRequest,
        tensor_tnb2: &[u8],
    ) -> Result<WireResponse, String> {
        self.request_raw(&encode_request(req, tensor_tnb2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DirectExecutor;
    use std::io::Write;
    use tenbench_core::shape::Shape;
    use tenbench_io::bin::write_bin;

    fn tensor(seed: u32) -> CooTensor<f32> {
        // Bijective coordinate map: 200 distinct nonzeros per seed.
        CooTensor::from_entries(
            Shape::new(vec![16, 16, 16]),
            (0..200u32)
                .map(|i| {
                    (
                        vec![i % 16, (i / 16) % 16, (i / 256 + seed) % 16],
                        (i + seed) as f32 * 0.25,
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    fn tnb2(t: &CooTensor<f32>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_bin(t, &mut buf).unwrap();
        buf
    }

    fn start_server() -> NetServer {
        NetServer::start(NetConfig::default(), "127.0.0.1:0", || {
            Box::new(DirectExecutor)
        })
        .unwrap()
    }

    #[test]
    fn loopback_round_trip_hits_the_shard_cache() {
        let server = start_server();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let bytes = tnb2(&tensor(1));
        let req = WireRequest {
            kernel: Kernel::Mttkrp,
            format: FormatKind::Hicoo,
            mode: 0,
            rank: 8,
            deadline_ms: 0,
        };
        let first = client.request(&req, &bytes).unwrap();
        assert_eq!(first.status, WireStatus::Ok, "{}", first.detail);
        assert!(first.digest.is_finite());
        assert!(!first.cache_hit);
        // Same tensor again: decoded into a fresh allocation server-side,
        // so this exercises the content-verified (not ptr-eq) hit path.
        let second = client.request(&req, &bytes).unwrap();
        assert_eq!(second.status, WireStatus::Ok, "{}", second.detail);
        assert!(second.cache_hit, "repeat request missed the shard cache");
        assert_eq!(second.digest, first.digest);
        let report = server.shutdown();
        assert_eq!(report.requests, 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.protocol_errors, 0);
        let cache = report.cache();
        assert_eq!((cache.hits, cache.misses, cache.collisions), (1, 1, 0));
    }

    #[test]
    fn distinct_tensors_partition_across_shards() {
        let server = start_server();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let req = WireRequest {
            kernel: Kernel::Ttv,
            format: FormatKind::Coo,
            mode: 1,
            rank: 0,
            deadline_ms: 0,
        };
        for seed in 0..8 {
            let r = client.request(&req, &tnb2(&tensor(seed))).unwrap();
            assert_eq!(r.status, WireStatus::Ok, "{}", r.detail);
        }
        let report = server.shutdown();
        assert_eq!(report.completed(), 8);
        // With 8 distinct fingerprints and 2 shards, both shards should
        // have seen work (fingerprints are FNV-mixed, not clustered).
        let active = report.shards.iter().filter(|s| s.completed > 0).count();
        assert_eq!(active, 2, "sharding sent everything to one shard");
    }

    #[test]
    fn bad_payload_gets_typed_response_and_connection_survives() {
        let server = start_server();
        let mut client = NetClient::connect(server.addr()).unwrap();
        // A valid frame whose payload is not a decodable request.
        let r = client.request_raw(b"\xFFgarbage").unwrap();
        assert_eq!(r.status, WireStatus::BadRequest);
        assert!(!r.detail.is_empty());
        // The connection is still serviceable.
        let ok = client
            .request(
                &WireRequest {
                    kernel: Kernel::Ts,
                    format: FormatKind::Coo,
                    mode: 0,
                    rank: 0,
                    deadline_ms: 0,
                },
                &tnb2(&tensor(3)),
            )
            .unwrap();
        assert_eq!(ok.status, WireStatus::Ok, "{}", ok.detail);
        let report = server.shutdown();
        assert_eq!(report.protocol_errors, 1);
        assert_eq!(report.completed(), 1);
    }

    #[test]
    fn corrupt_stream_gets_error_frame_then_clean_close() {
        let server = start_server();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"this is not a TNF1 frame at all....")
            .unwrap();
        // The server answers with a typed error frame and closes; the
        // read must terminate (no hang) without a panic server-side.
        let frame = read_frame(&mut raw, 1 << 16).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Error);
        assert!(read_frame(&mut raw, 1 << 16).unwrap().is_none());
        // A fresh connection still works: one bad peer cannot take the
        // listener down.
        let mut client = NetClient::connect(server.addr()).unwrap();
        let ok = client
            .request(
                &WireRequest {
                    kernel: Kernel::Tew,
                    format: FormatKind::Hicoo,
                    mode: 0,
                    rank: 0,
                    deadline_ms: 0,
                },
                &tnb2(&tensor(7)),
            )
            .unwrap();
        assert_eq!(ok.status, WireStatus::Ok, "{}", ok.detail);
        let report = server.shutdown();
        assert!(report.protocol_errors >= 1);
    }

    #[test]
    fn oversized_tensor_is_refused_with_budget_status() {
        let cfg = NetConfig {
            max_request_bytes: 512,
            ..NetConfig::default()
        };
        let server = NetServer::start(cfg, "127.0.0.1:0", || Box::new(DirectExecutor)).unwrap();
        let mut client = NetClient::connect(server.addr()).unwrap();
        let bytes = tnb2(&tensor(1)); // ~2.5 KiB, over the 512-byte budget
        assert!(bytes.len() > 512);
        let r = client.request(
            &WireRequest {
                kernel: Kernel::Ts,
                format: FormatKind::Coo,
                mode: 0,
                rank: 0,
                deadline_ms: 0,
            },
            &bytes,
        );
        // Depending on where the budget trips (frame read vs tensor
        // decode) the client sees a typed BadRequest or a server error
        // frame — never a hang or a dropped connection without answer.
        match r {
            Ok(resp) => assert_eq!(resp.status, WireStatus::BadRequest),
            Err(msg) => assert!(msg.contains("budget") || msg.contains("protocol"), "{msg}"),
        }
        server.shutdown();
    }
}
