//! A bounded MPMC queue with admission control.
//!
//! The service's backpressure policy lives here: producers never block and
//! never queue unboundedly — [`Bounded::try_push`] fails fast with
//! [`PushError::Full`] when the queue holds `bound` items, and the caller
//! turns that into a typed rejection. Consumers block in [`Bounded::pop`]
//! until an item or shutdown arrives, and can claim a same-key batch with
//! [`Bounded::drain_where`]. After [`Bounded::close`], pops drain what is
//! left and then return `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use tenbench_obs::flight::{self, FlightKind};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue already held its bound of items.
    Full,
    /// The queue was closed by [`Bounded::close`].
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// The bounded MPMC queue. `T` is typically the service's pending-request
/// record.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    bound: usize,
}

impl<T> Bounded<T> {
    /// Lock the queue state, recovering from poisoning. Every critical
    /// section in this module finishes its state mutation before any call
    /// that could unwind, so a guard poisoned by a panicking worker still
    /// protects a consistent queue — recovering it keeps the service up
    /// instead of cascading panics through every later request.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A queue admitting at most `bound` items (at least 1).
    pub fn new(bound: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            bound: bound.max(1),
        }
    }

    /// The admission bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// High-water mark of the queue depth since construction.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }

    /// Try to enqueue. Returns the depth after the push, or the item back
    /// with the reason it was refused.
    ///
    /// Admission is also where the flight recorder sees the item: the
    /// outcome is charged to the submitter's installed
    /// [`tenbench_obs::TraceCtx`] (callers mint and install one before
    /// pushing), so a later fault dump shows when and how deep each
    /// request entered the system.
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut g = self.lock();
        if g.closed {
            drop(g);
            flight::note(FlightKind::Reject, 0);
            return Err((item, PushError::Closed));
        }
        if g.items.len() >= self.bound {
            drop(g);
            flight::note(FlightKind::Reject, self.bound as u64);
            return Err((item, PushError::Full));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        g.max_depth = g.max_depth.max(depth);
        drop(g);
        flight::note(FlightKind::Admit, depth as u64);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Block until an item is available and dequeue it. Returns `None`
    /// once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Remove up to `max` queued items matching `pred`, preserving the
    /// order of everything else. Never blocks — this is how a worker
    /// claims batch-mates for the request it just popped.
    ///
    /// The scan is in place: each item is popped off the front and either
    /// taken or rotated to the back, and once `max` items are claimed the
    /// unscanned remainder is rotated past in one bulk `rotate_left`. No
    /// replacement deque is allocated and the predicate stops running as
    /// soon as the batch is full, so admission (which contends on the same
    /// lock) is stalled for work proportional to the scanned depth, not
    /// for a full rebuild of the queue on every batch claim.
    pub fn drain_where(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut g = self.lock();
        let len = g.items.len();
        let mut taken = Vec::new();
        let mut scanned = 0;
        while scanned < len && taken.len() < max {
            scanned += 1;
            // The pop cannot fail: `scanned` never exceeds the starting
            // length and only scanned items leave the deque.
            let item = g.items.pop_front().expect("scan within bounds");
            if pred(&item) {
                taken.push(item);
            } else {
                g.items.push_back(item);
            }
        }
        // Kept items sit behind the unscanned ones; one rotation restores
        // the original relative order.
        let unscanned = len - scanned;
        g.items.rotate_left(unscanned);
        taken
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`];
    /// consumers drain the remaining items and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bound_is_enforced_and_typed() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err((4, PushError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_where_takes_matches_in_order() {
        let q = Bounded::new(10);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        let even = q.drain_where(2, |x| x % 2 == 0);
        assert_eq!(even, vec![0, 2]);
        // 4 stayed queued because max was 2; order preserved.
        assert_eq!(q.depth(), 4);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn drain_where_scan_is_depth_proportional_and_in_place() {
        let q = Bounded::new(1024);
        for i in 0..1000 {
            q.try_push(i).unwrap();
        }
        let cap_before = q.lock().items.capacity();
        // The batch fills after the first three matches: the predicate
        // must stop running there instead of walking the whole queue.
        let mut calls = 0;
        let taken = q.drain_where(3, |x| {
            calls += 1;
            x % 2 == 0
        });
        assert_eq!(taken, vec![0, 2, 4]);
        assert_eq!(calls, 5, "predicate ran past the filled batch");
        // Order of everything else is preserved exactly…
        let expect: Vec<i32> = (0..1000).filter(|x| !taken.contains(x)).collect();
        let got: Vec<i32> = std::iter::from_fn(|| {
            let mut g = q.lock();
            g.items.pop_front()
        })
        .collect();
        assert_eq!(got, expect);
        // …and no replacement deque was allocated for the claim.
        assert_eq!(q.lock().items.capacity(), cap_before);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
