//! The kernel service: submission, admission control, micro-batching,
//! dispatch, and the [`ServeReport`].
//!
//! A [`KernelService`] owns worker threads that consume a bounded queue
//! of pending requests. Each worker pops one request, sheds it if its
//! deadline passed while queued, claims every queued request with the
//! same batch key (tensor fingerprint × kernel × format × mode × rank),
//! prepares the formats through the [`crate::cache::PrepCache`], executes
//! the batch **once** through the pluggable [`Executor`], and fans the
//! result out to every waiter with per-request metrics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::{HicooTensor, VbHicooTensor};
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp, Kernel};
use tenbench_obs as obs;

use crate::cache::{CacheKey, CacheStats, PrepCache, PrepLayout};
use crate::queue::{Bounded, PushError};

/// Which storage format a request asks the kernel to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Coordinate format.
    Coo,
    /// Hierarchical COO (converted and cached by the service).
    Hicoo,
}

impl FormatKind {
    /// Lowercase name as used in cell labels and CLI flags.
    pub fn as_str(self) -> &'static str {
        match self {
            FormatKind::Coo => "coo",
            FormatKind::Hicoo => "hicoo",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<FormatKind> {
        match s {
            "coo" => Some(FormatKind::Coo),
            "hicoo" => Some(FormatKind::Hicoo),
            _ => None,
        }
    }
}

/// One kernel request.
#[derive(Clone)]
pub struct Request {
    /// Which of the five kernels to run.
    pub kernel: Kernel,
    /// Storage format to execute on.
    pub format: FormatKind,
    /// Product mode (ignored by Tew/Ts).
    pub mode: usize,
    /// Factor rank for Ttm/Mttkrp (ignored — and normalized to 0 for
    /// cache sharing — by the rank-free kernels).
    pub rank: usize,
    /// The input tensor. Requests for the same content share cache
    /// entries via [`CooTensor::fingerprint`].
    pub tensor: Arc<CooTensor<f32>>,
    /// Shed the request if it waits longer than this in the queue.
    pub deadline: Option<Duration>,
}

/// Why the service refused to run a request. This is the typed overload
/// signal: clients see *why* (queue full vs deadline vs shutdown) and can
/// back off instead of retrying blindly.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The admission queue was at its bound when the request arrived.
    QueueFull {
        /// Queue depth observed at submit.
        depth: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The request's deadline expired while it waited in the queue.
    DeadlineExpired {
        /// How long it had waited when it was shed, in milliseconds.
        queued_ms: f64,
    },
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { depth, bound } => {
                write!(f, "queue full ({depth}/{bound})")
            }
            RejectReason::DeadlineExpired { queued_ms } => {
                write!(f, "deadline expired after {queued_ms:.1} ms queued")
            }
            RejectReason::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

/// Terminal failure modes of a submitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load was shed; the kernel never ran.
    Rejected(RejectReason),
    /// The executor ran and failed (after whatever supervision it does).
    Failed(String),
    /// No answer arrived within a [`Ticket::wait_timeout`] window — the
    /// worker that owed the response is presumed gone.
    WorkerLost {
        /// How long the caller waited, in milliseconds.
        waited_ms: f64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Failed(e) => write!(f, "failed: {e}"),
            ServeError::WorkerLost { waited_ms } => {
                write!(f, "worker lost: no response after {waited_ms:.1} ms")
            }
        }
    }
}

/// A completed request's result and per-request metrics.
#[derive(Debug, Clone)]
pub struct Response {
    /// Checksum digest of the kernel output (strided value-sample sum).
    pub digest: f64,
    /// Strategy label the executor settled on (e.g. `"scheduled"`).
    pub strategy: String,
    /// Milliseconds spent queued before a worker claimed the request.
    pub queued_ms: f64,
    /// Milliseconds of preparation + execution for the batch.
    pub exec_ms: f64,
    /// Submit-to-response milliseconds for this request.
    pub total_ms: f64,
    /// How many requests the batch coalesced (≥ 1).
    pub batch_size: usize,
    /// Whether format preparation was answered from the cache.
    pub cache_hit: bool,
}

/// Handle for one in-flight request; resolve with [`Ticket::wait`].
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Block until the service answers.
    pub fn wait(self) -> Result<Response, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Rejected(RejectReason::ShuttingDown)),
        }
    }

    /// Block until the service answers or `timeout` elapses. Unlike
    /// [`Ticket::wait`] — which blocks forever if the worker owing this
    /// response dies between claiming the request and fanning out — a
    /// timeout surfaces as the typed [`ServeError::WorkerLost`].
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, ServeError> {
        let start = Instant::now();
        match self.rx.recv_timeout(timeout) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::WorkerLost {
                waited_ms: start.elapsed().as_secs_f64() * 1e3,
            }),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(ServeError::Rejected(RejectReason::ShuttingDown))
            }
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads consuming the queue.
    pub workers: usize,
    /// Admission bound of the request queue.
    pub queue_bound: usize,
    /// Maximum requests coalesced into one execution.
    pub max_batch: usize,
    /// Byte budget of the format cache.
    pub cache_bytes: u64,
    /// HiCOO block bits for conversions.
    pub block_bits: u8,
    /// Blocked value layout the cache materializes for HiCOO requests.
    pub layout: PrepLayout,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_bound: 64,
            max_batch: 8,
            cache_bytes: 64 << 20,
            block_bits: 7,
            layout: PrepLayout::Hicoo,
        }
    }
}

/// One coalesced unit of work handed to the [`Executor`].
#[derive(Clone)]
pub struct BatchJob {
    /// Kernel to run.
    pub kernel: Kernel,
    /// Format to run it on.
    pub format: FormatKind,
    /// Product mode.
    pub mode: usize,
    /// Factor rank (0 for rank-free kernels).
    pub rank: usize,
    /// The COO input (cache-resident).
    pub coo: Arc<CooTensor<f32>>,
    /// The cached HiCOO conversion.
    pub hicoo: Arc<HicooTensor<f32>>,
    /// The cached value-blocked conversion, when the service is configured
    /// for the vb layout. Kernels with a vb path prefer it.
    pub vb: Option<Arc<VbHicooTensor<f32>>>,
    /// Cached factor matrices (empty when rank is 0).
    pub factors: Arc<Vec<DenseMatrix<f32>>>,
}

/// What one executed batch reports back.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Output digest (strided value-sample sum).
    pub digest: f64,
    /// Strategy label that produced the accepted output.
    pub strategy: String,
}

/// Pluggable execution backend. The bench crate implements this with the
/// watchdogged, validated supervisor; [`DirectExecutor`] runs inline.
pub trait Executor: Send + Sync + 'static {
    /// Run one batch job to completion.
    fn execute(&self, job: &BatchJob) -> Result<ExecOutcome, String>;
}

/// Runs kernels inline with no supervision — the test/default backend.
pub struct DirectExecutor;

impl Executor for DirectExecutor {
    fn execute(&self, job: &BatchJob) -> Result<ExecOutcome, String> {
        execute_direct(job)
    }
}

fn digest_slice(vals: &[f32]) -> f64 {
    let stride = (vals.len() / 4096).max(1);
    vals.iter().step_by(stride).map(|&v| v as f64).sum()
}

fn digest_matrix(m: &DenseMatrix<f32>) -> f64 {
    digest_slice(m.data())
}

/// Run one [`BatchJob`] inline and digest its output. The HiCOO paths use
/// the scheduled kernels where they exist; Ttv has no direct
/// `HicooTensor` kernel, so both formats dispatch to the COO
/// implementation (the conversion cache still pays for Tew/Ts/Ttm/Mttkrp
/// reuse of the same tensor).
pub fn execute_direct(job: &BatchJob) -> Result<ExecOutcome, String> {
    let _span = obs::span!("serve.execute");
    let x = job.coo.as_ref();
    let hx = job.hicoo.as_ref();
    let err = |e: tenbench_core::TensorError| e.to_string();
    let (digest, strategy) = match (job.kernel, job.format) {
        (Kernel::Tew, FormatKind::Coo) => {
            let y = tew::tew_same_pattern(x, x, EwOp::Add).map_err(err)?;
            (digest_slice(y.vals()), "parallel")
        }
        (Kernel::Tew, FormatKind::Hicoo) => match &job.vb {
            Some(vx) => {
                let y = tew::tew_vb_same_pattern(vx, vx, EwOp::Add).map_err(err)?;
                (digest_slice(y.padded_vals()), "vb_parallel")
            }
            None => {
                let y = tew::tew_hicoo_same_pattern(hx, hx, EwOp::Add).map_err(err)?;
                (digest_slice(y.vals()), "parallel")
            }
        },
        (Kernel::Ts, FormatKind::Coo) => {
            let y = ts::ts(x, 1.000_1, EwOp::Mul).map_err(err)?;
            (digest_slice(y.vals()), "parallel")
        }
        (Kernel::Ts, FormatKind::Hicoo) => match &job.vb {
            Some(vx) => {
                let y = ts::ts_vb(vx, 1.000_1, EwOp::Mul).map_err(err)?;
                (digest_slice(y.padded_vals()), "vb_parallel")
            }
            None => {
                let y = ts::ts_hicoo(hx, 1.000_1, EwOp::Mul).map_err(err)?;
                (digest_slice(y.vals()), "parallel")
            }
        },
        (Kernel::Ttv, _) => {
            let v = DenseVector::from_fn(x.shape().dim(job.mode) as usize, |i| {
                (i % 100) as f32 * 0.01
            });
            let y = ttv::ttv(x, &v, job.mode).map_err(err)?;
            (digest_slice(y.vals()), "fiber_parallel")
        }
        (Kernel::Ttm, FormatKind::Coo) => {
            let u = factor(job, job.mode)?;
            let y = ttm::ttm(x, u, job.mode).map_err(err)?;
            (digest_slice(y.vals()), "fiber_parallel")
        }
        (Kernel::Ttm, FormatKind::Hicoo) => {
            let u = factor(job, job.mode)?;
            let y = ttm::ttm_hicoo_sched(hx, u, job.mode).map_err(err)?;
            (digest_slice(y.vals()), "scheduled")
        }
        (Kernel::Mttkrp, FormatKind::Coo) => {
            let frefs: Vec<&DenseMatrix<f32>> = job.factors.iter().collect();
            if frefs.is_empty() {
                return Err("mttkrp requires rank >= 1".into());
            }
            let y = mttkrp::mttkrp_atomic(x, &frefs, job.mode).map_err(err)?;
            (digest_matrix(&y), "atomic")
        }
        (Kernel::Mttkrp, FormatKind::Hicoo) => {
            let frefs: Vec<&DenseMatrix<f32>> = job.factors.iter().collect();
            if frefs.is_empty() {
                return Err("mttkrp requires rank >= 1".into());
            }
            match &job.vb {
                Some(vx) => {
                    let y = mttkrp::mttkrp_vb_sched(vx, &frefs, job.mode).map_err(err)?;
                    (digest_matrix(&y), "vb_scheduled")
                }
                None => {
                    let y = mttkrp::mttkrp_hicoo_sched(hx, &frefs, job.mode).map_err(err)?;
                    (digest_matrix(&y), "scheduled")
                }
            }
        }
    };
    Ok(ExecOutcome {
        digest,
        strategy: strategy.to_string(),
    })
}

fn factor(job: &BatchJob, mode: usize) -> Result<&DenseMatrix<f32>, String> {
    job.factors
        .get(mode)
        .ok_or_else(|| format!("{} requires rank >= 1", job.kernel.name()))
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct BatchKey {
    fingerprint: u64,
    kernel: Kernel,
    format: FormatKind,
    mode: usize,
    rank: usize,
}

struct Pending {
    req: Request,
    fingerprint: u64,
    enqueued: Instant,
    deadline_at: Option<Instant>,
    /// Causal identity minted at admission; carried through batching and
    /// onto the worker so the request renders as one connected lane.
    ctx: obs::TraceCtx,
    tx: mpsc::Sender<Result<Response, ServeError>>,
}

impl Pending {
    fn batch_key(&self) -> BatchKey {
        BatchKey {
            fingerprint: self.fingerprint,
            kernel: self.req.kernel,
            format: self.req.format,
            mode: self.req.mode,
            rank: self.req.rank,
        }
    }
}

#[derive(Default)]
struct Tally {
    /// Streaming log-bucketed latency distribution: memory stays bounded
    /// no matter how many requests the overload burst pushes through.
    latency: obs::LogHistogram,
    completed: u64,
    failed: u64,
    rejected_deadline: u64,
    batches: u64,
    batched_requests: u64,
    exec_ms: f64,
}

struct Shared {
    queue: Bounded<Pending>,
    cache: PrepCache,
    exec: Box<dyn Executor>,
    cfg: ServeConfig,
    tally: Mutex<Tally>,
    rejected_full: AtomicU64,
}

/// Lock the tally, recovering from poisoning: tally updates are plain
/// counter increments and pushes that leave the struct consistent at every
/// unwind point, so a poisoned guard is safe to keep using.
fn lock_tally(m: &Mutex<Tally>) -> MutexGuard<'_, Tally> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The long-running in-process kernel service.
pub struct KernelService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl KernelService {
    /// Start the service with the given executor backend.
    pub fn start(cfg: ServeConfig, exec: Box<dyn Executor>) -> Self {
        let shared = Arc::new(Shared {
            queue: Bounded::new(cfg.queue_bound),
            cache: PrepCache::new(cfg.cache_bytes),
            exec,
            cfg: cfg.clone(),
            tally: Mutex::new(Tally::default()),
            rejected_full: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("tenbench-serve-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn service worker")
            })
            .collect();
        KernelService {
            shared,
            workers,
            started: Instant::now(),
        }
    }

    /// Submit a request. Fails fast with a typed rejection when the
    /// admission queue is full — this is the backpressure boundary.
    pub fn submit(&self, mut req: Request) -> Result<Ticket, ServeError> {
        if req.mode >= req.tensor.order() {
            return Err(ServeError::Failed(format!(
                "mode {} out of range for order-{} tensor",
                req.mode,
                req.tensor.order()
            )));
        }
        // Rank-free kernels share one cache entry per tensor.
        if matches!(req.kernel, Kernel::Tew | Kernel::Ts | Kernel::Ttv) {
            req.rank = 0;
        }
        let fingerprint = req.tensor.fingerprint();
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        // Admission is where the request's causal identity is minted; the
        // async lane opens here on the submitting thread and closes on
        // whichever worker answers. When the submitter already runs under
        // a context — a connection handler that installed the wire-carried
        // ctx — the request becomes its child, stitching client → shard →
        // pool worker into one causal chain.
        let ctx = match obs::ctx::current() {
            Some(parent) => parent.child("request"),
            None => obs::TraceCtx::mint("request"),
        };
        let pending = Pending {
            deadline_at: req.deadline.map(|d| now + d),
            fingerprint,
            enqueued: now,
            ctx,
            tx,
            req,
        };
        // Install the ctx for the admission call: the queue charges its
        // admit/reject flight events to the installed context.
        let _g = obs::ctx::install(ctx);
        match self.shared.queue.try_push(pending) {
            Ok(_) => {
                obs::ctx::async_begin("request", ctx);
                obs::ctx::flow_send("request.queue", ctx);
                Ok(Ticket { rx })
            }
            Err((_, PushError::Full)) => {
                self.shared.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Rejected(RejectReason::QueueFull {
                    depth: self.shared.queue.depth(),
                    bound: self.shared.queue.bound(),
                }))
            }
            Err((_, PushError::Closed)) => Err(ServeError::Rejected(RejectReason::ShuttingDown)),
        }
    }

    /// Snapshot the service metrics.
    pub fn report(&self) -> ServeReport {
        let t = lock_tally(&self.shared.tally);
        ServeReport::build(
            &t,
            self.started.elapsed().as_secs_f64(),
            self.shared.rejected_full.load(Ordering::Relaxed),
            self.shared.queue.bound(),
            self.shared.queue.max_depth(),
            self.shared.cfg.workers,
            self.shared.cache.stats(),
        )
    }

    /// Drain the queue, stop the workers, and return the final report.
    pub fn shutdown(self) -> ServeReport {
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        let t = lock_tally(&self.shared.tally);
        ServeReport::build(
            &t,
            self.started.elapsed().as_secs_f64(),
            self.shared.rejected_full.load(Ordering::Relaxed),
            self.shared.queue.bound(),
            self.shared.queue.max_depth(),
            self.shared.cfg.workers,
            self.shared.cache.stats(),
        )
    }
}

fn worker_loop(sh: &Shared) {
    while let Some(head) = sh.queue.pop() {
        let now = Instant::now();
        // Deadline shedding: a request that aged out while queued is
        // answered with a typed rejection, not executed.
        if head.deadline_at.is_some_and(|d| now > d) {
            let queued_ms = now.duration_since(head.enqueued).as_secs_f64() * 1e3;
            let mut t = lock_tally(&sh.tally);
            t.rejected_deadline += 1;
            drop(t);
            obs::flight::note_ctx(obs::flight::FlightKind::Shed, head.ctx.id, queued_ms as u64);
            obs::ctx::async_end("request", head.ctx);
            let _ = head
                .tx
                .send(Err(ServeError::Rejected(RejectReason::DeadlineExpired {
                    queued_ms,
                })));
            continue;
        }
        let key = head.batch_key();
        let mut group = vec![head];
        if sh.cfg.max_batch > 1 {
            group.extend(sh.queue.drain_where(sh.cfg.max_batch - 1, |p| {
                p.batch_key() == key && p.deadline_at.is_none_or(|d| now <= d)
            }));
        }
        // The batch leader's context is installed for the whole batch
        // execution (cache, executor, pool regions); every member's flow
        // arrow lands on this worker's lane.
        let leader_ctx = group[0].ctx;
        let _ctx_guard = obs::ctx::install(leader_ctx);
        for p in &group {
            obs::ctx::flow_recv("request.queue", p.ctx);
        }
        obs::flight::note_ctx(
            obs::flight::FlightKind::BatchClaim,
            leader_ctx.id,
            group.len() as u64,
        );

        let _span = obs::span!("serve.batch");
        let t0 = Instant::now();
        let cache_key = CacheKey {
            fingerprint: key.fingerprint,
            block_bits: sh.cfg.block_bits,
            rank: key.rank,
            layout: sh.cfg.layout,
        };
        let prepared = sh.cache.get_or_prepare(cache_key, &group[0].req.tensor);
        let outcome = prepared.and_then(|(prep, hit)| {
            let job = BatchJob {
                kernel: key.kernel,
                format: key.format,
                mode: key.mode,
                rank: key.rank,
                coo: prep.coo.clone(),
                hicoo: prep.hicoo.clone(),
                vb: prep.vb.clone(),
                factors: prep.factors.clone(),
            };
            // A panicking executor must not take the worker thread (and
            // with it every queued batch-mate and the whole queue share)
            // down: catch the unwind and surface it as a typed failure.
            match catch_unwind(AssertUnwindSafe(|| sh.exec.execute(&job))) {
                Ok(r) => r.map(|o| (o, hit)),
                Err(p) => Err(format!("executor panicked: {}", panic_message(p.as_ref()))),
            }
        });
        let exec_ms = t0.elapsed().as_secs_f64() * 1e3;
        let done = Instant::now();
        let batch_size = group.len();

        let mut t = lock_tally(&sh.tally);
        t.batches += 1;
        t.batched_requests += batch_size as u64;
        t.exec_ms += exec_ms;
        match &outcome {
            Ok(_) => t.completed += batch_size as u64,
            Err(_) => t.failed += batch_size as u64,
        }
        for p in &group {
            t.latency
                .record(done.duration_since(p.enqueued).as_secs_f64() * 1e3);
        }
        drop(t);

        for p in group {
            let queued_ms = now.duration_since(p.enqueued).as_secs_f64() * 1e3;
            let total_ms = done.duration_since(p.enqueued).as_secs_f64() * 1e3;
            obs::ctx::async_end("request", p.ctx);
            let msg = match &outcome {
                Ok((o, hit)) => Ok(Response {
                    digest: o.digest,
                    strategy: o.strategy.clone(),
                    queued_ms,
                    exec_ms,
                    total_ms,
                    batch_size,
                    cache_hit: *hit,
                }),
                Err(e) => Err(ServeError::Failed(e.clone())),
            };
            let _ = p.tx.send(msg);
        }
    }
}

/// The service's exported metrics: throughput, shedding, batching, queue
/// high-water mark, cache effectiveness, and the latency distribution.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Seconds the service has been up (or ran, after shutdown).
    pub duration_s: f64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests whose execution failed.
    pub failed: u64,
    /// Requests refused at submit because the queue was at its bound.
    pub rejected_queue_full: u64,
    /// Requests shed at dequeue because their deadline had expired.
    pub rejected_deadline: u64,
    /// Executed batches.
    pub batches: u64,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Completed requests per second of uptime.
    pub throughput_rps: f64,
    /// Median submit-to-response latency, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// Configured admission bound.
    pub queue_bound: usize,
    /// Queue depth high-water mark.
    pub max_queue_depth: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Format-cache counters.
    pub cache: CacheStats,
}

impl ServeReport {
    fn build(
        t: &Tally,
        duration_s: f64,
        rejected_full: u64,
        queue_bound: usize,
        max_queue_depth: usize,
        workers: usize,
        cache: CacheStats,
    ) -> ServeReport {
        // Percentiles come from the streaming histogram: accurate to one
        // log bucket (~9% relative), O(1) memory regardless of load.
        let lat = &t.latency;
        ServeReport {
            duration_s,
            completed: t.completed,
            failed: t.failed,
            rejected_queue_full: rejected_full,
            rejected_deadline: t.rejected_deadline,
            batches: t.batches,
            mean_batch: if t.batches > 0 {
                t.batched_requests as f64 / t.batches as f64
            } else {
                0.0
            },
            throughput_rps: if duration_s > 0.0 {
                t.completed as f64 / duration_s
            } else {
                0.0
            },
            p50_ms: lat.percentile(50.0),
            p90_ms: lat.percentile(90.0),
            p99_ms: lat.percentile(99.0),
            max_ms: lat.max(),
            queue_bound,
            max_queue_depth,
            workers,
            cache,
        }
    }

    /// Render as a JSON object (floats sanitized via
    /// [`tenbench_obs::json::json_f64`], so the document always parses).
    pub fn to_json(&self) -> String {
        use obs::json::json_f64 as f;
        format!(
            concat!(
                "{{\"duration_s\": {}, \"completed\": {}, \"failed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_deadline\": {}, ",
                "\"batches\": {}, \"mean_batch\": {}, \"throughput_rps\": {}, ",
                "\"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, ",
                "\"queue_bound\": {}, \"max_queue_depth\": {}, \"workers\": {}, ",
                "\"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, ",
                "\"collisions\": {}, \"entries\": {}, \"bytes\": {}, \"hit_ratio\": {}}}}}"
            ),
            f(self.duration_s),
            self.completed,
            self.failed,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.batches,
            f(self.mean_batch),
            f(self.throughput_rps),
            f(self.p50_ms),
            f(self.p90_ms),
            f(self.p99_ms),
            f(self.max_ms),
            self.queue_bound,
            self.max_queue_depth,
            self.workers,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.collisions,
            self.cache.entries,
            self.cache.bytes,
            f(self.cache.hit_ratio()),
        )
    }

    /// Multi-line human summary.
    pub fn render(&self) -> String {
        format!(
            concat!(
                "  completed       {}  (throughput {:.1} req/s, {} batches, mean batch {:.2})\n",
                "  shed            {} queue-full, {} deadline  (queue bound {}, peak depth {})\n",
                "  latency (ms)    p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}\n",
                "  format cache    {} hits / {} misses ({:.0}% hit ratio), {} entries, {} evictions\n",
            ),
            self.completed,
            self.throughput_rps,
            self.batches,
            self.mean_batch,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.queue_bound,
            self.max_queue_depth,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.max_ms,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_ratio() * 100.0,
            self.cache.entries,
            self.cache.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenbench_core::shape::Shape;

    fn tensor(seed: u32) -> Arc<CooTensor<f32>> {
        Arc::new(
            CooTensor::from_entries(
                Shape::new(vec![24, 24, 24]),
                (0..400u32)
                    .map(|i| {
                        (
                            vec![(i * 7 + seed) % 24, (i * 13) % 24, (i * 29 + seed) % 24],
                            (i % 97) as f32 * 0.5 + 1.0,
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn req(x: &Arc<CooTensor<f32>>, kernel: Kernel, format: FormatKind) -> Request {
        Request {
            kernel,
            format,
            mode: 0,
            rank: 8,
            tensor: x.clone(),
            deadline: None,
        }
    }

    #[test]
    fn every_kernel_and_format_completes_with_finite_digest() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 2,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(DirectExecutor),
        );
        let x = tensor(1);
        let mut tickets = Vec::new();
        for kernel in Kernel::ALL {
            for format in [FormatKind::Coo, FormatKind::Hicoo] {
                tickets.push(svc.submit(req(&x, kernel, format)).expect("admitted"));
            }
        }
        for t in tickets {
            let r = t.wait().expect("request served");
            assert!(r.digest.is_finite());
            assert!(r.total_ms >= 0.0);
            assert!(r.batch_size >= 1);
        }
        let report = svc.shutdown();
        assert_eq!(report.completed, 10);
        assert_eq!(report.failed, 0);
        // All ten requests share one tensor: two cache entries (rank 0 and
        // rank 8), so at most two misses.
        assert!(report.cache.hits >= 1, "{:?}", report.cache);
        obs::json::Value::parse(&report.to_json()).expect("report JSON parses");
    }

    /// Blocks every execution until the gate opens, so tests can queue a
    /// burst behind a head-of-line request deterministically.
    struct GatedExecutor {
        gate: Arc<std::sync::atomic::AtomicBool>,
    }

    impl Executor for GatedExecutor {
        fn execute(&self, job: &BatchJob) -> Result<ExecOutcome, String> {
            while !self.gate.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            execute_direct(job)
        }
    }

    #[test]
    fn same_key_requests_coalesce_into_one_batch() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                max_batch: 8,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(GatedExecutor { gate: gate.clone() }),
        );
        let slow = tensor(7);
        let fast = tensor(8);
        // The head request occupies the single worker (its execution blocks
        // on the gate) while the same-key burst piles up in the queue.
        let head = svc
            .submit(req(&slow, Kernel::Mttkrp, FormatKind::Hicoo))
            .unwrap();
        let burst: Vec<Ticket> = (0..6)
            .map(|_| svc.submit(req(&fast, Kernel::Ts, FormatKind::Coo)).unwrap())
            .collect();
        gate.store(true, std::sync::atomic::Ordering::Release);
        head.wait().expect("head served");
        let sizes: Vec<usize> = burst
            .into_iter()
            .map(|t| t.wait().expect("burst served").batch_size)
            .collect();
        // The burst queued behind the head request, so the worker saw all
        // six together and coalesced them (same tensor/kernel/format).
        assert_eq!(sizes, vec![6; 6], "burst did not coalesce");
        let report = svc.shutdown();
        assert!(report.mean_batch > 1.0, "mean batch {}", report.mean_batch);
    }

    #[test]
    fn overload_sheds_with_typed_queue_full() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                queue_bound: 4,
                max_batch: 1,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(DirectExecutor),
        );
        let x = tensor(3);
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..64 {
            match svc.submit(req(&x, Kernel::Mttkrp, FormatKind::Coo)) {
                Ok(t) => admitted.push(t),
                Err(ServeError::Rejected(RejectReason::QueueFull { bound, .. })) => {
                    assert_eq!(bound, 4);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        assert!(rejected > 0, "queue bound never engaged");
        for t in admitted {
            t.wait().expect("admitted requests still complete");
        }
        let report = svc.shutdown();
        assert_eq!(report.rejected_queue_full, rejected);
        assert!(report.max_queue_depth <= 4);
    }

    #[test]
    fn expired_deadline_is_shed_not_executed() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(DirectExecutor),
        );
        let x = tensor(5);
        // Stall the worker, then queue a request that expires immediately.
        let head = svc
            .submit(req(&x, Kernel::Mttkrp, FormatKind::Hicoo))
            .unwrap();
        let mut doomed = req(&x, Kernel::Ts, FormatKind::Coo);
        doomed.deadline = Some(Duration::from_nanos(1));
        let doomed = svc.submit(doomed).unwrap();
        head.wait().expect("head served");
        match doomed.wait() {
            Err(ServeError::Rejected(RejectReason::DeadlineExpired { queued_ms })) => {
                assert!(queued_ms >= 0.0);
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
        let report = svc.shutdown();
        assert_eq!(report.rejected_deadline, 1);
    }

    /// Panics on the first execution, then behaves like [`DirectExecutor`].
    struct PanicOnceExecutor {
        armed: Arc<std::sync::atomic::AtomicBool>,
    }

    impl Executor for PanicOnceExecutor {
        fn execute(&self, job: &BatchJob) -> Result<ExecOutcome, String> {
            if self.armed.swap(false, std::sync::atomic::Ordering::AcqRel) {
                panic!("injected executor panic");
            }
            execute_direct(job)
        }
    }

    #[test]
    fn panicking_executor_does_not_take_the_service_down() {
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(PanicOnceExecutor {
                armed: armed.clone(),
            }),
        );
        let x = tensor(11);
        // First request trips the panic; the worker must catch it, poison
        // nothing, and answer with a typed failure instead of dying.
        let first = svc
            .submit(req(&x, Kernel::Mttkrp, FormatKind::Hicoo))
            .unwrap();
        match first.wait() {
            Err(ServeError::Failed(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message: {msg}")
            }
            other => panic!("expected Failed after panic, got {other:?}"),
        }
        // The same worker thread (workers = 1) and the shared cache — whose
        // mutex the panic unwound across — must keep serving afterwards.
        for _ in 0..3 {
            let t = svc
                .submit(req(&x, Kernel::Mttkrp, FormatKind::Hicoo))
                .unwrap();
            let r = t.wait().expect("service recovered after executor panic");
            assert!(r.digest.is_finite());
        }
        let report = svc.shutdown();
        assert_eq!(report.completed, 3);
        assert_eq!(report.failed, 1);
        assert!(report.cache.hits >= 1, "cache unusable: {:?}", report.cache);
    }

    #[test]
    fn wait_timeout_reports_worker_lost_for_stalled_response() {
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(GatedExecutor { gate: gate.clone() }),
        );
        let x = tensor(9);
        let stalled = svc.submit(req(&x, Kernel::Ts, FormatKind::Coo)).unwrap();
        match stalled.wait_timeout(Duration::from_millis(30)) {
            Err(ServeError::WorkerLost { waited_ms }) => assert!(waited_ms >= 0.0),
            other => panic!("expected WorkerLost, got {other:?}"),
        }
        // Release the worker so shutdown can drain cleanly; the response to
        // the abandoned ticket is dropped on the floor, not delivered.
        gate.store(true, std::sync::atomic::Ordering::Release);
        let report = svc.shutdown();
        assert_eq!(report.completed, 1);
    }
}
