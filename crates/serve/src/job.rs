//! Long-running decomposition jobs with checkpoint/resume.
//!
//! The kernel service answers single requests in milliseconds; the
//! decomposition methods (CP-ALS, the tensor power method, the TTM-chain)
//! run for *many* iterations and must survive the faults a long run
//! attracts: a panicking kernel, a hung sweep, a corrupted checkpoint.
//! [`JobService`] runs them iteration by iteration through a pluggable
//! [`StepRunner`] (the bench crate plugs in the PR-2 supervisor; tests and
//! the in-crate default use [`InlineStepRunner`], a thread +
//! `catch_unwind` + watchdog), checkpoints the factor state after every
//! accepted iteration into an in-memory `TNC1` container
//! ([`tenbench_io::ckpt`]), and on any step fault resumes from the newest
//! checkpoint that still passes its CRCs.
//!
//! The contract that makes this useful as a *benchmark* fixture and not
//! just a reliability feature:
//!
//! - **Typed terminals.** Every submitted job ends in exactly one of
//!   `Ok(JobOutcome)` or `Err(JobError)` — never silence. A dropped
//!   worker surfaces as [`JobError::Lost`], which the chaos gates require
//!   to be zero.
//! - **Bitwise resume determinism.** The method states
//!   ([`CpAlsState`], [`PowerMethodState`], [`TtmChainState`]) carry
//!   everything one iteration hands the next; derived quantities are
//!   recomputed at step entry. `TNC1` round-trips `f32` factors and the
//!   `f64` fit bit-exactly, so a run resumed from a checkpoint produces
//!   factors bitwise-identical to an uninterrupted run at the same
//!   iteration count — at any fixed thread count, enforced by pinning
//!   CP-ALS to the deterministic [`MttkrpStrategy::Scheduled`].
//! - **Injectable faults.** A [`FaultInjector`] decides, per (job,
//!   iteration), whether the step panics, hangs, or the checkpoint written
//!   after it gets a byte flipped — the hooks the chaos harness drives.
//!
//! State machine per job:
//!
//! ```text
//! queued -> running -> (checkpointed <-> running)* -> completed
//!                \-> fault -> resumed(newest valid ckpt) -> running
//!                \-> fault budget exhausted -> failed (typed)
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::kernels::mttkrp::MttkrpStrategy;
use tenbench_core::methods::{
    cp_als_init, cp_als_step, power_method_init, power_method_step, ttm_chain_init, ttm_chain_step,
    CpAlsBackend, CpAlsOptions, CpAlsState, PowerMethodState, TtmChainState,
};
use tenbench_io::ckpt::{read_ckpt, write_ckpt, Checkpoint, CheckpointMatrix};
use tenbench_obs as obs;

use crate::queue::{Bounded, PushError};

/// Which decomposition a job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// CP-ALS via Mttkrp sweeps. Pinned to [`MttkrpStrategy::Scheduled`]
    /// internally: the atomic strategy is not bitwise-deterministic, which
    /// would void the resume-determinism guarantee.
    CpAls {
        /// Decomposition rank.
        rank: usize,
        /// Maximum ALS sweeps.
        max_iters: usize,
        /// Fit-delta convergence tolerance.
        tol: f64,
        /// Factor initialization seed.
        seed: u64,
    },
    /// Tensor power method via repeated Ttv (requires a cubical tensor).
    PowerMethod {
        /// Maximum iterations.
        max_iters: usize,
        /// Eigenvalue-delta convergence tolerance.
        tol: f64,
        /// Iterate initialization seed.
        seed: u64,
    },
    /// Staged TTM-chain over every mode (a Tucker core computation); one
    /// iteration per mode product.
    TtmChain {
        /// Core rank per mode.
        rank: usize,
        /// Factor generation seed.
        seed: u64,
    },
}

impl JobKind {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::CpAls { .. } => "cp_als",
            JobKind::PowerMethod { .. } => "power_method",
            JobKind::TtmChain { .. } => "ttm_chain",
        }
    }
}

/// A decomposition job: what to run and on which tensor.
#[derive(Clone)]
pub struct JobSpec {
    /// The method and its parameters.
    pub kind: JobKind,
    /// The input tensor (shared, never copied per job).
    pub tensor: Arc<CooTensor<f32>>,
}

/// Configuration of a [`JobService`].
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Worker threads running jobs.
    pub workers: usize,
    /// Admission bound of the job queue.
    pub queue_bound: usize,
    /// Watchdog budget per iteration, in seconds.
    pub max_step_seconds: f64,
    /// Fault budget per job: one more fault than this fails the job with
    /// [`JobError::RetriesExhausted`].
    pub max_recoveries: u32,
    /// Checkpoint generations kept per job (newest first wins recovery).
    pub keep_checkpoints: usize,
    /// Thread count installed around every step (`None` = ambient pool).
    /// Fixing this makes CP-ALS runs bitwise-reproducible across hosts.
    pub threads: Option<usize>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            workers: 2,
            queue_bound: 16,
            max_step_seconds: 30.0,
            max_recoveries: 8,
            keep_checkpoints: 2,
            threads: None,
        }
    }
}

/// Why a job did not produce an outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job queue was full at submit; nothing was enqueued.
    Rejected {
        /// Queue depth at rejection.
        depth: usize,
        /// The admission bound.
        bound: usize,
    },
    /// The service is shutting down; nothing was enqueued.
    ShuttingDown,
    /// The method rejected its input before the first iteration.
    Init(String),
    /// The fault budget ran out; `last` is the final step verdict.
    RetriesExhausted {
        /// Faults absorbed before giving up.
        recoveries: u32,
        /// Description of the last fault.
        last: String,
    },
    /// The run terminated but its progress metric is not a finite number.
    InvalidFit {
        /// The offending value.
        fit: f64,
    },
    /// The worker disappeared without a terminal message. The chaos gates
    /// require this to never happen (zero lost jobs).
    Lost,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Rejected { depth, bound } => {
                write!(f, "job queue full: depth {depth} at bound {bound}")
            }
            JobError::ShuttingDown => write!(f, "job service shutting down"),
            JobError::Init(msg) => write!(f, "job init failed: {msg}"),
            JobError::RetriesExhausted { recoveries, last } => {
                write!(
                    f,
                    "fault budget exhausted after {recoveries} recoveries: {last}"
                )
            }
            JobError::InvalidFit { fit } => write!(f, "non-finite progress metric {fit}"),
            JobError::Lost => write!(f, "job worker lost without a terminal state"),
        }
    }
}

impl std::error::Error for JobError {}

/// One accepted iteration's progress sample, streamed through the ticket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Completed iterations after this step.
    pub iteration: u64,
    /// Progress metric: CP-ALS fit, power-method eigenvalue, 0 for TTM.
    pub fit: f64,
    /// `true` when this is the first accepted iteration after a
    /// checkpoint resume — the boundary the determinism gates inspect.
    pub resumed: bool,
}

/// Terminal state of a successful job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Service-assigned job id.
    pub job_id: u64,
    /// [`JobKind::label`] of the method.
    pub kind: &'static str,
    /// Completed iterations.
    pub iterations: u64,
    /// Final progress metric (CP-ALS fit, eigenvalue, 0 for TTM).
    pub fit: f64,
    /// `true` when the method converged before its iteration cap.
    pub converged: bool,
    /// Faults absorbed via checkpoint resume or reinit.
    pub recoveries: u32,
    /// Recoveries that found no valid checkpoint and restarted from
    /// iteration 0 (still bitwise-deterministic — same seed, same path).
    pub reinits: u32,
    /// Corrupted checkpoint generations detected (CRC/parse rejection).
    pub corrupt_detected: u32,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// The final state serialized as `TNC1` bytes. Two runs of the same
    /// spec at the same thread count — interrupted or not — produce
    /// byte-identical values here; tests compare them directly.
    pub final_checkpoint: Vec<u8>,
    /// Every accepted iteration's sample, in order.
    pub progress: Vec<JobProgress>,
}

enum JobMsg {
    Progress(JobProgress),
    Done(Box<Result<JobOutcome, JobError>>),
}

/// Pollable handle to a submitted job.
pub struct JobTicket {
    job_id: u64,
    rx: mpsc::Receiver<JobMsg>,
    progress: Vec<JobProgress>,
}

impl JobTicket {
    /// The service-assigned job id.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Drain any progress streamed so far without blocking; returns every
    /// sample received since submission (cumulative).
    pub fn poll_progress(&mut self) -> &[JobProgress] {
        while let Ok(JobMsg::Progress(p)) = self.rx.try_recv() {
            self.progress.push(p);
        }
        &self.progress
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(self) -> Result<JobOutcome, JobError> {
        loop {
            match self.rx.recv() {
                Ok(JobMsg::Progress(_)) => {}
                Ok(JobMsg::Done(r)) => return *r,
                Err(_) => return Err(JobError::Lost),
            }
        }
    }
}

/// Verdict of running one iteration through a [`StepRunner`].
#[derive(Debug, Clone)]
pub enum StepVerdict {
    /// The step finished and published its output.
    Done,
    /// The step returned a typed error.
    Failed(String),
    /// The step panicked (caught).
    Panicked(String),
    /// The watchdog fired before the step reported.
    TimedOut,
}

/// Runs one job iteration under supervision. The step closure owns every
/// input it needs and publishes its output through a shared slot, so a
/// runner may execute it on any thread; a step abandoned by its watchdog
/// writes into a slot nobody reads.
pub trait StepRunner: Send + Sync {
    /// Execute `step` with a `max_seconds` wall-clock budget.
    fn run_step(
        &self,
        label: &str,
        step: Arc<dyn Fn() -> Result<(), String> + Send + Sync>,
        max_seconds: f64,
    ) -> StepVerdict;
}

/// Default [`StepRunner`]: a dedicated thread under
/// [`std::panic::catch_unwind`] with an [`mpsc::Receiver::recv_timeout`]
/// watchdog — the same guard shape as the bench supervisor, without its
/// retry/fallback policy (the job engine owns recovery).
pub struct InlineStepRunner;

impl StepRunner for InlineStepRunner {
    fn run_step(
        &self,
        label: &str,
        step: Arc<dyn Fn() -> Result<(), String> + Send + Sync>,
        max_seconds: f64,
    ) -> StepVerdict {
        let (tx, rx) = mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name(format!("job-step-{label}"))
            .spawn(move || {
                let verdict = match catch_unwind(AssertUnwindSafe(|| step())) {
                    Ok(Ok(())) => StepVerdict::Done,
                    Ok(Err(e)) => StepVerdict::Failed(e),
                    Err(p) => StepVerdict::Panicked(panic_message(p.as_ref())),
                };
                let _ = tx.send(verdict);
            });
        if let Err(e) = spawned {
            return StepVerdict::Failed(format!("could not spawn step thread: {e}"));
        }
        match rx.recv_timeout(Duration::from_secs_f64(max_seconds.max(0.001))) {
            Ok(v) => v,
            Err(mpsc::RecvTimeoutError::Timeout) => StepVerdict::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                StepVerdict::Panicked("step thread died without reporting".into())
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fault the chaos harness injects into one (job, iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The step panics before doing any work.
    PanicInStep,
    /// The step sleeps this long before doing any work (trips the
    /// watchdog when it exceeds [`JobConfig::max_step_seconds`]).
    HangInStep {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// The checkpoint written after this iteration gets one byte XORed —
    /// a later resume must detect it and fall back a generation.
    CorruptCheckpoint {
        /// Byte offset (taken modulo the checkpoint length).
        byte: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
}

/// Decides which fault, if any, to inject into one (job, iteration).
pub trait FaultInjector: Send + Sync {
    /// Called once per attempted iteration, before the step runs.
    fn next_fault(&self, job_id: u64, iteration: usize) -> Option<InjectedFault>;
}

/// A [`FaultInjector`] that fires each scripted `(job_id, iteration,
/// fault)` entry exactly once, so the retried iteration runs clean.
pub struct ScriptedFaults {
    plan: Mutex<Vec<(u64, usize, InjectedFault)>>,
}

impl ScriptedFaults {
    /// Build from a fault plan.
    pub fn new(plan: Vec<(u64, usize, InjectedFault)>) -> Self {
        ScriptedFaults {
            plan: Mutex::new(plan),
        }
    }
}

impl FaultInjector for ScriptedFaults {
    fn next_fault(&self, job_id: u64, iteration: usize) -> Option<InjectedFault> {
        let mut g = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
        let pos = g
            .iter()
            .position(|&(j, i, _)| j == job_id && i == iteration)?;
        Some(g.remove(pos).2)
    }
}

// ------------------------------------------------------------------
// Method engine: the three decompositions behind one stepping interface.
// ------------------------------------------------------------------

const KIND_CP_ALS: u8 = 1;
const KIND_POWER: u8 = 2;
const KIND_TTM: u8 = 3;

#[derive(Clone)]
enum StateSnap {
    CpAls(CpAlsState<f32>),
    Power(PowerMethodState<f32>),
    Ttm(TtmChainState<f32>),
}

/// Output slot a step closure publishes into: the advanced state and the
/// method's "finished" flag. Abandoned slots (watchdog fired) are dropped
/// unread.
type Slot = Arc<Mutex<Option<(StateSnap, bool)>>>;

enum Method {
    CpAls {
        x: Arc<CooTensor<f32>>,
        opts: CpAlsOptions,
        state: CpAlsState<f32>,
    },
    Power {
        x: Arc<CooTensor<f32>>,
        tol: f64,
        max_iters: usize,
        seed: u64,
        state: PowerMethodState<f32>,
    },
    Ttm {
        x: Arc<CooTensor<f32>>,
        factors: Arc<Vec<DenseMatrix<f32>>>,
        state: TtmChainState<f32>,
    },
}

/// Deterministic TTM-chain factor matrices: a cheap integer hash of
/// (seed, mode, row, col) keeps them reproducible without carrying them
/// in checkpoints.
fn ttm_factors(x: &CooTensor<f32>, rank: usize, seed: u64) -> Vec<DenseMatrix<f32>> {
    (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, rank, |i, j| {
                let mut h = seed
                    ^ (m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ((i as u64) << 32)
                    ^ j as u64;
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h ^= h >> 33;
                ((h % 1000) as f32) * 1e-3 + 0.05
            })
        })
        .collect()
}

fn cp_opts(rank: usize, max_iters: usize, tol: f64, seed: u64) -> CpAlsOptions {
    CpAlsOptions {
        rank,
        max_iters,
        tol,
        seed,
        // Scheduled is bitwise-deterministic at a fixed thread count;
        // Atomic is not. Jobs guarantee resume determinism, so the
        // strategy is pinned, not configurable.
        strategy: MttkrpStrategy::Scheduled,
        backend: CpAlsBackend::Coo,
    }
}

impl Method {
    fn init(spec: &JobSpec) -> Result<Method, JobError> {
        match spec.kind {
            JobKind::CpAls {
                rank,
                max_iters,
                tol,
                seed,
            } => {
                if rank == 0 {
                    return Err(JobError::Init("cp_als rank must be positive".into()));
                }
                let opts = cp_opts(rank, max_iters, tol, seed);
                let state = cp_als_init(&spec.tensor, &opts);
                Ok(Method::CpAls {
                    x: spec.tensor.clone(),
                    opts,
                    state,
                })
            }
            JobKind::PowerMethod {
                max_iters,
                tol,
                seed,
            } => {
                let state = power_method_init(&spec.tensor, seed)
                    .map_err(|e| JobError::Init(e.to_string()))?;
                Ok(Method::Power {
                    x: spec.tensor.clone(),
                    tol,
                    max_iters,
                    seed,
                    state,
                })
            }
            JobKind::TtmChain { rank, seed } => {
                if rank == 0 {
                    return Err(JobError::Init("ttm_chain rank must be positive".into()));
                }
                Ok(Method::Ttm {
                    x: spec.tensor.clone(),
                    factors: Arc::new(ttm_factors(&spec.tensor, rank, seed)),
                    state: ttm_chain_init(&spec.tensor),
                })
            }
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Method::CpAls { .. } => "cp_als",
            Method::Power { .. } => "power_method",
            Method::Ttm { .. } => "ttm_chain",
        }
    }

    fn iteration(&self) -> usize {
        match self {
            Method::CpAls { state, .. } => state.iteration,
            Method::Power { state, .. } => state.iteration,
            Method::Ttm { state, .. } => state.stage,
        }
    }

    fn max_iters(&self) -> usize {
        match self {
            Method::CpAls { opts, .. } => opts.max_iters,
            Method::Power { max_iters, .. } => *max_iters,
            Method::Ttm { factors, .. } => factors.len(),
        }
    }

    fn fit(&self) -> f64 {
        match self {
            Method::CpAls { state, .. } => state.fit,
            Method::Power { state, .. } => state.eigenvalue as f64,
            Method::Ttm { .. } => 0.0,
        }
    }

    /// Build the closure that runs exactly one iteration. It captures a
    /// *clone* of the current state and publishes the advanced state into
    /// `slot`; the engine's own state only moves forward when the runner
    /// reports [`StepVerdict::Done`], so a faulted attempt leaves the
    /// engine exactly where the last checkpoint says it is.
    fn make_step(
        &self,
        slot: Slot,
        fault: Option<InjectedFault>,
        threads: Option<usize>,
    ) -> Arc<dyn Fn() -> Result<(), String> + Send + Sync> {
        let body: Arc<dyn Fn() -> Result<(), String> + Send + Sync> = match self {
            Method::CpAls { x, opts, state } => {
                let (x, opts, state) = (x.clone(), opts.clone(), state.clone());
                Arc::new(move || {
                    let mut s = state.clone();
                    let done = cp_als_step(&x, &opts, &mut s).map_err(|e| e.to_string())?;
                    publish(&slot, StateSnap::CpAls(s), done);
                    Ok(())
                })
            }
            Method::Power { x, tol, state, .. } => {
                let (x, tol, state) = (x.clone(), *tol, state.clone());
                Arc::new(move || {
                    let mut s = state.clone();
                    let done = power_method_step(&x, tol, &mut s).map_err(|e| e.to_string())?;
                    publish(&slot, StateSnap::Power(s), done);
                    Ok(())
                })
            }
            Method::Ttm { factors, state, .. } => {
                let (factors, state) = (factors.clone(), state.clone());
                Arc::new(move || {
                    let mut s = state.clone();
                    let modes: Vec<(usize, &DenseMatrix<f32>)> =
                        factors.iter().enumerate().collect();
                    let done = ttm_chain_step(&modes, &mut s).map_err(|e| e.to_string())?;
                    publish(&slot, StateSnap::Ttm(s), done);
                    Ok(())
                })
            }
        };
        // Faults fire *before* the math, so the retried iteration redoes
        // the identical computation; the thread override wraps the whole
        // step so every parallel region inside sees the pinned pool.
        Arc::new(move || {
            match fault {
                Some(InjectedFault::PanicInStep) => panic!("chaos: injected step panic"),
                Some(InjectedFault::HangInStep { ms }) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
            match threads {
                Some(n) => match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
                    Ok(pool) => pool.install(|| body()),
                    Err(_) => body(),
                },
                None => body(),
            }
        })
    }

    fn install(&mut self, snap: StateSnap) -> Result<(), String> {
        match (self, snap) {
            (Method::CpAls { state, .. }, StateSnap::CpAls(s)) => {
                *state = s;
                Ok(())
            }
            (Method::Power { state, .. }, StateSnap::Power(s)) => {
                *state = s;
                Ok(())
            }
            (Method::Ttm { state, .. }, StateSnap::Ttm(s)) => {
                *state = s;
                Ok(())
            }
            _ => Err("step published a state of the wrong kind".into()),
        }
    }

    /// Serialize the current state as `TNC1` bytes.
    fn checkpoint_bytes(&self) -> Result<Vec<u8>, String> {
        let ckpt = match self {
            Method::CpAls { state, .. } => {
                let mut matrices: Vec<CheckpointMatrix<f32>> = state
                    .factors
                    .iter()
                    .map(|f| CheckpointMatrix {
                        rows: f.rows(),
                        cols: f.cols(),
                        data: f.data().to_vec(),
                    })
                    .collect();
                matrices.push(CheckpointMatrix {
                    rows: state.lambda.len(),
                    cols: 1,
                    data: state.lambda.clone(),
                });
                Checkpoint {
                    kind: KIND_CP_ALS,
                    iteration: state.iteration as u64,
                    fit: state.fit,
                    matrices,
                    blob: Vec::new(),
                }
            }
            Method::Power { state, .. } => Checkpoint {
                kind: KIND_POWER,
                iteration: state.iteration as u64,
                // f32 -> f64 is exact, so the eigenvalue round-trips
                // bitwise through the f64 fit field.
                fit: state.eigenvalue as f64,
                matrices: vec![CheckpointMatrix {
                    rows: state.v.len(),
                    cols: 1,
                    data: state.v.as_slice().to_vec(),
                }],
                blob: vec![u8::from(state.converged)],
            },
            Method::Ttm { state, .. } => {
                let mut blob = Vec::new();
                tenbench_io::bin::write_bin(&state.current, &mut blob)
                    .map_err(|e| e.to_string())?;
                Checkpoint {
                    kind: KIND_TTM,
                    iteration: state.stage as u64,
                    fit: 0.0,
                    matrices: Vec::new(),
                    blob,
                }
            }
        };
        let mut bytes = Vec::new();
        write_ckpt(&ckpt, &mut bytes).map_err(|e| e.to_string())?;
        Ok(bytes)
    }

    /// Rebuild the state from `TNC1` bytes. Any CRC failure, parse error,
    /// or structural mismatch is an `Err` — the caller falls back to an
    /// older generation, never resumes from damage.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        let ckpt: Checkpoint<f32> = read_ckpt(bytes).map_err(|e| e.to_string())?;
        match self {
            Method::CpAls { x, state, opts } => {
                if ckpt.kind != KIND_CP_ALS {
                    return Err(format!("checkpoint kind {} is not cp_als", ckpt.kind));
                }
                let order = x.order();
                if ckpt.matrices.len() != order + 1 {
                    return Err(format!(
                        "cp_als checkpoint holds {} sections, want {}",
                        ckpt.matrices.len(),
                        order + 1
                    ));
                }
                let mut factors = Vec::with_capacity(order);
                for (m, sec) in ckpt.matrices[..order].iter().enumerate() {
                    if sec.rows != x.shape().dim(m) as usize || sec.cols != opts.rank {
                        return Err(format!("factor {m} has wrong dimensions"));
                    }
                    factors.push(DenseMatrix::from_vec(sec.rows, sec.cols, sec.data.clone()));
                }
                let lam = &ckpt.matrices[order];
                if lam.rows != opts.rank || lam.cols != 1 {
                    return Err("lambda section has wrong dimensions".into());
                }
                *state = CpAlsState {
                    factors,
                    lambda: lam.data.clone(),
                    fit: ckpt.fit,
                    iteration: ckpt.iteration as usize,
                };
                Ok(())
            }
            Method::Power { x, state, .. } => {
                if ckpt.kind != KIND_POWER {
                    return Err(format!("checkpoint kind {} is not power_method", ckpt.kind));
                }
                let [sec] = ckpt.matrices.as_slice() else {
                    return Err("power checkpoint must hold exactly one section".into());
                };
                if sec.rows != x.shape().dim(0) as usize || sec.cols != 1 {
                    return Err("iterate section has wrong dimensions".into());
                }
                let [converged] = ckpt.blob.as_slice() else {
                    return Err("power checkpoint blob must hold the converged flag".into());
                };
                *state = PowerMethodState {
                    v: DenseVector::from_vec(sec.data.clone()),
                    eigenvalue: ckpt.fit as f32,
                    iteration: ckpt.iteration as usize,
                    converged: *converged != 0,
                };
                Ok(())
            }
            Method::Ttm { state, .. } => {
                if ckpt.kind != KIND_TTM {
                    return Err(format!("checkpoint kind {} is not ttm_chain", ckpt.kind));
                }
                let current =
                    tenbench_io::bin::read_bin(ckpt.blob.as_slice()).map_err(|e| e.to_string())?;
                *state = TtmChainState {
                    stage: ckpt.iteration as usize,
                    current,
                };
                Ok(())
            }
        }
    }

    /// Throw the state away and reseed from iteration 0 — the last resort
    /// when every checkpoint generation is damaged. Deterministic: same
    /// seed, same path as the original run.
    fn reinit(&mut self) {
        match self {
            Method::CpAls { x, opts, state } => *state = cp_als_init(x, opts),
            Method::Power { x, seed, state, .. } => {
                // init validated the tensor once already; it cannot fail now.
                if let Ok(s) = power_method_init(x, *seed) {
                    *state = s;
                }
            }
            Method::Ttm { x, state, .. } => *state = ttm_chain_init(x),
        }
    }
}

fn publish(slot: &Slot, snap: StateSnap, done: bool) {
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some((snap, done));
}

// ------------------------------------------------------------------
// The service.
// ------------------------------------------------------------------

/// Aggregate accounting across every job the service ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobServiceReport {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs refused at submit (queue full).
    pub rejected: u64,
    /// Jobs that reached `Ok(JobOutcome)`.
    pub completed: u64,
    /// Jobs that reached a typed `Err(JobError)`.
    pub failed: u64,
    /// Faults absorbed via checkpoint resume.
    pub recoveries: u64,
    /// Recoveries that restarted from iteration 0.
    pub reinits: u64,
    /// Corrupted checkpoint generations detected.
    pub corrupt_detected: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

impl JobServiceReport {
    /// Jobs that were admitted but never produced a terminal state. The
    /// robustness contract is that this is always zero.
    pub fn lost(&self) -> u64 {
        self.submitted.saturating_sub(self.completed + self.failed)
    }
}

struct JobShared {
    cfg: JobConfig,
    runner: Arc<dyn StepRunner>,
    injector: Option<Arc<dyn FaultInjector>>,
    tally: Mutex<JobServiceReport>,
}

impl JobShared {
    fn tally(&self) -> MutexGuard<'_, JobServiceReport> {
        self.tally.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct QueuedJob {
    job_id: u64,
    /// Causal identity minted at admission; the job worker installs it so
    /// checkpoint writes, faults, and recoveries are charged to this job.
    ctx: obs::TraceCtx,
    spec: JobSpec,
    tx: mpsc::Sender<JobMsg>,
}

/// Supervisor for long-running decomposition jobs: bounded admission,
/// per-iteration supervision, checkpoint/resume recovery, typed terminals.
pub struct JobService {
    queue: Arc<Bounded<QueuedJob>>,
    shared: Arc<JobShared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl JobService {
    /// Start the worker threads. `injector` is `None` in production; the
    /// chaos harness passes its fault source.
    pub fn start(
        cfg: JobConfig,
        runner: Arc<dyn StepRunner>,
        injector: Option<Arc<dyn FaultInjector>>,
    ) -> Self {
        let queue = Arc::new(Bounded::new(cfg.queue_bound));
        let shared = Arc::new(JobShared {
            cfg,
            runner,
            injector,
            tally: Mutex::new(JobServiceReport::default()),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let q = queue.clone();
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("job-worker-{i}"))
                    .spawn(move || worker_loop(&q, &sh))
                    .expect("spawn job worker")
            })
            .collect();
        JobService {
            queue,
            shared,
            workers,
            next_id: AtomicU64::new(1),
        }
    }

    /// Start with the default [`InlineStepRunner`] and no fault injection.
    pub fn start_default(cfg: JobConfig) -> Self {
        JobService::start(cfg, Arc::new(InlineStepRunner), None)
    }

    /// Submit a job. Full queues reject with [`JobError::Rejected`]
    /// instead of queueing unboundedly — the same admission-control policy
    /// as the kernel service.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, JobError> {
        let job_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let ctx = obs::TraceCtx::mint("job");
        let _g = obs::ctx::install(ctx);
        match self.queue.try_push(QueuedJob {
            job_id,
            ctx,
            spec,
            tx,
        }) {
            Ok(_) => {
                self.shared.tally().submitted += 1;
                obs::counters::JOB_SUBMITTED.add(1);
                obs::ctx::async_begin("job", ctx);
                obs::ctx::flow_send("job.queue", ctx);
                Ok(JobTicket {
                    job_id,
                    rx,
                    progress: Vec::new(),
                })
            }
            Err((_, PushError::Full)) => {
                self.shared.tally().rejected += 1;
                Err(JobError::Rejected {
                    depth: self.queue.depth(),
                    bound: self.queue.bound(),
                })
            }
            Err((_, PushError::Closed)) => Err(JobError::ShuttingDown),
        }
    }

    /// Close admission, drain every queued job to a terminal state, join
    /// the workers, and report.
    pub fn shutdown(self) -> JobServiceReport {
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        *self.shared.tally()
    }
}

fn worker_loop(queue: &Bounded<QueuedJob>, shared: &JobShared) {
    while let Some(job) = queue.pop() {
        let tx = job.tx.clone();
        // The worker thread did not inherit the submitter's trace context;
        // install the one carried on the job so everything the engine does
        // — checkpoints, faults, recoveries — charges to the right job.
        let ctx = job.ctx;
        let _ctx_guard = obs::ctx::install(ctx);
        obs::ctx::flow_recv("job.queue", ctx);
        // The engine is panic-free by construction (steps run guarded),
        // but a worker must never die silently even if that breaks: the
        // catch turns an engine bug into a typed failed job.
        let result = catch_unwind(AssertUnwindSafe(|| run_job(job, shared))).unwrap_or_else(|p| {
            Err(JobError::Init(format!(
                "job engine panicked: {}",
                panic_message(p.as_ref())
            )))
        });
        obs::ctx::async_end("job", ctx);
        {
            let mut t = shared.tally();
            match &result {
                Ok(_) => {
                    t.completed += 1;
                    obs::counters::JOB_COMPLETED.add(1);
                }
                Err(_) => {
                    t.failed += 1;
                    obs::counters::JOB_FAILED.add(1);
                }
            }
        }
        let _ = tx.send(JobMsg::Done(Box::new(result)));
    }
}

fn verdict_text(v: &StepVerdict) -> String {
    match v {
        StepVerdict::Done => "done".into(),
        StepVerdict::Failed(e) => format!("failed: {e}"),
        StepVerdict::Panicked(e) => format!("panicked: {e}"),
        StepVerdict::TimedOut => "timed out".into(),
    }
}

/// The checkpoint/resume engine for one job.
fn run_job(job: QueuedJob, shared: &JobShared) -> Result<JobOutcome, JobError> {
    let cfg = &shared.cfg;
    let mut method = Method::init(&job.spec)?;
    let keep = cfg.keep_checkpoints.max(1);

    // Generation ring, oldest first. Iteration 0 is checkpointed too, so
    // even a fault on the very first step resumes instead of reinits.
    let mut ckpts: VecDeque<Vec<u8>> = VecDeque::new();
    let mut checkpoints = 0u64;
    let push_ckpt = |ckpts: &mut VecDeque<Vec<u8>>, bytes: Vec<u8>, count: &mut u64| {
        ckpts.push_back(bytes);
        while ckpts.len() > keep {
            ckpts.pop_front();
        }
        *count += 1;
        obs::counters::JOB_CHECKPOINTS.add(1);
        obs::flight::note(obs::flight::FlightKind::CkptWrite, *count);
        shared.tally().checkpoints += 1;
    };
    match method.checkpoint_bytes() {
        Ok(b) => push_ckpt(&mut ckpts, b, &mut checkpoints),
        Err(e) => return Err(JobError::Init(format!("initial checkpoint failed: {e}"))),
    }

    let mut recoveries = 0u32;
    let mut reinits = 0u32;
    let mut corrupt_detected = 0u32;
    let mut progress: Vec<JobProgress> = Vec::new();
    let mut resumed_flag = false;
    let mut done = method.max_iters() == 0;

    while !done && method.iteration() < method.max_iters() {
        let fault = shared
            .injector
            .as_ref()
            .and_then(|f| f.next_fault(job.job_id, method.iteration()));
        if fault.is_some() {
            obs::counters::CHAOS_FAULTS.add(1);
        }
        let ckpt_fault = match fault {
            Some(InjectedFault::CorruptCheckpoint { byte, mask }) => Some((byte, mask)),
            _ => None,
        };

        let slot: Slot = Arc::new(Mutex::new(None));
        let step = method.make_step(slot.clone(), fault, cfg.threads);
        let verdict = shared
            .runner
            .run_step(method.label(), step, cfg.max_step_seconds);

        let fault_text = match verdict {
            StepVerdict::Done => {
                let published = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                match published {
                    Some((snap, fin)) => match method.install(snap) {
                        Ok(()) => {
                            done = fin;
                            let sample = JobProgress {
                                iteration: method.iteration() as u64,
                                fit: method.fit(),
                                resumed: resumed_flag,
                            };
                            resumed_flag = false;
                            progress.push(sample);
                            let _ = job.tx.send(JobMsg::Progress(sample));
                            match method.checkpoint_bytes() {
                                Ok(mut bytes) => {
                                    if let Some((byte, mask)) = ckpt_fault {
                                        if !bytes.is_empty() {
                                            let at = byte % bytes.len();
                                            bytes[at] ^= mask;
                                        }
                                    }
                                    push_ckpt(&mut ckpts, bytes, &mut checkpoints);
                                    None
                                }
                                Err(e) => Some(format!("checkpoint write failed: {e}")),
                            }
                        }
                        Err(e) => Some(e),
                    },
                    None => Some("step reported done without publishing a state".into()),
                }
            }
            other => Some(verdict_text(&other)),
        };

        if let Some(last) = fault_text {
            recoveries += 1;
            shared.tally().recoveries += 1;
            obs::flight::note(obs::flight::FlightKind::Retry, recoveries as u64);
            if recoveries > cfg.max_recoveries {
                return Err(JobError::RetriesExhausted { recoveries, last });
            }
            // Walk generations newest-first; damage falls back, and a
            // fully damaged ring reinits from iteration 0.
            let mut restored = false;
            while let Some(bytes) = ckpts.pop_back() {
                match method.restore(&bytes) {
                    Ok(()) => {
                        ckpts.push_back(bytes);
                        restored = true;
                        break;
                    }
                    Err(e) => {
                        corrupt_detected += 1;
                        shared.tally().corrupt_detected += 1;
                        obs::counters::JOB_CKPT_CORRUPT.add(1);
                        obs::flight::dump(
                            "ckpt_corrupt",
                            obs::flight::FlightKind::CkptCorrupt,
                            job.ctx.id,
                            &format!(
                                "job {} ({}): checkpoint generation rejected at iteration {}: {e}",
                                job.job_id,
                                method.label(),
                                method.iteration()
                            ),
                        );
                    }
                }
            }
            if restored {
                obs::counters::JOB_RESUMES.add(1);
                obs::flight::note(obs::flight::FlightKind::Resume, method.iteration() as u64);
            } else {
                method.reinit();
                reinits += 1;
                shared.tally().reinits += 1;
                obs::flight::note(obs::flight::FlightKind::Reinit, reinits as u64);
                match method.checkpoint_bytes() {
                    Ok(b) => push_ckpt(&mut ckpts, b, &mut checkpoints),
                    Err(e) => return Err(JobError::Init(format!("reinit checkpoint failed: {e}"))),
                }
            }
            resumed_flag = true;
            done = false;
        }
    }

    let fit = method.fit();
    if !fit.is_finite() {
        return Err(JobError::InvalidFit { fit });
    }
    let final_checkpoint = method
        .checkpoint_bytes()
        .map_err(|e| JobError::Init(format!("final checkpoint failed: {e}")))?;
    Ok(JobOutcome {
        job_id: job.job_id,
        kind: method.label(),
        iterations: method.iteration() as u64,
        fit,
        converged: done,
        recoveries,
        reinits,
        corrupt_detected,
        checkpoints,
        final_checkpoint,
        progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenbench_core::shape::Shape;

    fn tensor(seed: u32) -> Arc<CooTensor<f32>> {
        Arc::new(
            CooTensor::from_entries(
                Shape::new(vec![16, 16, 16]),
                (0..300u32)
                    .map(|i| {
                        (
                            vec![(i * 7 + seed) % 16, (i * 13) % 16, (i * 29 + seed) % 16],
                            (i % 89) as f32 * 0.25 + 1.0,
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn cp_spec(x: &Arc<CooTensor<f32>>) -> JobSpec {
        JobSpec {
            kind: JobKind::CpAls {
                rank: 4,
                max_iters: 6,
                tol: 0.0,
                seed: 42,
            },
            tensor: x.clone(),
        }
    }

    fn quick_cfg() -> JobConfig {
        JobConfig {
            workers: 1,
            max_step_seconds: 20.0,
            ..JobConfig::default()
        }
    }

    #[test]
    fn all_three_kinds_complete_without_faults() {
        let x = tensor(1);
        let svc = JobService::start_default(quick_cfg());
        let specs = [
            cp_spec(&x),
            JobSpec {
                kind: JobKind::PowerMethod {
                    max_iters: 8,
                    tol: 0.0,
                    seed: 7,
                },
                tensor: x.clone(),
            },
            JobSpec {
                kind: JobKind::TtmChain { rank: 3, seed: 9 },
                tensor: x.clone(),
            },
        ];
        let tickets: Vec<JobTicket> = specs
            .iter()
            .map(|s| svc.submit(s.clone()).expect("admitted"))
            .collect();
        for t in tickets {
            let out = t.wait().expect("job completed");
            assert!(out.iterations > 0);
            assert!(out.fit.is_finite());
            assert_eq!(out.recoveries, 0);
            assert!(out.checkpoints as usize >= out.progress.len());
            assert!(!out.final_checkpoint.is_empty());
        }
        let report = svc.shutdown();
        assert_eq!(report.completed, 3);
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn progress_streams_per_iteration_fits() {
        let x = tensor(2);
        let svc = JobService::start_default(quick_cfg());
        let t = svc.submit(cp_spec(&x)).unwrap();
        let out = t.wait().unwrap();
        assert_eq!(out.progress.len(), out.iterations as usize);
        for (i, p) in out.progress.iter().enumerate() {
            assert_eq!(p.iteration, i as u64 + 1);
            assert!(p.fit.is_finite());
            assert!(!p.resumed);
        }
        assert_eq!(
            out.progress.last().unwrap().fit.to_bits(),
            out.fit.to_bits()
        );
        svc.shutdown();
    }

    /// The core robustness contract: a job hit by a panic, a hang, and a
    /// corrupted checkpoint still completes, and its final factors are
    /// bitwise-identical to an undisturbed run of the same spec.
    #[test]
    fn faulted_run_matches_clean_run_bitwise() {
        let x = tensor(3);
        let clean_svc = JobService::start_default(quick_cfg());
        let clean = clean_svc.submit(cp_spec(&x)).unwrap().wait().unwrap();
        clean_svc.shutdown();

        // Corrupt the checkpoint written after iteration 2, then panic in
        // iteration 3: recovery must detect the damage, fall back to the
        // iteration-1 generation, and recompute forward.
        let faults = ScriptedFaults::new(vec![
            (
                1,
                2,
                InjectedFault::CorruptCheckpoint {
                    byte: 33,
                    mask: 0x40,
                },
            ),
            (1, 3, InjectedFault::PanicInStep),
        ]);
        let svc = JobService::start(
            JobConfig {
                max_recoveries: 4,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            Some(Arc::new(faults)),
        );
        let out = svc.submit(cp_spec(&x)).unwrap().wait().unwrap();
        let report = svc.shutdown();

        assert_eq!(out.recoveries, 1, "panic absorbed via resume");
        assert_eq!(out.corrupt_detected, 1, "damaged generation detected");
        assert_eq!(out.reinits, 0, "older generation was intact");
        assert!(out.progress.iter().any(|p| p.resumed));
        assert_eq!(out.iterations, clean.iterations);
        assert_eq!(out.fit.to_bits(), clean.fit.to_bits());
        assert_eq!(
            out.final_checkpoint, clean.final_checkpoint,
            "resumed factors are not bitwise-identical"
        );
        assert_eq!(report.corrupt_detected, 1);
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn hang_trips_watchdog_and_resumes() {
        let x = tensor(4);
        let faults = ScriptedFaults::new(vec![(1, 1, InjectedFault::HangInStep { ms: 2_000 })]);
        let svc = JobService::start(
            JobConfig {
                max_step_seconds: 0.05,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            Some(Arc::new(faults)),
        );
        // With a 50 ms watchdog the clean steps must still fit; a tiny
        // tensor at rank 2 is well under that.
        let t = svc
            .submit(JobSpec {
                kind: JobKind::CpAls {
                    rank: 2,
                    max_iters: 3,
                    tol: 0.0,
                    seed: 5,
                },
                tensor: x.clone(),
            })
            .unwrap();
        let out = t.wait().expect("job survives a hung step");
        assert!(out.recoveries >= 1);
        assert_eq!(out.iterations, 3);
        svc.shutdown();
    }

    #[test]
    fn fault_budget_exhaustion_is_typed() {
        let x = tensor(5);
        // Panic on every attempt of iteration 0 (entries for repeated
        // attempts of the same iteration index).
        let faults = ScriptedFaults::new(vec![
            (1, 0, InjectedFault::PanicInStep),
            (1, 0, InjectedFault::PanicInStep),
            (1, 0, InjectedFault::PanicInStep),
        ]);
        let svc = JobService::start(
            JobConfig {
                max_recoveries: 2,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            Some(Arc::new(faults)),
        );
        let err = svc.submit(cp_spec(&x)).unwrap().wait().unwrap_err();
        match err {
            JobError::RetriesExhausted {
                recoveries,
                ref last,
            } => {
                assert_eq!(recoveries, 3);
                assert!(last.contains("panicked"), "{last}");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let report = svc.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.lost(), 0);
    }

    #[test]
    fn every_generation_corrupt_reinits_from_scratch() {
        let x = tensor(6);
        // Corrupt both kept generations, then panic: the ring holds only
        // damage, so recovery must reinit from iteration 0 and still
        // finish deterministically.
        let faults = ScriptedFaults::new(vec![
            (1, 1, InjectedFault::CorruptCheckpoint { byte: 40, mask: 1 }),
            (1, 2, InjectedFault::CorruptCheckpoint { byte: 41, mask: 2 }),
            (1, 3, InjectedFault::PanicInStep),
        ]);
        let svc = JobService::start(
            JobConfig {
                keep_checkpoints: 2,
                max_recoveries: 4,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            Some(Arc::new(faults)),
        );
        let out = svc.submit(cp_spec(&x)).unwrap().wait().unwrap();
        assert_eq!(out.reinits, 1);
        assert_eq!(out.corrupt_detected, 2);

        let clean_svc = JobService::start_default(quick_cfg());
        let clean = clean_svc.submit(cp_spec(&x)).unwrap().wait().unwrap();
        clean_svc.shutdown();
        assert_eq!(out.final_checkpoint, clean.final_checkpoint);
        svc.shutdown();
    }

    #[test]
    fn queue_full_rejects_typed_and_invalid_tensor_fails_init() {
        let x = tensor(7);
        let svc = JobService::start(
            JobConfig {
                workers: 1,
                queue_bound: 1,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            None,
        );
        let mut admitted = Vec::new();
        let mut rejected = 0;
        for _ in 0..12 {
            match svc.submit(cp_spec(&x)) {
                Ok(t) => admitted.push(t),
                Err(JobError::Rejected { bound, .. }) => {
                    assert_eq!(bound, 1);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(rejected > 0, "queue bound never engaged");

        // A non-cubical tensor is a typed init failure for the power
        // method, not a crash.
        let flat = Arc::new(
            CooTensor::from_entries(
                Shape::new(vec![4, 8]),
                vec![(vec![0, 0], 1.0f32), (vec![3, 7], 2.0)],
            )
            .unwrap(),
        );
        match svc.submit(JobSpec {
            kind: JobKind::PowerMethod {
                max_iters: 4,
                tol: 0.0,
                seed: 1,
            },
            tensor: flat,
        }) {
            Ok(t) => assert!(matches!(t.wait(), Err(JobError::Init(_)))),
            Err(JobError::Rejected { .. }) => rejected += 1,
            Err(other) => panic!("unexpected {other:?}"),
        }
        for t in admitted {
            t.wait().expect("admitted jobs complete");
        }
        let report = svc.shutdown();
        assert_eq!(report.lost(), 0);
        assert_eq!(report.rejected, rejected);
    }

    #[test]
    fn shutdown_drains_queued_jobs_to_terminals() {
        let x = tensor(8);
        let svc = JobService::start(
            JobConfig {
                workers: 1,
                queue_bound: 8,
                ..quick_cfg()
            },
            Arc::new(InlineStepRunner),
            None,
        );
        let tickets: Vec<JobTicket> = (0..4)
            .map(|_| svc.submit(cp_spec(&x)).expect("admitted"))
            .collect();
        let report = svc.shutdown();
        assert_eq!(report.completed, 4);
        assert_eq!(report.lost(), 0);
        for t in tickets {
            t.wait().expect("drained to a terminal");
        }
    }
}
