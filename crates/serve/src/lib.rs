//! The serving layer: a long-running in-process kernel service.
//!
//! PASTA frames the five sparse tensor kernels as repeatedly-invoked
//! building blocks of higher-level methods. This crate composes the
//! pieces PRs 1–4 built — scheduled kernels, the supervised executor, the
//! persistent pool, and the obs layer — into the shape such an invoker
//! actually needs: a [`service::KernelService`] that accepts kernel
//! requests (kernel × format × mode × rank), batches and caches them, and
//! answers with results plus per-request metrics.
//!
//! Three mechanisms do the work:
//!
//! - **Admission control** ([`queue`]): a bounded MPMC queue. A full
//!   queue rejects at submit with a typed error ([`service::RejectReason`])
//!   instead of queueing unboundedly, and requests whose deadline passed
//!   while queued are shed at dequeue.
//! - **Format/schedule caching** ([`cache`]): an LRU keyed by tensor
//!   fingerprint that holds the HiCOO conversion and factor matrices,
//!   evicted by byte budget. Cached tensors live behind stable `Arc`s, so
//!   the identity-keyed mode-schedule cache in `tenbench_core::sched`
//!   hits on every reuse too.
//! - **Micro-batching** ([`service`]): same-tensor/same-kernel requests
//!   waiting in the queue coalesce into one supervised execution whose
//!   result fans back out to every waiter.
//!
//! Execution itself goes through the [`service::Executor`] trait: the
//! bench crate plugs in the watchdogged/validated supervisor, and
//! [`service::DirectExecutor`] runs kernels inline for tests. The load
//! generator in [`stress`] drives the service closed-loop with
//! Zipf-skewed tensor popularity and probes overload behaviour.
//!
//! The service also has a socket-facing shape: [`net`] puts N sharded
//! `KernelService`s (partitioned by tensor fingerprint) behind a TCP
//! accept loop speaking the `TNF1` frame protocol from `tenbench_io`,
//! mapping every typed rejection onto a wire status code.
//!
//! Above single requests, [`job`] runs the multi-iteration decomposition
//! methods (CP-ALS, the tensor power method, the TTM-chain) as
//! long-running supervised jobs with per-iteration checkpoint/resume and
//! bitwise-deterministic recovery — the substrate the chaos harness in
//! the bench crate tries (and fails) to kill.

#![warn(missing_docs)]

pub mod cache;
pub mod job;
pub mod net;
pub mod queue;
pub mod service;
pub mod stress;

pub use cache::{CacheKey, CacheStats, PrepCache, PrepLayout, Prepared};
pub use job::{
    FaultInjector, InjectedFault, InlineStepRunner, JobConfig, JobError, JobKind, JobOutcome,
    JobProgress, JobService, JobServiceReport, JobSpec, JobTicket, ScriptedFaults, StepRunner,
    StepVerdict,
};
pub use net::{
    decode_response, encode_request, NetClient, NetConfig, NetReport, NetServer, WireRequest,
    WireResponse, WireStatus,
};
pub use service::{
    execute_direct, BatchJob, DirectExecutor, ExecOutcome, Executor, FormatKind, KernelService,
    RejectReason, Request, Response, ServeConfig, ServeError, ServeReport, Ticket,
};
pub use stress::{closed_loop, overload_probe, ClientTally, OverloadProbe, StressConfig};
