//! Load generation for the service: a closed-loop stress phase with
//! Zipf-skewed tensor popularity, and an open burst that probes the
//! admission boundary.
//!
//! The closed loop models the serving workload PASTA's kernels sit
//! inside: a fixed set of client workers, each submitting a request,
//! waiting for the answer, and immediately submitting the next. Tensor
//! choice is Zipf-distributed over the pool — a few tensors absorb most
//! requests — which is exactly the popularity skew the format cache is
//! built for. The overload probe instead fires a burst far larger than
//! the queue bound without waiting, to demonstrate that excess load is
//! refused with typed [`RejectReason::QueueFull`] rejections rather than
//! queued without bound.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tenbench_core::coo::CooTensor;
use tenbench_core::kernels::Kernel;
use tenbench_gen::zipf::ZipfSampler;

use crate::service::{FormatKind, KernelService, RejectReason, Request, ServeError};

/// Knobs for the closed-loop stress phase.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// How long the phase runs.
    pub duration: Duration,
    /// Concurrent closed-loop client workers.
    pub concurrency: usize,
    /// Zipf skew of tensor popularity over the pool (larger = more skew).
    pub zipf_alpha: f64,
    /// Factor rank for Ttm/Mttkrp requests.
    pub rank: usize,
    /// Per-request queue deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Base RNG seed; each worker derives its own stream from it.
    pub seed: u64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            duration: Duration::from_secs(5),
            concurrency: 4,
            zipf_alpha: 1.1,
            rank: 16,
            deadline_ms: 0,
            seed: 42,
        }
    }
}

/// What the closed-loop clients observed, summed over workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientTally {
    /// Requests submitted.
    pub issued: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Typed queue-full rejections at submit.
    pub rejected_full: u64,
    /// Typed deadline rejections at dequeue.
    pub rejected_deadline: u64,
    /// Requests whose execution failed.
    pub failed: u64,
    /// Requests that timed out in [`crate::service::Ticket::wait_timeout`]
    /// (typed [`ServeError::WorkerLost`]) — a lost worker, never silence.
    pub lost: u64,
}

impl ClientTally {
    fn absorb(&mut self, other: ClientTally) {
        self.issued += other.issued;
        self.ok += other.ok;
        self.rejected_full += other.rejected_full;
        self.rejected_deadline += other.rejected_deadline;
        self.failed += other.failed;
        self.lost += other.lost;
    }
}

/// Upper bound a stress/chaos client waits for any single response before
/// declaring the worker lost. Far above any legitimate kernel execution.
const WAIT_CAP: Duration = Duration::from_secs(60);

const KERNEL_MIX: [Kernel; 5] = [
    Kernel::Mttkrp,
    Kernel::Tew,
    Kernel::Ttv,
    Kernel::Ts,
    Kernel::Ttm,
];

/// Drive the service closed-loop for `cfg.duration` from
/// `cfg.concurrency` workers, picking tensors Zipf-skewed from `pool`.
/// Each worker rotates through the kernel mix, alternates COO/HiCOO, and
/// rotates the product mode, so the whole request space is exercised
/// while tensor popularity stays skewed.
pub fn closed_loop(
    svc: &KernelService,
    pool: &[Arc<CooTensor<f32>>],
    cfg: &StressConfig,
) -> ClientTally {
    assert!(!pool.is_empty(), "stress needs at least one tensor");
    let zipf = ZipfSampler::new(pool.len() as u64, cfg.zipf_alpha);
    let stop = AtomicBool::new(false);
    let deadline = (cfg.deadline_ms > 0).then(|| Duration::from_millis(cfg.deadline_ms));
    let mut total = ClientTally::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|w| {
                let zipf = &zipf;
                let stop = &stop;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(w as u64));
                    let mut tally = ClientTally::default();
                    let mut turn = w;
                    while !stop.load(Ordering::Relaxed) {
                        let tensor = pool[zipf.sample_index(&mut rng) as usize].clone();
                        let kernel = KERNEL_MIX[turn % KERNEL_MIX.len()];
                        let format = if turn % 2 == 0 {
                            FormatKind::Hicoo
                        } else {
                            FormatKind::Coo
                        };
                        let mode = turn % tensor.order();
                        turn += 1;
                        tally.issued += 1;
                        let ticket = svc.submit(Request {
                            kernel,
                            format,
                            mode,
                            rank: cfg.rank,
                            tensor,
                            deadline,
                        });
                        // wait_timeout, not wait: a dead worker must
                        // surface as a typed WorkerLost, not hang a client.
                        match ticket.map(|t| t.wait_timeout(WAIT_CAP)) {
                            Ok(Ok(_)) => tally.ok += 1,
                            Ok(Err(e)) | Err(e) => match e {
                                ServeError::Rejected(RejectReason::QueueFull { .. }) => {
                                    tally.rejected_full += 1;
                                }
                                ServeError::Rejected(RejectReason::DeadlineExpired { .. }) => {
                                    tally.rejected_deadline += 1
                                }
                                ServeError::Rejected(RejectReason::ShuttingDown) => break,
                                ServeError::Failed(_) => tally.failed += 1,
                                ServeError::WorkerLost { .. } => tally.lost += 1,
                            },
                        }
                    }
                    tally
                })
            })
            .collect();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            total.absorb(h.join().expect("stress worker"));
        }
    });
    total
}

/// What the overload burst observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadProbe {
    /// Requests fired in the burst.
    pub submitted: u64,
    /// Refused at submit with [`RejectReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Shed at dequeue with [`RejectReason::DeadlineExpired`].
    pub rejected_deadline: u64,
    /// Admitted and answered successfully.
    pub completed: u64,
    /// Admitted but failed in execution.
    pub failed: u64,
    /// Admitted but never answered within the wait cap (worker lost).
    pub lost: u64,
}

/// Fire a burst of at least 4× the queue bound without waiting between
/// submissions, each with a tight deadline, and account for every typed
/// outcome. Overload must surface as `rejected_queue_full > 0` — the
/// bound, not memory, is the limit.
pub fn overload_probe(svc: &KernelService, pool: &[Arc<CooTensor<f32>>]) -> OverloadProbe {
    assert!(!pool.is_empty(), "overload probe needs at least one tensor");
    let mut probe = OverloadProbe::default();
    let burst = svc.report().queue_bound * 4 + 8;
    let t0 = Instant::now();
    let mut tickets = Vec::new();
    for i in 0..burst {
        probe.submitted += 1;
        let tensor = pool[i % pool.len()].clone();
        match svc.submit(Request {
            kernel: KERNEL_MIX[i % KERNEL_MIX.len()],
            format: FormatKind::Hicoo,
            mode: i % tensor.order(),
            rank: 8,
            tensor,
            deadline: Some(Duration::from_millis(50)),
        }) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Rejected(RejectReason::QueueFull { .. })) => {
                probe.rejected_queue_full += 1;
            }
            Err(_) => probe.failed += 1,
        }
    }
    for t in tickets {
        match t.wait_timeout(WAIT_CAP) {
            Ok(_) => probe.completed += 1,
            Err(ServeError::Rejected(RejectReason::DeadlineExpired { .. })) => {
                probe.rejected_deadline += 1;
            }
            Err(ServeError::WorkerLost { .. }) => probe.lost += 1,
            Err(_) => probe.failed += 1,
        }
    }
    let _ = t0;
    probe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DirectExecutor, ServeConfig};
    use tenbench_core::shape::Shape;

    fn pool(n: usize) -> Vec<Arc<CooTensor<f32>>> {
        (0..n as u32)
            .map(|seed| {
                Arc::new(
                    CooTensor::from_entries(
                        Shape::new(vec![20, 20, 20]),
                        (0..200u32)
                            .map(|i| {
                                (
                                    vec![
                                        (i * 7 + seed) % 20,
                                        (i * 13 + seed * 3) % 20,
                                        (i * 29) % 20,
                                    ],
                                    (i % 17) as f32 + 1.0,
                                )
                            })
                            .collect(),
                    )
                    .unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn closed_loop_completes_and_hits_the_cache() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 2,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(DirectExecutor),
        );
        let pool = pool(6);
        let tally = closed_loop(
            &svc,
            &pool,
            &StressConfig {
                duration: Duration::from_millis(400),
                concurrency: 3,
                ..StressConfig::default()
            },
        );
        assert!(tally.issued > 0);
        assert!(tally.ok > 0, "{tally:?}");
        assert_eq!(tally.failed, 0, "{tally:?}");
        let report = svc.shutdown();
        // Zipf skew concentrates requests on few tensors → the prepared
        // formats are overwhelmingly reused.
        assert!(
            report.cache.hit_ratio() > 0.5,
            "hit ratio {:.2}",
            report.cache.hit_ratio()
        );
    }

    #[test]
    fn overload_probe_sees_typed_queue_full() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 1,
                queue_bound: 4,
                max_batch: 1,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(DirectExecutor),
        );
        let pool = pool(2);
        let probe = overload_probe(&svc, &pool);
        assert!(probe.rejected_queue_full > 0, "{probe:?}");
        assert_eq!(
            probe.submitted,
            probe.rejected_queue_full
                + probe.rejected_deadline
                + probe.completed
                + probe.failed
                + probe.lost
        );
        let report = svc.shutdown();
        assert_eq!(report.rejected_queue_full, probe.rejected_queue_full);
    }
}
