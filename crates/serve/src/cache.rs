//! The format/schedule cache: tensor fingerprint → prepared artifacts.
//!
//! A serving workload re-submits the same tensors over and over (the
//! stress generator models this with Zipf-skewed popularity), and the
//! expensive part of a request is not the kernel — it is the COO→HiCOO
//! conversion, the factor-matrix allocation, and the mode schedules. This
//! cache keys those artifacts by [`CooTensor::fingerprint`] so repeated
//! requests skip preparation entirely.
//!
//! Eviction is byte-budgeted LRU: entries are charged for the bytes the
//! cache materialized (HiCOO storage + factor matrices), and inserting
//! past the budget evicts from the cold end until the total fits. The
//! entry just inserted is never evicted, so a single over-budget tensor
//! still serves its own batch.
//!
//! Mode schedules are not stored here directly: `tenbench_core::sched`
//! already caches them keyed on buffer identity. Holding the converted
//! tensors behind stable `Arc`s is what makes that cache hit — every
//! reuse of a `Prepared` entry re-presents the same data pointer.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::hicoo::{HicooTensor, VbHicooTensor};
use tenbench_obs::flight::{self, FlightKind};

/// Which blocked layout a cache entry materializes. The value-blocked
/// variant pads each block's value run to a full SIMD lane multiple on a
/// 64-byte-aligned base (see `tenbench_core::hicoo::vb`), trading a little
/// memory for aligned full-lane vector loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrepLayout {
    /// Plain HiCOO value storage.
    #[default]
    Hicoo,
    /// Value-blocked HiCOO: lane-padded, 64-byte-aligned value runs.
    VbHicoo,
}

impl PrepLayout {
    /// Stable label for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            PrepLayout::Hicoo => "hicoo",
            PrepLayout::VbHicoo => "vb-hicoo",
        }
    }

    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<PrepLayout> {
        match s {
            "hicoo" => Some(PrepLayout::Hicoo),
            "vb-hicoo" | "vb" => Some(PrepLayout::VbHicoo),
            _ => None,
        }
    }
}

/// Cache key: content fingerprint plus the preparation parameters that
/// change the artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`CooTensor::fingerprint`] of the request tensor.
    pub fingerprint: u64,
    /// HiCOO block bits used for the conversion.
    pub block_bits: u8,
    /// Factor-matrix rank (0 for the rank-free kernels, which then share
    /// one entry per tensor).
    pub rank: usize,
    /// Blocked value layout the entry materializes. Part of the key: a
    /// service switching layouts must not serve one layout's buffers to
    /// the other's kernels.
    pub layout: PrepLayout,
}

/// The artifacts prepared once per cached tensor.
#[derive(Debug)]
pub struct Prepared {
    /// The request tensor, retained so the cache entry owns its inputs.
    pub coo: Arc<CooTensor<f32>>,
    /// The HiCOO conversion.
    pub hicoo: Arc<HicooTensor<f32>>,
    /// The value-blocked conversion, present iff the key's layout asked
    /// for it.
    pub vb: Option<Arc<VbHicooTensor<f32>>>,
    /// Per-mode factor matrices of the key's rank (empty when rank is 0).
    pub factors: Arc<Vec<DenseMatrix<f32>>>,
    /// The layout this entry was prepared for (mirrors the key).
    pub layout: PrepLayout,
    /// Bytes this entry charges against the budget (HiCOO + vb-HiCOO +
    /// factors; the COO `Arc` is shared with the caller and not counted).
    pub bytes: u64,
}

/// Counter snapshot for reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to prepare artifacts.
    pub misses: u64,
    /// Entries evicted to fit the byte budget.
    pub evictions: u64,
    /// Fingerprint collisions detected on lookup: the key matched but the
    /// stored tensor's content did not. Served as keyed-aside misses,
    /// never as another tensor's artifacts.
    pub collisions: u64,
    /// Entries resident right now.
    pub entries: usize,
    /// Bytes resident right now.
    pub bytes: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    /// LRU order: coldest at index 0, hottest at the end.
    entries: Vec<(CacheKey, Arc<Prepared>)>,
    /// Bytes charged by every resident entry. Maintained on insert and
    /// evict so the eviction sweep and `stats()` never re-sum the table.
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

impl Inner {
    /// Evict coldest-first until the tracked bytes fit `budget`, sparing
    /// the hottest entry so a single over-budget tensor still serves.
    fn evict_to_budget(&mut self, budget: u64) {
        while self.entries.len() > 1 && self.bytes > budget {
            let (evicted_key, evicted) = self.entries.remove(0);
            self.bytes -= evicted.bytes;
            self.evictions += 1;
            flight::note(FlightKind::CacheEvict, evicted_key.fingerprint);
        }
    }
}

/// What a keyed lookup found once the stored tensor was checked against
/// the request tensor.
enum Lookup {
    /// Key resident and content verified: a true hit.
    Hit(Arc<Prepared>),
    /// Key resident but the stored tensor differs: a fingerprint
    /// collision. The resident entry stays; the request is served aside.
    Collision,
    /// Key not resident.
    Miss,
}

/// Whether `a` and `b` hold the same tensor, bit for bit. Compared
/// field-wise rather than via `PartialEq` so the check is insensitive to
/// incidental state (and exact on NaN payloads): shape, then per-mode
/// index arrays, then value bit patterns.
fn same_content(a: &CooTensor<f32>, b: &CooTensor<f32>) -> bool {
    if a.shape().dims() != b.shape().dims() || a.nnz() != b.nnz() {
        return false;
    }
    if (0..a.order()).any(|m| a.mode_inds(m) != b.mode_inds(m)) {
        return false;
    }
    a.vals()
        .iter()
        .zip(b.vals())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The keyed LRU cache with byte-budget eviction.
pub struct PrepCache {
    budget: u64,
    inner: Mutex<Inner>,
}

impl PrepCache {
    /// Lock the cache state, recovering from poisoning. Mutations under
    /// this lock are position lookups plus `Vec` insert/remove — each
    /// leaves the entry list consistent at every unwind point, so a guard
    /// poisoned by a panicking worker is safe to keep using and one bad
    /// request cannot take the cache down with it.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A cache evicting past `budget_bytes` of materialized artifacts.
    pub fn new(budget_bytes: u64) -> Self {
        PrepCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                collisions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Look up `key`, preparing (HiCOO conversion + factors) on a miss.
    /// Returns the entry and whether it was a hit. Preparation runs
    /// outside the lock so a slow conversion does not stall hits.
    ///
    /// A hit is only served after the stored tensor is verified against
    /// `coo` (`Arc::ptr_eq` fast path, full content comparison otherwise):
    /// the 64-bit strided-sample fingerprint can collide across distinct
    /// tensors, and serving the resident entry then would hand the caller
    /// another tensor's artifacts. A verified mismatch is a keyed-aside
    /// miss — the artifacts are prepared and returned but never inserted,
    /// so the resident entry keeps its key and neither tensor corrupts
    /// the other.
    pub fn get_or_prepare(
        &self,
        key: CacheKey,
        coo: &Arc<CooTensor<f32>>,
    ) -> Result<(Arc<Prepared>, bool), String> {
        let mut collided = false;
        match self.touch(key, coo) {
            Lookup::Hit(found) => {
                // Charged to the worker's installed request ctx, so a
                // fault dump shows whether the failing request was hot.
                flight::note(FlightKind::CacheHit, key.fingerprint);
                return Ok((found, true));
            }
            Lookup::Collision => collided = true,
            Lookup::Miss => {}
        }
        flight::note(FlightKind::CacheMiss, key.fingerprint);
        let _span = tenbench_obs::span!("serve.prepare");
        let hicoo = Arc::new(
            HicooTensor::from_coo(coo.as_ref(), key.block_bits)
                .map_err(|e| format!("conversion: {e}"))?,
        );
        let factors: Vec<DenseMatrix<f32>> = if key.rank == 0 {
            Vec::new()
        } else {
            (0..coo.order())
                .map(|m| {
                    DenseMatrix::from_fn(coo.shape().dim(m) as usize, key.rank, |i, j| {
                        (((i * 31 + j * 17 + m * 7) % 1000) as f32) * 1e-3
                    })
                })
                .collect()
        };
        let vb = match key.layout {
            PrepLayout::Hicoo => None,
            PrepLayout::VbHicoo => Some(Arc::new(VbHicooTensor::from_hicoo(&hicoo))),
        };
        let bytes = hicoo.storage_bytes()
            + vb.as_ref().map_or(0, |v| v.storage_bytes())
            + factors.iter().map(|f| f.storage_bytes()).sum::<u64>();
        let prepared = Arc::new(Prepared {
            coo: coo.clone(),
            hicoo,
            vb,
            factors: Arc::new(factors),
            layout: key.layout,
            bytes,
        });
        let mut g = self.lock();
        g.misses += 1;
        // A detected collision never inserts: the resident entry owns the
        // key, and this request is served from its own freshly prepared
        // artifacts.
        if collided {
            return Ok((prepared, false));
        }
        // Another worker may have prepared the same key while we did; use
        // the resident entry so schedule caching keys on one buffer — but
        // only after the same content check a hit gets, since the racing
        // insert may belong to a colliding tensor.
        if let Some(at) = g.entries.iter().position(|(k, _)| *k == key) {
            if Arc::ptr_eq(&g.entries[at].1.coo, coo) || same_content(&g.entries[at].1.coo, coo) {
                let entry = g.entries.remove(at);
                let found = entry.1.clone();
                g.entries.push(entry);
                // The race loser's artifacts are dropped; budget pressure
                // may still need relief from earlier over-admissions.
                g.evict_to_budget(self.budget);
                return Ok((found, false));
            }
            g.collisions += 1;
            return Ok((prepared, false));
        }
        g.entries.push((key, prepared.clone()));
        g.bytes += prepared.bytes;
        g.evict_to_budget(self.budget);
        Ok((prepared, false))
    }

    fn touch(&self, key: CacheKey, coo: &Arc<CooTensor<f32>>) -> Lookup {
        let mut g = self.lock();
        let Some(at) = g.entries.iter().position(|(k, _)| *k == key) else {
            return Lookup::Miss;
        };
        // Fast path: the service re-submits the same `Arc` for repeated
        // requests; fall back to a full content comparison when the bytes
        // arrived over the wire in a fresh allocation.
        if !Arc::ptr_eq(&g.entries[at].1.coo, coo) && !same_content(&g.entries[at].1.coo, coo) {
            g.collisions += 1;
            return Lookup::Collision;
        }
        let entry = g.entries.remove(at);
        let found = entry.1.clone();
        g.entries.push(entry);
        g.hits += 1;
        Lookup::Hit(found)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        debug_assert_eq!(
            g.bytes,
            g.entries.iter().map(|(_, p)| p.bytes).sum::<u64>(),
            "tracked bytes drifted from the entry table"
        );
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            collisions: g.collisions,
            entries: g.entries.len(),
            bytes: g.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenbench_core::shape::Shape;

    fn tensor(seed: u32) -> Arc<CooTensor<f32>> {
        Arc::new(
            CooTensor::from_entries(
                Shape::new(vec![32, 32, 32]),
                (0..300u32)
                    .map(|i| {
                        (
                            vec![(i * 7 + seed) % 32, (i * 13) % 32, (i * 29 + seed) % 32],
                            (i + seed) as f32,
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        )
    }

    fn key_of(x: &CooTensor<f32>, rank: usize) -> CacheKey {
        CacheKey {
            fingerprint: x.fingerprint(),
            block_bits: 4,
            rank,
            layout: PrepLayout::Hicoo,
        }
    }

    #[test]
    fn second_lookup_hits_and_returns_same_buffers() {
        let cache = PrepCache::new(64 << 20);
        let x = tensor(1);
        let (a, hit_a) = cache.get_or_prepare(key_of(&x, 8), &x).unwrap();
        let (b, hit_b) = cache.get_or_prepare(key_of(&x, 8), &x).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        // Identical Arc — this is what keys the core schedule cache.
        assert!(Arc::ptr_eq(&a.hicoo, &b.hicoo));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let x1 = tensor(1);
        let x2 = tensor(2);
        let x3 = tensor(3);
        let one_entry = {
            let probe = PrepCache::new(u64::MAX);
            probe.get_or_prepare(key_of(&x1, 4), &x1).unwrap();
            probe.stats().bytes
        };
        // Room for two entries, not three.
        let cache = PrepCache::new(one_entry * 2 + one_entry / 2);
        cache.get_or_prepare(key_of(&x1, 4), &x1).unwrap();
        cache.get_or_prepare(key_of(&x2, 4), &x2).unwrap();
        cache.get_or_prepare(key_of(&x3, 4), &x3).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // x1 was coldest; re-fetching it is a miss, x3 is still a hit.
        let (_, hit3) = cache.get_or_prepare(key_of(&x3, 4), &x3).unwrap();
        assert!(hit3);
        let (_, hit1) = cache.get_or_prepare(key_of(&x1, 4), &x1).unwrap();
        assert!(!hit1);
    }

    #[test]
    fn layouts_key_separate_entries_and_record_themselves() {
        let cache = PrepCache::new(64 << 20);
        let x = tensor(5);
        let hk = key_of(&x, 8);
        let vk = CacheKey {
            layout: PrepLayout::VbHicoo,
            ..hk
        };
        let (h, _) = cache.get_or_prepare(hk, &x).unwrap();
        // Same tensor under the vb layout is a distinct entry, not a hit.
        let (v, hit) = cache.get_or_prepare(vk, &x).unwrap();
        assert!(!hit);
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(h.layout, PrepLayout::Hicoo);
        assert!(h.vb.is_none());
        assert_eq!(v.layout, PrepLayout::VbHicoo);
        let vb = v.vb.as_ref().expect("vb layout materializes the tensor");
        assert!(vb.validate().is_ok());
        assert!(vb.same_pattern(&VbHicooTensor::from_hicoo(&v.hicoo)));
        // The padded layout charges at least the plain one.
        assert!(v.bytes >= h.bytes);
    }

    /// Two distinct tensors whose fingerprints collide: with 2048
    /// nonzeros the fingerprint samples every other position, so a value
    /// change at (unsampled) position 1 is invisible to the hash.
    fn collision_pair() -> (Arc<CooTensor<f32>>, Arc<CooTensor<f32>>) {
        let n = 2048usize;
        let inds: Vec<Vec<u32>> = vec![
            (0..n).map(|i| (i % 32) as u32).collect(),
            (0..n).map(|i| ((i / 32) % 32) as u32).collect(),
            (0..n).map(|i| (i / 1024) as u32).collect(),
        ];
        let vals: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let a = CooTensor::from_parts(Shape::new(vec![32, 32, 32]), inds, vals).unwrap();
        let mut b = a.clone();
        b.vals_mut()[1] = -1.0;
        (Arc::new(a), Arc::new(b))
    }

    #[test]
    fn fingerprint_collision_served_aside_not_as_wrong_tensor() {
        let (a, b) = collision_pair();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "pair must collide for the regression to bite"
        );
        let cache = PrepCache::new(64 << 20);
        let (pa, hit_a) = cache.get_or_prepare(key_of(&a, 4), &a).unwrap();
        assert!(!hit_a);
        assert!(Arc::ptr_eq(&pa.coo, &a));
        // Same key, different tensor: the old cache served `a`'s
        // artifacts here as a hit. It must be a keyed-aside miss built
        // from `b`'s own content.
        let (pb, hit_b) = cache.get_or_prepare(key_of(&b, 4), &b).unwrap();
        assert!(!hit_b, "collision must not be served as a hit");
        assert!(
            Arc::ptr_eq(&pb.coo, &b),
            "collision served the resident tensor's artifacts"
        );
        assert!(!Arc::ptr_eq(&pa.hicoo, &pb.hicoo));
        // The resident entry survives untouched and still hits for `a`.
        let (pa2, hit_a2) = cache.get_or_prepare(key_of(&a, 4), &a).unwrap();
        assert!(hit_a2);
        assert!(Arc::ptr_eq(&pa.hicoo, &pa2.hicoo));
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn content_verified_hit_for_equal_tensor_in_fresh_allocation() {
        // A wire-decoded request re-presents the same tensor in a new
        // `Arc`; the content check must classify that as a hit, not a
        // collision.
        let x = tensor(3);
        let y = Arc::new(x.as_ref().clone());
        assert!(!Arc::ptr_eq(&x, &y));
        let cache = PrepCache::new(64 << 20);
        cache.get_or_prepare(key_of(&x, 4), &x).unwrap();
        let (_, hit) = cache.get_or_prepare(key_of(&y, 4), &y).unwrap();
        assert!(hit);
        assert_eq!(cache.stats().collisions, 0);
    }

    #[test]
    fn bytes_stay_within_budget_across_concurrent_prepares() {
        let one_entry = {
            let probe = PrepCache::new(u64::MAX);
            let x = tensor(100);
            probe.get_or_prepare(key_of(&x, 4), &x).unwrap();
            probe.stats().bytes
        };
        // Room for two entries; eight threads race over four distinct
        // keys so both the fresh-insert and the lost-race path run.
        let cache = Arc::new(PrepCache::new(one_entry * 2 + one_entry / 2));
        let budget = cache.budget_bytes();
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cache = cache.clone();
                s.spawn(move || {
                    for round in 0..6u32 {
                        let x = tensor(100 + (t + round) % 4);
                        cache.get_or_prepare(key_of(&x, 4), &x).unwrap();
                    }
                });
            }
        });
        // `stats()` also debug-asserts tracked bytes == re-summed bytes.
        let s = cache.stats();
        assert!(
            s.bytes <= budget,
            "cache over budget after racing inserts: {} > {}",
            s.bytes,
            budget
        );
        assert!(s.entries <= 2);
        assert!(s.evictions > 0);
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn oversized_entry_still_serves() {
        let cache = PrepCache::new(1);
        let x = tensor(9);
        let (p, _) = cache.get_or_prepare(key_of(&x, 2), &x).unwrap();
        assert!(p.bytes > 1);
        assert_eq!(cache.stats().entries, 1);
    }
}
