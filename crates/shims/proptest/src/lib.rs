//! Offline drop-in subset of [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it uses as path crates under `crates/shims/`. This shim
//! keeps proptest's surface (the `Strategy` trait with
//! `prop_map`/`prop_flat_map`/`boxed`/`no_shrink`, `prop::collection::vec`,
//! tuple and `Vec<BoxedStrategy<_>>` composition, the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros and `ProptestConfig`) but
//! implements it as a plain deterministic generator: each test runs
//! `cases` random inputs seeded from a stable hash of the test name, and a
//! failing case panics with the case number. There is **no shrinking** —
//! rerunning reproduces the identical failing input, which is what matters
//! for a fixed-seed CI suite.

use std::ops::{Range, RangeInclusive};

/// Everything needed for `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }

    /// Disable shrinking (a no-op here; the shim never shrinks).
    fn no_shrink(self) -> Self
    where
        Self: Sized,
    {
        self
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A `Vec` of strategies generates a `Vec` of values element-wise.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Inclusive-exclusive size bounds for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo
                    + if span > 0 {
                        rng.below(span) as usize
                    } else {
                        0
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `vec(element, len_or_range)`: a `Vec` strategy.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Per-test configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (carried by `prop_assert!` early returns).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Stable FNV-1a hash of the test name, used as the deterministic seed.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Driver used by the `proptest!` macro expansion: run `cases` inputs,
/// panicking with the case number on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_for(name));
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Assert a boolean property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(&$config, stringify!($name), |rng| {
                    $(
                        let $pat = {
                            let strategy = $strat;
                            $crate::Strategy::generate(&strategy, rng)
                        };
                    )*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $pat in $strat ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = crate::Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&w));
            let x = crate::Strategy::generate(&(2usize..=3), &mut rng);
            assert!((2..=3).contains(&x));
        }
    }

    #[test]
    fn composition_generates_expected_shapes() {
        let strat = (2usize..=3)
            .prop_flat_map(|order| {
                prop::collection::vec(1u32..10, order)
                    .prop_map(|dims| dims.iter().map(|&d| d as u64).sum::<u64>())
            })
            .no_shrink();
        let mut rng = crate::TestRng::new(9);
        for _ in 0..100 {
            let total = crate::Strategy::generate(&strat, &mut rng);
            assert!((2..=27).contains(&total));
        }
    }

    #[test]
    fn vec_of_boxed_strategies_is_a_strategy() {
        let coords: Vec<BoxedStrategy<u32>> = vec![(0u32..4).boxed(), (0u32..7).boxed()];
        let entry = (coords, -50i32..50).prop_map(|(c, v)| (c, v));
        let mut rng = crate::TestRng::new(5);
        let (c, v) = crate::Strategy::generate(&entry, &mut rng);
        assert_eq!(c.len(), 2);
        assert!(c[0] < 4 && c[1] < 7);
        assert!((-50..50).contains(&v));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(a in 0usize..10, (b, c) in (0u32..5, 1u8..=4)) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
            prop_assert!((1..=4).contains(&c), "c out of range: {c}");
            prop_assert_eq!(a, a);
            prop_assert_ne!(c as usize, 100);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            prop_assert!(false);
            ::core::result::Result::Ok(())
        });
    }
}
