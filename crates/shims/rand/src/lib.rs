//! Offline drop-in subset of [rand](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it uses as path crates under `crates/shims/`. The
//! generator is SplitMix64: tiny, fast, passes BigCrush at the scale the
//! synthetic tensor generators need, and — crucially for the benchmark
//! suite — fully deterministic from `seed_from_u64`, so generated datasets
//! are reproducible across machines. (Streams differ from upstream rand's
//! ChaCha-based `StdRng`; all in-repo datasets are generated through this
//! shim so the suite is self-consistent.)

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Extension trait providing typed sampling (`rng.random::<f64>()`).
pub trait RngExt: Rng {
    /// Sample a value of type `T` (uniform in `[0, 1)` for floats, full
    /// range for integers).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be sampled from a raw 64-bit generator.
pub trait FromRng {
    /// Sample one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The suite's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
