//! Offline drop-in subset of [parking_lot](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it uses as path crates under `crates/shims/`. This one
//! wraps `std::sync::Mutex` with parking_lot's non-poisoning `lock()`
//! signature (a poisoned std mutex propagates the original panic by
//! re-panicking, which matches parking_lot's observable behavior in a suite
//! that aborts on panics anyway).

use std::sync::MutexGuard;

/// A mutual-exclusion lock with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_shared_counter() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
