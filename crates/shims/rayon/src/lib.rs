//! Offline drop-in subset of [rayon](https://crates.io/crates/rayon)'s
//! data-parallel API, backed by `std::thread::scope`.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the handful of external APIs it actually uses as
//! small path crates under `crates/shims/`. This one covers the slice/range
//! parallel iterators, `ThreadPoolBuilder::install` thread-count scoping,
//! `broadcast`, and `current_num_threads`/`current_thread_index`.
//!
//! Semantics intentionally match rayon where the suite depends on them:
//!
//! * work is split into chunks of at least `with_min_len` items and executed
//!   by up to `current_num_threads()` OS threads with dynamic (work-stealing
//!   style) chunk assignment;
//! * `collect`/`filter`/`fold` preserve index order deterministically;
//! * `ThreadPool::install` scopes the logical thread count seen by nested
//!   parallel calls (used by the harness to emulate smaller machines);
//! * `current_thread_index()` identifies the worker inside a parallel
//!   region, enabling per-thread scratch arenas.
//!
//! Unsupported rayon features (adaptive splitting, full combinator set) are
//! simply absent; additions should stay API-compatible with real rayon so
//! the shim can be swapped back out when a registry is available.

use std::cell::Cell;
use std::cmp::Ordering;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Everything needed for `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelIterator, ParallelSliceExt, ParallelSliceMutExt,
    };
}

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Index of the current worker inside a parallel region (`None` outside).
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|c| c.get())
}

/// Builder for a scoped thread pool (only `num_threads` is honored).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail in
/// the shim, the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num = Some(n);
        self
    }

    /// Build the pool (infallible here).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: self.num.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A logical thread pool: scopes the thread count seen by nested parallel
/// calls. Threads are spawned per parallel region, not kept alive.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Run `f` with `current_num_threads()` equal to this pool's size.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.n)));
        let out = f();
        CURRENT_THREADS.with(|c| c.set(prev));
        out
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

/// Context passed to [`broadcast`] closures.
pub struct BroadcastContext {
    index: usize,
    num_threads: usize,
}

impl BroadcastContext {
    /// Index of this worker in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers participating in the broadcast.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run `f` once on every worker of the current pool, returning the results
/// in worker order.
pub fn broadcast<R, F>(f: F) -> Vec<R>
where
    R: Send,
    F: Fn(BroadcastContext) -> R + Sync,
{
    let n = current_num_threads().max(1);
    let threads = n;
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = Mutex::new(&mut out);
    std::thread::scope(|s| {
        let run = |idx: usize| {
            CURRENT_THREADS.with(|c| c.set(Some(threads)));
            let prev = THREAD_INDEX.with(|c| c.replace(Some(idx)));
            let r = f(BroadcastContext {
                index: idx,
                num_threads: n,
            });
            THREAD_INDEX.with(|c| c.set(prev));
            let mut guard = slots.lock().unwrap();
            guard[idx] = Some(r);
        };
        for idx in 1..n {
            s.spawn(move || run(idx));
        }
        run(0);
    });
    out.into_iter().map(|r| r.expect("worker result")).collect()
}

/// Split `0..len` into chunks of at least `grain` items and run `body` on
/// each chunk from up to `current_num_threads()` workers.
fn run_chunks<F>(len: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = current_num_threads().max(1);
    let grain = grain.max(1);
    if threads == 1 || len <= grain {
        let prev = THREAD_INDEX.with(|c| c.replace(Some(0)));
        body(0..len);
        THREAD_INDEX.with(|c| c.set(prev));
        return;
    }
    // Aim for several chunks per worker for load balance, but never below
    // the requested minimum chunk length.
    let chunk = grain.max(len.div_ceil(threads * 4)).max(1);
    let nchunks = len.div_ceil(chunk);
    let counter = AtomicUsize::new(0);
    let workers = threads.min(nchunks);
    std::thread::scope(|s| {
        let work = |wid: usize| {
            CURRENT_THREADS.with(|c| c.set(Some(threads)));
            let prev = THREAD_INDEX.with(|c| c.replace(Some(wid)));
            loop {
                let c = counter.fetch_add(1, AtomicOrdering::Relaxed);
                if c >= nchunks {
                    break;
                }
                let lo = c * chunk;
                body(lo..(lo + chunk).min(len));
            }
            THREAD_INDEX.with(|c| c.set(prev));
        };
        for wid in 1..workers {
            s.spawn(move || work(wid));
        }
        work(0);
    });
}

/// An indexed source of parallel items.
///
/// # Safety
/// `get(i)` may be called at most once per index per drive so that sources
/// handing out `&mut` items never alias.
pub unsafe trait IndexedSource: Sync {
    /// The item produced for one index.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce the item at `i`.
    ///
    /// # Safety
    /// Each index must be requested at most once across all workers.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator: an indexed source plus a minimum chunk length.
pub struct Par<S> {
    src: S,
    grain: usize,
}

/// Range source (`(a..b).into_par_iter()`).
pub struct RangeSrc {
    start: usize,
    len: usize,
}

unsafe impl IndexedSource for RangeSrc {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Shared-slice source (`slice.par_iter()`).
pub struct SliceSrc<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync + Send> IndexedSource for SliceSrc<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Mutable-slice source (`slice.par_iter_mut()`).
pub struct SliceMutSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SliceMutSrc<'_, T> {}

unsafe impl<'a, T: Send> IndexedSource for SliceMutSrc<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        &mut *self.ptr.add(i)
    }
}

/// Shared chunks source (`slice.par_chunks(n)`).
pub struct ChunksSrc<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

unsafe impl<'a, T: Sync + Send> IndexedSource for ChunksSrc<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        &self.slice[lo..(lo + self.chunk).min(self.slice.len())]
    }
}

/// Mutable chunks source (`slice.par_chunks_mut(n)`).
pub struct ChunksMutSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for ChunksMutSrc<'_, T> {}

unsafe impl<'a, T: Send> IndexedSource for ChunksMutSrc<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// `map` adapter.
pub struct MapSrc<S, F> {
    src: S,
    f: F,
}

unsafe impl<S, F, U> IndexedSource for MapSrc<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
{
    type Item = U;
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> U {
        (self.f)(self.src.get(i))
    }
}

/// `enumerate` adapter.
pub struct EnumerateSrc<S> {
    src: S,
}

unsafe impl<S: IndexedSource> IndexedSource for EnumerateSrc<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        (i, self.src.get(i))
    }
}

/// `zip` adapter (length is the minimum of the two sides).
pub struct ZipSrc<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: IndexedSource, B: IndexedSource> IndexedSource for ZipSrc<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.get(i), self.b.get(i))
    }
}

/// Write-only pointer used by order-preserving `collect`.
struct OutPtr<T>(*mut T);
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<S: IndexedSource> Par<S> {
    /// Require chunks of at least `n` items.
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.grain = n.max(1);
        self
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> Par<EnumerateSrc<S>> {
        Par {
            src: EnumerateSrc { src: self.src },
            grain: self.grain,
        }
    }

    /// Transform every item.
    pub fn map<U, F>(self, f: F) -> Par<MapSrc<S, F>>
    where
        F: Fn(S::Item) -> U + Sync,
        U: Send,
    {
        Par {
            src: MapSrc { src: self.src, f },
            grain: self.grain,
        }
    }

    /// Iterate two sources in lockstep.
    pub fn zip<S2: IndexedSource>(self, other: Par<S2>) -> Par<ZipSrc<S, S2>> {
        Par {
            src: ZipSrc {
                a: self.src,
                b: other.src,
            },
            grain: self.grain.max(other.grain),
        }
    }

    /// Keep items matching `pred`; only `collect` is supported downstream.
    pub fn filter<P>(self, pred: P) -> ParFilter<S, P>
    where
        P: Fn(&S::Item) -> bool + Sync,
    {
        ParFilter {
            src: self.src,
            grain: self.grain,
            pred,
        }
    }

    /// Per-chunk accumulators in the style of rayon's `fold`; combine with
    /// [`ParFold::collect`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParFold<S, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, S::Item) -> T + Sync,
    {
        ParFold {
            src: self.src,
            grain: self.grain,
            identity,
            fold_op,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.src;
        run_chunks(src.len(), self.grain, |r| {
            for i in r {
                // SAFETY: run_chunks yields each index exactly once.
                f(unsafe { src.get(i) });
            }
        });
    }

    /// Collect all items in index order.
    pub fn collect<C: From<Vec<S::Item>>>(self) -> C {
        let len = self.src.len();
        let src = &self.src;
        let mut out: Vec<S::Item> = Vec::with_capacity(len);
        let ptr = OutPtr(out.as_mut_ptr());
        let ptr_ref = &ptr;
        run_chunks(len, self.grain, |r| {
            for i in r {
                // SAFETY: each index written exactly once into capacity we
                // reserved; set_len only after all workers joined.
                unsafe { ptr_ref.0.add(i).write(src.get(i)) };
            }
        });
        // SAFETY: every slot in 0..len was initialized above.
        unsafe { out.set_len(len) };
        C::from(out)
    }

    /// Sum all items.
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        let parts = self
            .fold_chunks(|items| items.sum::<T>())
            .into_iter()
            .map(|(_, v)| v);
        parts.sum()
    }

    /// Run `f` once per chunk over that chunk's items, returning
    /// `(chunk_start, result)` pairs sorted by chunk start.
    fn fold_chunks<T, F>(self, f: F) -> Vec<(usize, T)>
    where
        T: Send,
        F: Fn(&mut dyn Iterator<Item = S::Item>) -> T + Sync,
    {
        let src = &self.src;
        let parts: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
        run_chunks(src.len(), self.grain, |r| {
            let start = r.start;
            // SAFETY: run_chunks yields each index exactly once.
            let mut it = r.map(|i| unsafe { src.get(i) });
            let v = f(&mut it);
            parts.lock().unwrap().push((start, v));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(s, _)| s);
        parts
    }
}

/// A filtered parallel iterator (terminal `collect` only).
pub struct ParFilter<S, P> {
    src: S,
    grain: usize,
    pred: P,
}

impl<S, P> ParFilter<S, P>
where
    S: IndexedSource,
    P: Fn(&S::Item) -> bool + Sync,
{
    /// Collect the matching items in index order.
    pub fn collect<C: From<Vec<S::Item>>>(self) -> C {
        let pred = &self.pred;
        let parts = Par {
            src: self.src,
            grain: self.grain,
        }
        .fold_chunks(|items| items.filter(|x| pred(x)).collect::<Vec<_>>());
        let mut out = Vec::new();
        for (_, mut part) in parts {
            out.append(&mut part);
        }
        C::from(out)
    }
}

/// A folded parallel iterator (terminal `collect` only).
pub struct ParFold<S, ID, F> {
    src: S,
    grain: usize,
    identity: ID,
    fold_op: F,
}

impl<S, T, ID, F> ParFold<S, ID, F>
where
    S: IndexedSource,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, S::Item) -> T + Sync,
{
    /// Collect the per-chunk accumulators in chunk order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        let identity = &self.identity;
        let fold_op = &self.fold_op;
        let parts = Par {
            src: self.src,
            grain: self.grain,
        }
        .fold_chunks(|items| {
            let mut acc = identity();
            for x in items {
                acc = fold_op(acc, x);
            }
            acc
        });
        C::from(parts.into_iter().map(|(_, v)| v).collect::<Vec<T>>())
    }
}

/// Marker trait so `Par` chains read like rayon's (`ParallelIterator`).
pub trait ParallelIterator {}
impl<S> ParallelIterator for Par<S> {}

/// `into_par_iter()` for index ranges.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Par<RangeSrc>;
    fn into_par_iter(self) -> Par<RangeSrc> {
        Par {
            src: RangeSrc {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
            grain: 1,
        }
    }
}

/// Parallel views over shared slices.
pub trait ParallelSliceExt<T: Sync + Send> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<SliceSrc<'_, T>>;
    /// Parallel iterator over `&[T]` chunks of length `n` (last may be
    /// short).
    fn par_chunks(&self, n: usize) -> Par<ChunksSrc<'_, T>>;
}

impl<T: Sync + Send> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> Par<SliceSrc<'_, T>> {
        Par {
            src: SliceSrc { slice: self },
            grain: 1,
        }
    }
    fn par_chunks(&self, n: usize) -> Par<ChunksSrc<'_, T>> {
        assert!(n > 0, "chunk length must be positive");
        Par {
            src: ChunksSrc {
                slice: self,
                chunk: n,
            },
            grain: 1,
        }
    }
}

/// Parallel views over mutable slices.
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, T>>;
    /// Parallel iterator over `&mut [T]` chunks of length `n`.
    fn par_chunks_mut(&mut self, n: usize) -> Par<ChunksMutSrc<'_, T>>;
    /// Sort in place (sequential under the hood; kept for API parity).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, T>> {
        Par {
            src: SliceMutSrc {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: PhantomData,
            },
            grain: 1,
        }
    }
    fn par_chunks_mut(&mut self, n: usize) -> Par<ChunksMutSrc<'_, T>> {
        assert!(n > 0, "chunk length must be positive");
        Par {
            src: ChunksMutSrc {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: n,
                _marker: PhantomData,
            },
            grain: 1,
        }
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        self.sort_unstable_by(|a, b| cmp(a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn filter_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000)
            .into_par_iter()
            .filter(|&i| i % 3 == 0)
            .collect();
        let expect: Vec<usize> = (0..10_000).filter(|&i| i % 3 == 0).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn mut_iteration_covers_every_slot() {
        let mut v = vec![0u32; 5_000];
        v.par_iter_mut()
            .with_min_len(64)
            .enumerate()
            .for_each(|(i, x)| *x = i as u32 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn chunked_zip_matches_sequential_triad() {
        let n = 4096;
        let b: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let c: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
        let mut a = vec![0.0f32; n];
        a.par_chunks_mut(128)
            .zip(b.par_chunks(128))
            .zip(c.par_chunks(128))
            .for_each(|((ac, bc), cc)| {
                for i in 0..ac.len() {
                    ac[i] = bc[i] * 2.0 + cc[i];
                }
            });
        assert!(a
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i as f32) * 2.0 + (i * 3) as f32));
    }

    #[test]
    fn fold_collect_accumulates_everything() {
        let parts: Vec<u64> = (0..100_000)
            .into_par_iter()
            .with_min_len(1024)
            .fold(|| 0u64, |acc, i| acc + i as u64)
            .collect();
        let total: u64 = parts.into_iter().sum();
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: f64 = (0..1000).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, 499_500.0);
    }

    #[test]
    fn install_scopes_thread_count() {
        let n = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn broadcast_runs_once_per_worker() {
        let ids = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| broadcast(|ctx| ctx.index()));
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sort_by_orders() {
        let mut v: Vec<u32> = (0..1000).rev().collect();
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn thread_index_is_set_inside_regions() {
        assert_eq!(current_thread_index(), None);
        let seen = Mutex::new(Vec::new());
        (0..100).into_par_iter().for_each(|_| {
            seen.lock().unwrap().push(current_thread_index());
        });
        assert!(seen.lock().unwrap().iter().all(|i| i.is_some()));
    }
}
