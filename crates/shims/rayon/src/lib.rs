//! Offline drop-in subset of [rayon](https://crates.io/crates/rayon)'s
//! data-parallel API, backed by a lazily-initialized persistent worker pool.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the handful of external APIs it actually uses as
//! small path crates under `crates/shims/`. This one covers the slice/range
//! parallel iterators, `ThreadPoolBuilder::install` thread-count scoping,
//! `broadcast`, parallel unstable sorts, and
//! `current_num_threads`/`current_thread_index`.
//!
//! Semantics intentionally match rayon where the suite depends on them:
//!
//! * work is split into chunks of at least `with_min_len` items and executed
//!   by up to `current_num_threads()` logical workers with dynamic
//!   (work-stealing style) chunk assignment off a shared per-region counter;
//! * worker OS threads are spawned lazily on first demand, then parked on a
//!   condvar between regions and reused — parallel regions never spawn
//!   per-region threads;
//! * the submitting thread always participates, so a region completes even
//!   if every pool worker is busy elsewhere (this also makes nested regions
//!   deadlock-free);
//! * panics inside a region are captured on whichever participant hit them
//!   and re-thrown on the submitting thread after every helper has detached,
//!   leaving the pool reusable;
//! * `collect`/`filter`/`fold` preserve index order deterministically;
//! * `ThreadPool::install` scopes the logical thread count seen by nested
//!   parallel calls (used by the harness to emulate smaller machines);
//! * `current_thread_index()` identifies the worker inside a parallel
//!   region, enabling per-thread scratch arenas;
//! * `par_sort_unstable_by`/`par_sort_unstable_by_key` really sort in
//!   parallel (per-chunk unstable sorts + pairwise index-run merges + an
//!   in-place cycle permutation) with a left-run tie preference.
//!
//! Unsupported rayon features (adaptive splitting, full combinator set) are
//! simply absent; additions should stay API-compatible with real rayon so
//! the shim can be swapped back out when a registry is available.

use std::cell::Cell;
use std::cmp::Ordering;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Stable per-OS-thread identifiers for per-thread caches.
///
/// `current_thread_index()` mirrors rayon: it names a *participant slot*
/// inside one region, so it resets to 0 in sequential fast paths and in
/// nested regions — two sibling workers running nested loops both observe
/// index 0, which made `ScratchArena`-style caches collide. Stable ids
/// instead name the OS thread: pool workers permanently own `1 + spawn
/// index` (the pool's stable worker index, matching their
/// `tenbench-pool-N` thread name), every other thread draws a unique id
/// past the worker range on first use. Not part of the rayon API.
mod stable_id {
    use super::*;

    thread_local! {
        pub(super) static STABLE_ID: Cell<Option<usize>> = const { Cell::new(None) };
    }

    /// Non-pool threads draw ids after the worker range.
    static NEXT_FOREIGN: AtomicUsize = AtomicUsize::new(pool::MAX_WORKERS + 1);

    pub(super) fn get() -> usize {
        STABLE_ID.with(|c| match c.get() {
            Some(id) => id,
            None => {
                let id = NEXT_FOREIGN.fetch_add(1, AtomicOrdering::Relaxed);
                c.set(Some(id));
                id
            }
        })
    }
}

/// A stable identifier for the calling OS thread: pool workers return
/// `1 + spawn index` for their whole lifetime, other threads a unique id
/// `> MAX_WORKERS` assigned on first call. Unlike
/// [`current_thread_index`] this never changes across (nested) parallel
/// regions, making it the right key for per-thread scratch caches.
/// Diagnostics/infrastructure API, not part of rayon.
pub fn stable_thread_id() -> usize {
    stable_id::get()
}

/// The pool's stable worker index for the calling thread (its spawn
/// index, constant for the thread's lifetime), or `None` for threads the
/// pool does not own. Unlike [`current_thread_index`] this does not reset
/// in nested regions or sequential fast paths. Not part of the rayon API.
pub fn stable_worker_index() -> Option<usize> {
    stable_id::STABLE_ID
        .with(|c| c.get())
        .and_then(|id| (1..=pool::MAX_WORKERS).contains(&id).then(|| id - 1))
}

/// Everything needed for `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParallelIterator, ParallelSliceExt, ParallelSliceMutExt,
    };
}

thread_local! {
    static CURRENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Largest logical thread count ever requested via a built pool; feeds
/// [`max_num_threads`].
static MAX_LOGICAL: AtomicUsize = AtomicUsize::new(0);

fn note_logical(n: usize) {
    MAX_LOGICAL.fetch_max(n, AtomicOrdering::Relaxed);
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    CURRENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(available_threads)
}

/// Upper bound on the number of logical workers any region in this process
/// may use: the hardware parallelism or the widest pool built so far,
/// whichever is larger. Useful for sizing per-thread slot arrays that must
/// outlive a single `install` scope.
pub fn max_num_threads() -> usize {
    available_threads().max(MAX_LOGICAL.load(AtomicOrdering::Relaxed))
}

/// Index of the current worker inside a parallel region (`None` outside).
pub fn current_thread_index() -> Option<usize> {
    THREAD_INDEX.with(|c| c.get())
}

mod pool {
    //! The persistent worker pool behind every parallel region.
    //!
    //! A single process-wide registry owns a queue of open regions ("jobs")
    //! and a set of detached worker threads parked on a condvar. Submitting
    //! a region enqueues a job with `helpers` open claim slots and wakes
    //! workers (spawning new ones only when fewer are idle than slots, up to
    //! a process cap). Each participant — the submitting caller is always
    //! participant 0 — drains chunks off the job's shared atomic counter
    //! until the region is exhausted, so progress never depends on a worker
    //! showing up. The caller then retracts the job (freezing the set of
    //! joined helpers), waits for each of them to signal completion, and
    //! finally re-throws the first captured panic, if any. Because the
    //! caller blocks until every helper has detached, the job's borrowed,
    //! lifetime-erased body pointer never outlives the closure it points to.

    use std::any::Any;
    use std::ops::Range;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};
    use std::time::Instant;

    use crate::{CURRENT_THREADS, THREAD_INDEX};

    /// Telemetry for one pool participant. All relaxed: totals are read
    /// after the regions of interest have joined.
    pub(crate) struct StatCell {
        pub(crate) busy_ns: AtomicU64,
        pub(crate) park_ns: AtomicU64,
        pub(crate) regions: AtomicU64,
        pub(crate) chunks: AtomicU64,
    }

    impl StatCell {
        const fn new() -> Self {
            StatCell {
                busy_ns: AtomicU64::new(0),
                park_ns: AtomicU64::new(0),
                regions: AtomicU64::new(0),
                chunks: AtomicU64::new(0),
            }
        }

        fn reset(&self) {
            self.busy_ns.store(0, Ordering::Relaxed);
            self.park_ns.store(0, Ordering::Relaxed);
            self.regions.store(0, Ordering::Relaxed);
            self.chunks.store(0, Ordering::Relaxed);
        }
    }

    /// Master switch for pool telemetry. Off (the default) costs one
    /// relaxed load per region/park; on adds two monotonic clock reads
    /// per participant per region.
    static TELEMETRY: AtomicBool = AtomicBool::new(false);
    /// Parallel regions executed (pool path and sequential fast path).
    static REGIONS: AtomicU64 = AtomicU64::new(0);
    /// Chunks scheduled across all regions.
    static CHUNKS_TOTAL: AtomicU64 = AtomicU64::new(0);
    /// Chunks executed by a pool helper rather than the submitting
    /// caller, i.e. taken off the region's shared chunk counter.
    static CHUNKS_STOLEN: AtomicU64 = AtomicU64::new(0);
    /// Aggregate lane for every submitting caller (the main thread, test
    /// threads, or a worker submitting a nested region).
    static CALLER_STATS: StatCell = StatCell::new();

    fn worker_stats() -> &'static [StatCell] {
        static CELLS: OnceLock<Vec<StatCell>> = OnceLock::new();
        CELLS.get_or_init(|| (0..MAX_WORKERS).map(|_| StatCell::new()).collect())
    }

    #[inline]
    pub(crate) fn telemetry_enabled() -> bool {
        TELEMETRY.load(Ordering::Relaxed)
    }

    pub(crate) fn set_telemetry(on: bool) -> bool {
        TELEMETRY.swap(on, Ordering::Relaxed)
    }

    pub(crate) fn reset_stats() {
        for cell in worker_stats() {
            cell.reset();
        }
        CALLER_STATS.reset();
        REGIONS.store(0, Ordering::Relaxed);
        CHUNKS_TOTAL.store(0, Ordering::Relaxed);
        CHUNKS_STOLEN.store(0, Ordering::Relaxed);
    }

    fn snap_cell(worker: usize, cell: &StatCell) -> crate::WorkerStats {
        crate::WorkerStats {
            worker,
            busy_ns: cell.busy_ns.load(Ordering::Relaxed),
            park_ns: cell.park_ns.load(Ordering::Relaxed),
            regions: cell.regions.load(Ordering::Relaxed),
            chunks: cell.chunks.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn stats_snapshot() -> crate::PoolStats {
        let spawned = registry().queue.lock().unwrap().spawned;
        crate::PoolStats {
            workers: worker_stats()
                .iter()
                .take(spawned)
                .enumerate()
                .map(|(i, cell)| snap_cell(i, cell))
                .collect(),
            caller: snap_cell(usize::MAX, &CALLER_STATS),
            regions: REGIONS.load(Ordering::Relaxed),
            chunks_total: CHUNKS_TOTAL.load(Ordering::Relaxed),
            chunks_stolen: CHUNKS_STOLEN.load(Ordering::Relaxed),
        }
    }

    /// Charge a caller-lane region to the telemetry totals.
    fn note_caller_region(elapsed_ns: u64, scheduled_chunks: u64, executed_chunks: u64) {
        CALLER_STATS
            .busy_ns
            .fetch_add(elapsed_ns, Ordering::Relaxed);
        CALLER_STATS.regions.fetch_add(1, Ordering::Relaxed);
        CALLER_STATS
            .chunks
            .fetch_add(executed_chunks, Ordering::Relaxed);
        REGIONS.fetch_add(1, Ordering::Relaxed);
        CHUNKS_TOTAL.fetch_add(scheduled_chunks, Ordering::Relaxed);
    }

    /// Hard cap on pool worker (helper) threads for the whole process.
    pub(crate) const MAX_WORKERS: usize = 255;

    type Body = dyn Fn(Range<usize>) + Sync;

    struct JobState {
        /// Helpers that have claimed a slot on this job so far.
        joined: usize,
        /// Helpers that have finished working on it.
        finished: usize,
    }

    /// One parallel region: a chunk counter plus a lifetime-erased body.
    struct Job {
        /// Next chunk index to claim.
        counter: AtomicUsize,
        nchunks: usize,
        chunk: usize,
        len: usize,
        /// Logical width of the region; propagated into workers so nested
        /// parallel calls observe the installed thread count.
        threads: usize,
        /// Participant-index allocator; the submitting caller holds 0.
        next_index: AtomicUsize,
        /// Causal context of the submitting thread, relayed onto every
        /// helper for the duration of its participation (thread-locals do
        /// not inherit, so the handoff must be explicit).
        ctx: Option<tenbench_obs::ctx::TraceCtx>,
        /// Erased pointer to the caller's chunk body.
        body: *const Body,
        state: Mutex<JobState>,
        done: Condvar,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    // SAFETY: `body` is only dereferenced while the submitting caller is
    // blocked inside `run_region` — the caller retracts the job and waits
    // for every joined helper before returning, so the erased borrow never
    // dangles. The closure itself is `Sync`, and all other fields are
    // thread-safe primitives.
    unsafe impl Send for Job {}
    unsafe impl Sync for Job {}

    impl Job {
        /// Pull chunks off the shared counter until the region is
        /// drained; returns how many chunks this participant executed.
        fn drain(&self) -> u64 {
            // SAFETY: see `unsafe impl Send for Job`.
            let body = unsafe { &*self.body };
            let mut executed = 0u64;
            loop {
                let c = self.counter.fetch_add(1, Ordering::Relaxed);
                if c >= self.nchunks {
                    break;
                }
                executed += 1;
                let lo = c * self.chunk;
                body(lo..(lo + self.chunk).min(self.len));
            }
            executed
        }

        fn record_panic(&self, payload: Box<dyn Any + Send>) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    struct Queue {
        /// Open jobs, each with its remaining helper claim slots.
        jobs: Vec<(Arc<Job>, usize)>,
        /// Workers currently parked waiting for a job.
        idle: usize,
        /// Worker threads ever spawned (they never exit).
        spawned: usize,
    }

    struct Registry {
        queue: Mutex<Queue>,
        work: Condvar,
    }

    fn registry() -> &'static Registry {
        static REG: OnceLock<Registry> = OnceLock::new();
        REG.get_or_init(|| Registry {
            queue: Mutex::new(Queue {
                jobs: Vec::new(),
                idle: 0,
                spawned: 0,
            }),
            work: Condvar::new(),
        })
    }

    /// Number of worker threads the pool has ever spawned (diagnostics).
    pub fn worker_count() -> usize {
        registry().queue.lock().unwrap().spawned
    }

    fn worker_loop(reg: &'static Registry, worker_id: usize) {
        // Workers permanently own the stable id `1 + spawn index`; see
        // `crate::stable_thread_id`.
        crate::stable_id::STABLE_ID.with(|c| c.set(Some(1 + worker_id)));
        loop {
            // Claim a helper slot on some open, undrained job.
            let job = {
                let mut q = reg.queue.lock().unwrap();
                loop {
                    let pos = q.jobs.iter().position(|(j, slots)| {
                        *slots > 0 && j.counter.load(Ordering::Relaxed) < j.nchunks
                    });
                    if let Some(pos) = pos {
                        let job = q.jobs[pos].0.clone();
                        q.jobs[pos].1 -= 1;
                        if q.jobs[pos].1 == 0 {
                            q.jobs.remove(pos);
                        }
                        // Registering under the registry lock means the
                        // caller's retract() happens strictly before or
                        // after this join — `joined` is frozen once the
                        // job has left the queue.
                        job.state.lock().unwrap().joined += 1;
                        break job;
                    }
                    q.idle += 1;
                    let park_t0 = telemetry_enabled().then(Instant::now);
                    q = reg.work.wait(q).unwrap();
                    if let Some(t0) = park_t0 {
                        worker_stats()[worker_id]
                            .park_ns
                            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    }
                    q.idle -= 1;
                }
            };

            let index = job.next_index.fetch_add(1, Ordering::Relaxed);
            let prev_threads = CURRENT_THREADS.with(|c| c.replace(Some(job.threads)));
            let prev_index = THREAD_INDEX.with(|c| c.replace(Some(index)));
            let ctx_guard = tenbench_obs::ctx::install_opt(job.ctx);
            let busy_t0 = telemetry_enabled().then(Instant::now);
            let result = catch_unwind(AssertUnwindSafe(|| job.drain()));
            if let Some(t0) = busy_t0 {
                let cell = &worker_stats()[worker_id];
                cell.busy_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                cell.regions.fetch_add(1, Ordering::Relaxed);
                if let Ok(executed) = &result {
                    cell.chunks.fetch_add(*executed, Ordering::Relaxed);
                    CHUNKS_STOLEN.fetch_add(*executed, Ordering::Relaxed);
                }
            }
            if let Ok(executed) = &result {
                if *executed > 0 {
                    // One flight event per region-join, not per chunk.
                    tenbench_obs::flight::note(tenbench_obs::flight::FlightKind::Steal, *executed);
                }
            }
            drop(ctx_guard);
            THREAD_INDEX.with(|c| c.set(prev_index));
            CURRENT_THREADS.with(|c| c.set(prev_threads));
            if let Err(payload) = result {
                job.record_panic(payload);
            }
            let mut st = job.state.lock().unwrap();
            st.finished += 1;
            job.done.notify_all();
        }
    }

    fn submit(job: Arc<Job>, helpers: usize) {
        let reg = registry();
        let mut q = reg.queue.lock().unwrap();
        q.jobs.push((job, helpers));
        // Reserve spawn indices under the lock but create the OS threads
        // after releasing it: thread creation is microseconds of kernel
        // work, and doing it inside the critical section serialized every
        // concurrent submitter (and every worker trying to claim a job)
        // behind one region's cold-start.
        let deficit = helpers
            .saturating_sub(q.idle)
            .min(MAX_WORKERS.saturating_sub(q.spawned));
        let first_id = q.spawned;
        q.spawned += deficit;
        // Wake only as many parked workers as this job can seat.
        // `notify_all` stampeded every parked worker through the queue
        // lock on every submit; the ones that found no open slot just
        // re-parked, so wide pools paid a herd of wakeups per region.
        let wake = helpers.min(q.idle);
        drop(q);
        for _ in 0..wake {
            reg.work.notify_one();
        }
        for id in first_id..first_id + deficit {
            let spawned = std::thread::Builder::new()
                .name(format!("tenbench-pool-{id}"))
                .spawn(move || worker_loop(registry(), id))
                .is_ok();
            if !spawned {
                // Out of OS threads: the reserved index stays dead (its
                // stats lane reads zero) and the caller still drains the
                // region. Indices are never reused, so stable worker ids
                // stay unique.
                break;
            }
        }
    }

    fn retract(job: &Arc<Job>) {
        let reg = registry();
        let mut q = reg.queue.lock().unwrap();
        q.jobs.retain(|(j, _)| !Arc::ptr_eq(j, job));
    }

    /// Target chunks per logical worker. Enough slack that a worker stuck
    /// on an expensive chunk sheds the rest of its share to its peers, few
    /// enough that claims on the region's shared counter stay cheap: the
    /// counter is one `fetch_add` per chunk, so a region costs
    /// `threads * CHUNKS_PER_WORKER` contended RMWs at most.
    pub(crate) const CHUNKS_PER_WORKER: usize = 8;

    /// Execute `body` over `0..len` in chunks of at least `grain` items,
    /// using up to `current_num_threads()` logical workers.
    pub fn run_region(len: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if len == 0 {
            return;
        }
        let threads = crate::current_num_threads().max(1);
        let grain = grain.max(1);
        // Aim for CHUNKS_PER_WORKER chunks per worker for load balance,
        // but never below the requested minimum chunk length.
        let chunk = grain.max(len.div_ceil(threads * CHUNKS_PER_WORKER)).max(1);
        let nchunks = len.div_ceil(chunk);
        let helpers = (threads - 1)
            .min(nchunks.saturating_sub(1))
            .min(MAX_WORKERS);
        if threads == 1 || len <= grain || helpers == 0 {
            let t0 = telemetry_enabled().then(Instant::now);
            let prev = THREAD_INDEX.with(|c| c.replace(Some(0)));
            body(0..len);
            THREAD_INDEX.with(|c| c.set(prev));
            if let Some(t0) = t0 {
                note_caller_region(t0.elapsed().as_nanos() as u64, 1, 1);
            }
            return;
        }

        // SAFETY: the erased 'static lifetime is a lie confined to this
        // function — the caller blocks below until every helper that joined
        // the job has finished, so `body` outlives all uses.
        let raw: *const (dyn Fn(Range<usize>) + Sync + '_) = body;
        let erased: *const Body = unsafe { std::mem::transmute(raw) };
        let job = Arc::new(Job {
            counter: AtomicUsize::new(0),
            nchunks,
            chunk,
            len,
            threads,
            next_index: AtomicUsize::new(1),
            ctx: tenbench_obs::ctx::current(),
            body: erased,
            state: Mutex::new(JobState {
                joined: 0,
                finished: 0,
            }),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        submit(job.clone(), helpers);

        // The caller is participant 0 and always drains; a region finishes
        // even if no worker ever picks it up.
        let t0 = telemetry_enabled().then(Instant::now);
        let prev = THREAD_INDEX.with(|c| c.replace(Some(0)));
        let caller_result = catch_unwind(AssertUnwindSafe(|| job.drain()));
        THREAD_INDEX.with(|c| c.set(prev));
        if let Some(t0) = t0 {
            let executed = *caller_result.as_ref().ok().unwrap_or(&0);
            note_caller_region(t0.elapsed().as_nanos() as u64, nchunks as u64, executed);
        }

        retract(&job);
        {
            let mut st = job.state.lock().unwrap();
            while st.finished < st.joined {
                st = job.done.wait(st).unwrap();
            }
        }

        if let Some(payload) = job.panic.lock().unwrap().take() {
            std::panic::resume_unwind(payload);
        }
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Number of OS worker threads the persistent pool has spawned so far.
/// Diagnostics only; not part of the rayon API.
#[doc(hidden)]
pub fn pool_worker_count() -> usize {
    pool::worker_count()
}

/// Hard cap on pool worker threads for the whole process; stable worker
/// indices are always `< pool_max_workers()`. Not part of the rayon API.
pub fn pool_max_workers() -> usize {
    pool::MAX_WORKERS
}

/// Telemetry for one pool participant lane. Times are monotonic-clock
/// nanoseconds accumulated while [`set_pool_telemetry`] was on.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker spawn index; `usize::MAX` labels the aggregate caller lane.
    pub worker: usize,
    /// Nanoseconds spent draining region chunks.
    pub busy_ns: u64,
    /// Nanoseconds spent parked on the registry condvar.
    pub park_ns: u64,
    /// Regions this lane participated in.
    pub regions: u64,
    /// Chunks this lane executed.
    pub chunks: u64,
}

/// A snapshot of the persistent pool's telemetry counters.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Per-worker lanes, in spawn order (only workers spawned so far).
    pub workers: Vec<WorkerStats>,
    /// Aggregate lane for submitting callers (main/test threads, plus
    /// workers submitting nested regions).
    pub caller: WorkerStats,
    /// Parallel regions executed (including sequential fast paths).
    pub regions: u64,
    /// Chunks scheduled across all regions.
    pub chunks_total: u64,
    /// Chunks executed by a helper other than the submitting caller.
    pub chunks_stolen: u64,
}

/// Enable or disable pool telemetry, returning the previous state. Off
/// (the default) the per-region cost is one relaxed atomic load; on it
/// adds two monotonic clock reads per participant per region. Not part
/// of the rayon API.
pub fn set_pool_telemetry(on: bool) -> bool {
    pool::set_telemetry(on)
}

/// Is pool telemetry currently enabled?
pub fn pool_telemetry_enabled() -> bool {
    pool::telemetry_enabled()
}

/// Snapshot the pool telemetry counters. Not part of the rayon API.
pub fn pool_stats() -> PoolStats {
    pool::stats_snapshot()
}

/// Zero the pool telemetry counters (e.g. at the start of a capture).
pub fn reset_pool_stats() {
    pool::reset_stats()
}

/// Builder for a scoped thread pool (only `num_threads` is honored).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail in
/// the shim, the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num = Some(n);
        self
    }

    /// Build the pool (infallible here).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num.unwrap_or_else(current_num_threads).max(1);
        note_logical(n);
        Ok(ThreadPool { n })
    }
}

/// A logical view onto the shared persistent pool: scopes the thread count
/// seen by nested parallel calls. OS worker threads are owned by the global
/// registry and shared by every `ThreadPool`.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Run `f` with `current_num_threads()` equal to this pool's size.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        note_logical(self.n);
        let prev = CURRENT_THREADS.with(|c| c.replace(Some(self.n)));
        let out = f();
        CURRENT_THREADS.with(|c| c.set(prev));
        out
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

/// Context passed to [`broadcast`] closures.
pub struct BroadcastContext {
    index: usize,
    num_threads: usize,
}

impl BroadcastContext {
    /// Index of this worker in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of workers participating in the broadcast.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run `f` once per logical worker of the current pool, returning the
/// results in worker order. Invocations are distributed over the persistent
/// pool; a single OS thread may execute more than one logical index when
/// the pool is narrower than the logical width.
pub fn broadcast<R, F>(f: F) -> Vec<R>
where
    R: Send,
    F: Fn(BroadcastContext) -> R + Sync,
{
    let n = current_num_threads().max(1);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let ptr = OutPtr(out.as_mut_ptr());
        let ptr_ref = &ptr;
        let f_ref = &f;
        pool::run_region(n, 1, &move |r: Range<usize>| {
            for idx in r {
                let prev = THREAD_INDEX.with(|c| c.replace(Some(idx)));
                let v = f_ref(BroadcastContext {
                    index: idx,
                    num_threads: n,
                });
                THREAD_INDEX.with(|c| c.set(prev));
                // SAFETY: run_region yields each index exactly once; the
                // slot being overwritten is the initial `None`.
                unsafe { ptr_ref.0.add(idx).write(Some(v)) };
            }
        });
    }
    out.into_iter().map(|r| r.expect("worker result")).collect()
}

/// Split `0..len` into chunks of at least `grain` items and run `body` on
/// each chunk from up to `current_num_threads()` workers.
fn run_chunks<F>(len: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    pool::run_region(len, grain, &body);
}

/// An indexed source of parallel items.
///
/// # Safety
/// `get(i)` may be called at most once per index per drive so that sources
/// handing out `&mut` items never alias.
pub unsafe trait IndexedSource: Sync {
    /// The item produced for one index.
    type Item: Send;
    /// Total number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce the item at `i`.
    ///
    /// # Safety
    /// Each index must be requested at most once across all workers.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator: an indexed source plus a minimum chunk length.
pub struct Par<S> {
    src: S,
    grain: usize,
}

/// Range source (`(a..b).into_par_iter()`).
pub struct RangeSrc {
    start: usize,
    len: usize,
}

unsafe impl IndexedSource for RangeSrc {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Shared-slice source (`slice.par_iter()`).
pub struct SliceSrc<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync + Send> IndexedSource for SliceSrc<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Mutable-slice source (`slice.par_iter_mut()`).
pub struct SliceMutSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SliceMutSrc<'_, T> {}

unsafe impl<'a, T: Send> IndexedSource for SliceMutSrc<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        &mut *self.ptr.add(i)
    }
}

/// Shared chunks source (`slice.par_chunks(n)`).
pub struct ChunksSrc<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

unsafe impl<'a, T: Sync + Send> IndexedSource for ChunksSrc<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        &self.slice[lo..(lo + self.chunk).min(self.slice.len())]
    }
}

/// Mutable chunks source (`slice.par_chunks_mut(n)`).
pub struct ChunksMutSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for ChunksMutSrc<'_, T> {}

unsafe impl<'a, T: Send> IndexedSource for ChunksMutSrc<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// `map` adapter.
pub struct MapSrc<S, F> {
    src: S,
    f: F,
}

unsafe impl<S, F, U> IndexedSource for MapSrc<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
{
    type Item = U;
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> U {
        (self.f)(self.src.get(i))
    }
}

/// `enumerate` adapter.
pub struct EnumerateSrc<S> {
    src: S,
}

unsafe impl<S: IndexedSource> IndexedSource for EnumerateSrc<S> {
    type Item = (usize, S::Item);
    fn len(&self) -> usize {
        self.src.len()
    }
    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        (i, self.src.get(i))
    }
}

/// `zip` adapter (length is the minimum of the two sides).
pub struct ZipSrc<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: IndexedSource, B: IndexedSource> IndexedSource for ZipSrc<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.get(i), self.b.get(i))
    }
}

/// Write-only pointer used by order-preserving `collect`.
struct OutPtr<T>(*mut T);
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<S: IndexedSource> Par<S> {
    /// Require chunks of at least `n` items.
    pub fn with_min_len(mut self, n: usize) -> Self {
        self.grain = n.max(1);
        self
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> Par<EnumerateSrc<S>> {
        Par {
            src: EnumerateSrc { src: self.src },
            grain: self.grain,
        }
    }

    /// Transform every item.
    pub fn map<U, F>(self, f: F) -> Par<MapSrc<S, F>>
    where
        F: Fn(S::Item) -> U + Sync,
        U: Send,
    {
        Par {
            src: MapSrc { src: self.src, f },
            grain: self.grain,
        }
    }

    /// Iterate two sources in lockstep.
    pub fn zip<S2: IndexedSource>(self, other: Par<S2>) -> Par<ZipSrc<S, S2>> {
        Par {
            src: ZipSrc {
                a: self.src,
                b: other.src,
            },
            grain: self.grain.max(other.grain),
        }
    }

    /// Keep items matching `pred`; only `collect` is supported downstream.
    pub fn filter<P>(self, pred: P) -> ParFilter<S, P>
    where
        P: Fn(&S::Item) -> bool + Sync,
    {
        ParFilter {
            src: self.src,
            grain: self.grain,
            pred,
        }
    }

    /// Per-chunk accumulators in the style of rayon's `fold`; combine with
    /// [`ParFold::collect`].
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParFold<S, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, S::Item) -> T + Sync,
    {
        ParFold {
            src: self.src,
            grain: self.grain,
            identity,
            fold_op,
        }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let src = &self.src;
        run_chunks(src.len(), self.grain, |r| {
            for i in r {
                // SAFETY: run_chunks yields each index exactly once.
                f(unsafe { src.get(i) });
            }
        });
    }

    /// Collect all items in index order.
    pub fn collect<C: From<Vec<S::Item>>>(self) -> C {
        let len = self.src.len();
        let src = &self.src;
        let mut out: Vec<S::Item> = Vec::with_capacity(len);
        let ptr = OutPtr(out.as_mut_ptr());
        let ptr_ref = &ptr;
        run_chunks(len, self.grain, |r| {
            for i in r {
                // SAFETY: each index written exactly once into capacity we
                // reserved; set_len only after all workers joined.
                unsafe { ptr_ref.0.add(i).write(src.get(i)) };
            }
        });
        // SAFETY: every slot in 0..len was initialized above.
        unsafe { out.set_len(len) };
        C::from(out)
    }

    /// Sum all items.
    pub fn sum<T>(self) -> T
    where
        T: Send + std::iter::Sum<S::Item> + std::iter::Sum<T>,
    {
        let parts = self
            .fold_chunks(|items| items.sum::<T>())
            .into_iter()
            .map(|(_, v)| v);
        parts.sum()
    }

    /// Run `f` once per chunk over that chunk's items, returning
    /// `(chunk_start, result)` pairs sorted by chunk start.
    fn fold_chunks<T, F>(self, f: F) -> Vec<(usize, T)>
    where
        T: Send,
        F: Fn(&mut dyn Iterator<Item = S::Item>) -> T + Sync,
    {
        let src = &self.src;
        let parts: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::new());
        run_chunks(src.len(), self.grain, |r| {
            let start = r.start;
            // SAFETY: run_chunks yields each index exactly once.
            let mut it = r.map(|i| unsafe { src.get(i) });
            let v = f(&mut it);
            parts.lock().unwrap().push((start, v));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(s, _)| s);
        parts
    }
}

/// A filtered parallel iterator (terminal `collect` only).
pub struct ParFilter<S, P> {
    src: S,
    grain: usize,
    pred: P,
}

impl<S, P> ParFilter<S, P>
where
    S: IndexedSource,
    P: Fn(&S::Item) -> bool + Sync,
{
    /// Collect the matching items in index order.
    pub fn collect<C: From<Vec<S::Item>>>(self) -> C {
        let pred = &self.pred;
        let parts = Par {
            src: self.src,
            grain: self.grain,
        }
        .fold_chunks(|items| items.filter(|x| pred(x)).collect::<Vec<_>>());
        let mut out = Vec::new();
        for (_, mut part) in parts {
            out.append(&mut part);
        }
        C::from(out)
    }
}

/// A folded parallel iterator (terminal `collect` only).
pub struct ParFold<S, ID, F> {
    src: S,
    grain: usize,
    identity: ID,
    fold_op: F,
}

impl<S, T, ID, F> ParFold<S, ID, F>
where
    S: IndexedSource,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, S::Item) -> T + Sync,
{
    /// Collect the per-chunk accumulators in chunk order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        let identity = &self.identity;
        let fold_op = &self.fold_op;
        let parts = Par {
            src: self.src,
            grain: self.grain,
        }
        .fold_chunks(|items| {
            let mut acc = identity();
            for x in items {
                acc = fold_op(acc, x);
            }
            acc
        });
        C::from(parts.into_iter().map(|(_, v)| v).collect::<Vec<T>>())
    }
}

/// Marker trait so `Par` chains read like rayon's (`ParallelIterator`).
pub trait ParallelIterator {}
impl<S> ParallelIterator for Par<S> {}

/// `into_par_iter()` for index ranges.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = Par<RangeSrc>;
    fn into_par_iter(self) -> Par<RangeSrc> {
        Par {
            src: RangeSrc {
                start: self.start,
                len: self.end.saturating_sub(self.start),
            },
            grain: 1,
        }
    }
}

/// Parallel views over shared slices.
pub trait ParallelSliceExt<T: Sync + Send> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> Par<SliceSrc<'_, T>>;
    /// Parallel iterator over `&[T]` chunks of length `n` (last may be
    /// short).
    fn par_chunks(&self, n: usize) -> Par<ChunksSrc<'_, T>>;
}

impl<T: Sync + Send> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> Par<SliceSrc<'_, T>> {
        Par {
            src: SliceSrc { slice: self },
            grain: 1,
        }
    }
    fn par_chunks(&self, n: usize) -> Par<ChunksSrc<'_, T>> {
        assert!(n > 0, "chunk length must be positive");
        Par {
            src: ChunksSrc {
                slice: self,
                chunk: n,
            },
            grain: 1,
        }
    }
}

/// Below this length a parallel sort is all overhead; fall back to the
/// standard library's sequential unstable sort.
const PAR_SORT_MIN: usize = 4096;

/// Smallest per-chunk slice worth sorting independently.
const PAR_SORT_MIN_CHUNK: usize = 1024;

/// Merge two sorted index runs over `data`, preferring the left run on ties
/// (keeps the merge deterministic for any comparator).
fn merge_runs<T, F>(a: &[u32], b: &[u32], data: &[T], cmp: &F) -> Vec<u32>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&data[b[j] as usize], &data[a[i] as usize]) == Ordering::Less {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn par_sort_impl<T, F>(data: &mut [T], cmp: F)
where
    T: Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    let threads = current_num_threads().max(1);
    let nchunks = threads.min(n / PAR_SORT_MIN_CHUNK).max(1);
    if threads <= 1 || n < PAR_SORT_MIN || nchunks < 2 || n > u32::MAX as usize {
        data.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let bounds: Vec<usize> = (0..=nchunks).map(|i| i * n / nchunks).collect();

    // Phase 1: sort each chunk independently, in parallel.
    {
        let mut parts: Vec<&mut [T]> = Vec::with_capacity(nchunks);
        let mut rest: &mut [T] = data;
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            parts.push(head);
            rest = tail;
        }
        let cmp_ref = &cmp;
        parts
            .par_iter_mut()
            .with_min_len(1)
            .for_each(|p| p.sort_unstable_by(|a, b| cmp_ref(a, b)));
    }

    // Phase 2: merge the sorted runs as index permutations, pairwise per
    // round, each round's merges running in parallel.
    let perm = {
        let snapshot: &[T] = data;
        let mut runs: Vec<Vec<u32>> = bounds
            .windows(2)
            .map(|w| (w[0] as u32..w[1] as u32).collect())
            .collect();
        while runs.len() > 1 {
            let mut iter = runs.into_iter();
            let mut pairs: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
            let mut leftover = None;
            loop {
                match (iter.next(), iter.next()) {
                    (Some(a), Some(b)) => pairs.push((a, b)),
                    (Some(a), None) => {
                        leftover = Some(a);
                        break;
                    }
                    (None, _) => break,
                }
            }
            let cmp_ref = &cmp;
            let mut merged: Vec<Vec<u32>> = pairs
                .par_iter()
                .with_min_len(1)
                .map(|(a, b)| merge_runs(a, b, snapshot, cmp_ref))
                .collect();
            if let Some(l) = leftover {
                merged.push(l);
            }
            runs = merged;
        }
        runs.pop().expect("at least one run")
    };

    // Phase 3: apply the gather permutation in place. Invert it into a
    // scatter map, then follow swap cycles (O(n), no element clones).
    let mut dest = vec![0u32; n];
    for (k, &src) in perm.iter().enumerate() {
        dest[src as usize] = k as u32;
    }
    drop(perm);
    for i in 0..n {
        while dest[i] as usize != i {
            let j = dest[i] as usize;
            data.swap(i, j);
            dest.swap(i, j);
        }
    }
}

/// Parallel views over mutable slices.
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, T>>;
    /// Parallel iterator over `&mut [T]` chunks of length `n`.
    fn par_chunks_mut(&mut self, n: usize) -> Par<ChunksMutSrc<'_, T>>;
    /// Sort in place, unstably, in parallel (chunk sorts + run merges).
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> Ordering + Sync;
    /// Sort in place by a key, unstably, in parallel.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceMutSrc<'_, T>> {
        Par {
            src: SliceMutSrc {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: PhantomData,
            },
            grain: 1,
        }
    }
    fn par_chunks_mut(&mut self, n: usize) -> Par<ChunksMutSrc<'_, T>> {
        assert!(n > 0, "chunk length must be positive");
        Par {
            src: ChunksMutSrc {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: n,
                _marker: PhantomData,
            },
            grain: 1,
        }
    }
    fn par_sort_unstable_by<F>(&mut self, cmp: F)
    where
        T: Sync,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_sort_impl(self, cmp);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        T: Sync,
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_sort_impl(self, |a, b| key(a).cmp(&key(b)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn filter_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000)
            .into_par_iter()
            .filter(|&i| i % 3 == 0)
            .collect();
        let expect: Vec<usize> = (0..10_000).filter(|&i| i % 3 == 0).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn mut_iteration_covers_every_slot() {
        let mut v = vec![0u32; 5_000];
        v.par_iter_mut()
            .with_min_len(64)
            .enumerate()
            .for_each(|(i, x)| *x = i as u32 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 + 1));
    }

    #[test]
    fn chunked_zip_matches_sequential_triad() {
        let n = 4096;
        let b: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let c: Vec<f32> = (0..n).map(|i| (i * 3) as f32).collect();
        let mut a = vec![0.0f32; n];
        a.par_chunks_mut(128)
            .zip(b.par_chunks(128))
            .zip(c.par_chunks(128))
            .for_each(|((ac, bc), cc)| {
                for i in 0..ac.len() {
                    ac[i] = bc[i] * 2.0 + cc[i];
                }
            });
        assert!(a
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i as f32) * 2.0 + (i * 3) as f32));
    }

    #[test]
    fn fold_collect_accumulates_everything() {
        let parts: Vec<u64> = (0..100_000)
            .into_par_iter()
            .with_min_len(1024)
            .fold(|| 0u64, |acc, i| acc + i as u64)
            .collect();
        let total: u64 = parts.into_iter().sum();
        assert_eq!(total, 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn sum_matches_sequential() {
        let s: f64 = (0..1000).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, 499_500.0);
    }

    #[test]
    fn install_scopes_thread_count() {
        let n = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn broadcast_runs_once_per_worker() {
        let ids = ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| broadcast(|ctx| ctx.index()));
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sort_by_orders() {
        let mut v: Vec<u32> = (0..1000).rev().collect();
        v.par_sort_unstable_by(|a, b| a.cmp(b));
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_sort_matches_sequential_on_large_input() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut v: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| v.par_sort_unstable_by(|a, b| a.cmp(b)));
        assert_eq!(v, expect);

        let mut w: Vec<u32> = (0..20_000u32).rev().collect();
        pool.install(|| w.par_sort_unstable_by_key(|&x| x % 7));
        assert!(w.windows(2).all(|p| p[0] % 7 <= p[1] % 7));
    }

    #[test]
    fn thread_index_is_set_inside_regions() {
        assert_eq!(current_thread_index(), None);
        let seen = Mutex::new(Vec::new());
        (0..100).into_par_iter().for_each(|_| {
            seen.lock().unwrap().push(current_thread_index());
        });
        assert!(seen.lock().unwrap().iter().all(|i| i.is_some()));
    }

    #[test]
    fn worker_threads_are_reused_across_regions() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let region_ids = || -> HashSet<std::thread::ThreadId> {
            pool.install(|| {
                // The barrier forces both chunks onto distinct threads, so
                // every region genuinely involves one pool worker.
                let barrier = std::sync::Barrier::new(2);
                let ids = Mutex::new(HashSet::new());
                (0..2).into_par_iter().with_min_len(1).for_each(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                    barrier.wait();
                });
                ids.into_inner().unwrap()
            })
        };
        let main_id = std::thread::current().id();
        // Prime the pool so the worker serving the first region is already
        // spawned, then count OS threads across the remaining regions.
        let _ = region_ids();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let spawned_before = pool_worker_count();
        for _ in 0..10 {
            let ids = region_ids();
            assert_eq!(ids.len(), 2, "two distinct threads participate");
            assert!(ids.contains(&main_id), "caller participates");
            // Give the helper a moment to park again so the next region
            // finds it idle instead of spawning a replacement.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // A spawn-per-region implementation would burn a fresh OS thread
        // for every one of the 10 regions; the persistent pool parks and
        // re-seats workers instead (which parked worker serves a given
        // region is unspecified). Allow a little slack for a region that
        // raced a still-unparking helper.
        let grown = pool_worker_count() - spawned_before;
        assert!(
            grown <= 2,
            "pool reused parked workers across regions, spawned {grown} new"
        );
    }

    #[test]
    fn panics_propagate_and_pool_stays_usable() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..10_000).into_par_iter().with_min_len(16).for_each(|i| {
                    if i == 7_777 {
                        panic!("injected fault");
                    }
                });
            })
        }));
        assert!(r.is_err(), "panic crosses the parallel region boundary");
        let v: Vec<usize> = pool.install(|| (0..1_000).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(v[999], 1_000, "pool still functional after a panic");
    }

    #[test]
    fn max_num_threads_tracks_widest_pool() {
        let _ = ThreadPoolBuilder::new().num_threads(6).build().unwrap();
        assert!(max_num_threads() >= 6);
    }

    #[test]
    fn stable_thread_id_is_stable_across_nested_regions() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // Distinct OS threads must observe distinct stable ids, and a
        // thread's id must not change when it enters a nested region or a
        // sequential fast path (where current_thread_index() resets to 0,
        // the bug that used to collide ScratchArena slots).
        let seen = Mutex::new(Vec::new());
        pool.install(|| {
            (0..16).into_par_iter().with_min_len(1).for_each(|_| {
                let outer = stable_thread_id();
                // Nested small region takes the sequential fast path.
                (0..4usize).into_par_iter().with_min_len(64).for_each(|_| {
                    assert_eq!(
                        stable_thread_id(),
                        outer,
                        "stable id changed inside a nested region"
                    );
                });
                seen.lock()
                    .unwrap()
                    .push((std::thread::current().id(), outer));
            });
        });
        let seen = seen.lock().unwrap();
        let os_threads: HashSet<_> = seen.iter().map(|(os, _)| *os).collect();
        let stable_ids: HashSet<_> = seen.iter().map(|(_, id)| *id).collect();
        assert_eq!(
            os_threads.len(),
            stable_ids.len(),
            "stable ids must be 1:1 with OS threads"
        );
        // And the mapping itself is consistent: one stable id per OS thread.
        for (os, id) in seen.iter() {
            assert!(seen.iter().filter(|(o, _)| o == os).all(|(_, i)| i == id));
        }
    }

    #[test]
    fn pool_telemetry_accounts_regions_and_chunks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // Warm the pool up first so worker spawning isn't measured.
        pool.install(|| (0..1000).into_par_iter().with_min_len(1).for_each(|_| {}));
        reset_pool_stats();
        let prev = set_pool_telemetry(true);
        pool.install(|| {
            (0..100_000).into_par_iter().with_min_len(16).for_each(|i| {
                std::hint::black_box(i);
            });
        });
        set_pool_telemetry(prev);
        let stats = pool_stats();
        assert!(stats.regions >= 1, "region counted");
        assert!(stats.chunks_total >= 1, "chunks counted");
        let executed: u64 =
            stats.workers.iter().map(|w| w.chunks).sum::<u64>() + stats.caller.chunks;
        assert_eq!(
            executed, stats.chunks_total,
            "every scheduled chunk executed exactly once"
        );
        assert!(
            stats.chunks_stolen <= stats.chunks_total,
            "stolen is a subset of total"
        );
        assert!(
            stats.caller.busy_ns > 0,
            "caller lane accumulated busy time"
        );
    }

    #[test]
    fn chunk_claims_balance_across_workers() {
        use std::collections::HashMap;
        use std::sync::Barrier;
        use std::thread;
        use std::time::Duration;

        // N chunks on T participants: dynamic claims off the shared
        // counter must spread the work, with no participant hogging more
        // than ~2x its fair share. The barrier holds every participant at
        // its first chunk until all four have joined, so the caller can't
        // race ahead and drain the region before the helpers arrive.
        const T: usize = 4;
        let n = T * pool::CHUNKS_PER_WORKER; // chunk size 1 => n chunks
        let pool = ThreadPoolBuilder::new().num_threads(T).build().unwrap();
        let barrier = Barrier::new(T);
        let first = Mutex::new(HashSet::new());
        let counts = Mutex::new(HashMap::new());
        pool.install(|| {
            (0..n).into_par_iter().with_min_len(1).for_each(|_| {
                let id = thread::current().id();
                if first.lock().unwrap().insert(id) {
                    barrier.wait();
                }
                thread::sleep(Duration::from_millis(2));
                *counts.lock().unwrap().entry(id).or_insert(0usize) += 1;
            });
        });
        let counts = counts.into_inner().unwrap();
        assert_eq!(counts.len(), T, "all participants executed chunks");
        let total: usize = counts.values().sum();
        assert_eq!(total, n, "every chunk executed exactly once");
        let max = counts.values().copied().max().unwrap();
        assert!(
            max <= 2 * (n / T),
            "no participant may exceed ~2x its fair share: max {max} of {n} chunks on {T} workers"
        );
    }

    #[test]
    fn pool_telemetry_consistent_with_wall_time() {
        use std::time::{Duration, Instant};

        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        // Warm the pool so worker spawning isn't inside the window.
        pool.install(|| (0..64).into_par_iter().with_min_len(1).for_each(|_| {}));
        let outer_t0 = Instant::now();
        reset_pool_stats();
        let prev = set_pool_telemetry(true);
        let chunks = 64u64;
        let per_chunk = Duration::from_millis(1);
        pool.install(|| {
            (0..chunks as usize)
                .into_par_iter()
                .with_min_len(1)
                .for_each(|_| std::thread::sleep(per_chunk));
        });
        set_pool_telemetry(prev);
        let stats = pool_stats();
        let outer = outer_t0.elapsed();

        // A worker is one OS thread, so neither its busy nor its park time
        // can exceed the wall-clock telemetry window (2x slack for clock
        // granularity). This holds even if another test's region overlaps
        // the window — real time is the bound either way.
        let cap = outer.as_nanos() as u64 * 2;
        for w in &stats.workers {
            assert!(
                w.busy_ns <= cap,
                "worker {} busy {}ns exceeds window {}ns",
                w.worker,
                w.busy_ns,
                outer.as_nanos()
            );
            assert!(
                w.park_ns <= cap,
                "worker {} park {}ns exceeds window",
                w.worker,
                w.park_ns
            );
        }
        // And the lanes together must account for at least the sleep work
        // the region actually performed.
        let busy_total: u64 =
            stats.caller.busy_ns + stats.workers.iter().map(|w| w.busy_ns).sum::<u64>();
        let floor = chunks * per_chunk.as_nanos() as u64 / 2;
        assert!(
            busy_total >= floor,
            "lanes under-report busy time: {busy_total}ns < {floor}ns"
        );
    }

    #[test]
    fn pool_telemetry_off_accumulates_nothing() {
        let prev = set_pool_telemetry(false);
        reset_pool_stats();
        (0..10_000).into_par_iter().with_min_len(8).for_each(|_| {});
        let stats = pool_stats();
        assert_eq!(stats.regions, 0);
        assert_eq!(stats.chunks_total, 0);
        assert_eq!(stats.caller.busy_ns, 0);
        set_pool_telemetry(prev);
    }
}
