//! Offline drop-in subset of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it uses as path crates under `crates/shims/`. This
//! harness keeps criterion's API shape (`benchmark_group`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) and measures with
//! plain wall-clock sampling: a warm-up phase estimates the per-iteration
//! cost, then `sample_size` samples of batched iterations produce
//! min/median/max and a throughput line. No statistical regression
//! analysis, no HTML reports — stdout only.
//!
//! Command-line positional arguments (as passed by `cargo bench -- <f>`)
//! are treated as substring filters on the full `group/function` id;
//! criterion's own flags (`--bench`, `--save-baseline`, …) are ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` style id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip flags (and the value of `--flag value` pairs); keep bare
        // words as substring filters, mirroring criterion's CLI.
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if a == "--bench" || a == "--test" {
                continue;
            }
            if let Some(flag) = a.strip_prefix("--") {
                // Flags that consume a value.
                if matches!(
                    flag,
                    "save-baseline"
                        | "baseline"
                        | "measurement-time"
                        | "warm-up-time"
                        | "sample-size"
                ) {
                    args.next();
                }
                continue;
            }
            filters.push(a);
        }
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            filters,
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the measurement phase of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time budget for the warm-up phase of one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self, None, &id.id, None, f);
        self
    }

    /// Print a closing line (kept for API symmetry).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for `elem/s` reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let name = self.name.clone();
        let tp = self.throughput;
        run_one(self.criterion, Some(&name), &id.id, tp, f);
        self
    }

    /// Run one benchmark with an explicit input (criterion API parity; the
    /// input is simply passed through to the closure).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called in batches across `sample_size` samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        self.iters_per_sample = ((per_sample / est.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / self.iters_per_sample as f64;
            self.samples.push(dt);
        }
    }
}

fn run_one(
    c: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if !c.filters.is_empty() && !c.filters.iter().any(|flt| full.contains(flt.as_str())) {
        return;
    }
    let mut b = Bencher {
        iters_per_sample: 1,
        sample_size: c.sample_size,
        warm_up: c.warm_up_time,
        measurement: c.measurement_time,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<50} (no measurement)");
        return;
    }
    let mut s = b.samples.clone();
    s.sort_by(|a, x| a.partial_cmp(x).unwrap());
    let min = s[0];
    let max = s[s.len() - 1];
    let median = s[s.len() / 2];
    print!(
        "{full:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: {}", fmt_rate(n as f64 / median, "elem/s"));
        }
        Some(Throughput::Bytes(n)) => {
            print!("  thrpt: {}", fmt_rate(n as f64 / median, "B/s"));
        }
        None => {}
    }
    println!();
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} \u{b5}s", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.4} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.4} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.4} {unit}")
    }
}

/// Define a benchmark group function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            filters: Vec::new(),
        };
        let mut group = c.benchmark_group("t");
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
