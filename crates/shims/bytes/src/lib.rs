//! Offline drop-in subset of [bytes](https://crates.io/crates/bytes).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it uses as path crates under `crates/shims/`. `Bytes`
//! and `BytesMut` are plain owned buffers (no refcounted slabs); the
//! `Buf`/`BufMut` little-endian accessors match upstream byte-for-byte,
//! which is all the binary tensor format needs.

use std::ops::{Deref, DerefMut};

/// Read-side cursor API (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side cursor API (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Immutable byte buffer with a read cursor (subset of `bytes::Bytes`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length (including already-consumed bytes).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The unconsumed bytes as a contiguous slice (upstream `Buf::chunk`).
    /// This is the zero-copy handoff point: a parser that wants a `&[u8]`
    /// view of the rest of the buffer borrows it here instead of copying.
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Consume `cnt` bytes without copying them (upstream `Buf::advance`).
    ///
    /// # Panics
    /// If `cnt` exceeds [`Buf::remaining`], matching upstream.
    pub fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.remaining(),
            "advance out of bounds: need {} have {}",
            cnt,
            self.remaining()
        );
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice out of bounds: need {} have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_slice(b"abc");
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = Bytes::from(Vec::from(w));
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut s = [0u8; 3];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn chunk_and_advance_track_the_cursor() {
        let mut r = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(r.chunk(), &[1, 2, 3, 4, 5]);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.chunk(), &[2, 3, 4, 5]);
        r.advance(2);
        assert_eq!(r.chunk(), &[4, 5]);
        assert_eq!(r.remaining(), 2);
        r.advance(2);
        assert_eq!(r.chunk(), &[] as &[u8]);
    }

    #[test]
    #[should_panic(expected = "advance out of bounds")]
    fn advance_past_end_panics_like_upstream() {
        let mut r = Bytes::from(vec![1u8]);
        r.advance(2);
    }

    #[test]
    fn bytesmut_derefs_to_slice() {
        let mut w = BytesMut::new();
        w.put_slice(&[1, 2, 3]);
        let as_slice: &[u8] = &w;
        assert_eq!(as_slice, &[1, 2, 3]);
    }
}
