//! The `tenbench` experiment harness: regenerates every table and figure of
//! *"A Parallel Sparse Tensor Benchmark Suite on CPUs and GPUs"*.
//!
//! ```text
//! harness <artifact> [options]
//!
//! artifacts:
//!   table1 table2 table3 table4     the paper's tables
//!   fig1 fig2                       format layout walkthroughs
//!   fig3                            roofline models (host ERT + Table 4)
//!   fig4 fig5                       CPU kernel GFLOPS (full / half threads)
//!   fig6 fig7                       GPU kernel GFLOPS (simulated P100 / V100)
//!   observations                    the paper's five observations, recomputed
//!   all                             everything above
//!
//! options:
//!   --datasets r1,s4,...   dataset filter (default: all 30)
//!   --quick                small representative dataset subset
//!   --scale F              multiply default nonzero counts by F
//!   --reps N               measurement repetitions (default 5)
//!   --csv PATH             also append figure data as long-format CSV
//! ```

use std::collections::BTreeMap;

use tenbench_bench::data::{dataset_tensor, quick_ids};
use tenbench_bench::format::{fint, fnum, AsciiPlot, TextTable};
use tenbench_bench::suite::{
    run_cpu_suite, run_gpu_suite, KernelResult, MachineModel, DEFAULT_BLOCK_BITS, DEFAULT_RANK,
    DEFAULT_REPS,
};
use tenbench_core::analysis::table1_rows;
use tenbench_core::coo::CooTensor;
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_core::kernels::ttm::ttm;
use tenbench_core::kernels::Kernel;
use tenbench_core::par::with_threads;
use tenbench_core::prelude::*;
use tenbench_gen::registry::{find, REAL_DATASETS, SYNTHETIC_DATASETS};
use tenbench_gen::{Dataset, TensorStats};
use tenbench_gpusim::device::DeviceSpec;
use tenbench_roofline::ert::{self, ErtConfig};
use tenbench_roofline::model::{kernel_oi_marks, Roofline};
use tenbench_roofline::platform::PLATFORMS;

#[derive(Debug, Clone)]
struct Options {
    artifact: String,
    datasets: Vec<&'static Dataset>,
    scale: f64,
    reps: usize,
    /// Optional CSV sink for the figure data (long format).
    csv: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = String::from("all");
    let mut ids: Option<Vec<String>> = None;
    let mut scale = 1.0f64;
    let mut reps = DEFAULT_REPS;
    let mut csv: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--datasets" => {
                i += 1;
                ids = Some(
                    args.get(i)
                        .expect("--datasets needs a value")
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                );
            }
            "--quick" => ids = Some(quick_ids().iter().map(|s| s.to_string()).collect()),
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("bad --scale");
            }
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .expect("--reps needs a value")
                    .parse()
                    .expect("bad --reps");
            }
            "--csv" => {
                i += 1;
                csv = Some(std::path::PathBuf::from(
                    args.get(i).expect("--csv needs a path"),
                ));
            }
            a if !a.starts_with("--") => artifact = a.to_string(),
            a => panic!("unknown option {a}"),
        }
        i += 1;
    }
    let datasets: Vec<&'static Dataset> = match ids {
        Some(list) => list
            .iter()
            .map(|id| find(id).unwrap_or_else(|| panic!("unknown dataset {id}")))
            .collect(),
        None => REAL_DATASETS.iter().chain(SYNTHETIC_DATASETS).collect(),
    };
    Options {
        artifact,
        datasets,
        scale,
        reps,
        csv,
    }
}

/// Append figure rows to the CSV sink in long format (one line per
/// tensor x kernel x format), creating the header on first write.
fn append_csv(opt: &Options, figure: &str, rows: &[(String, Vec<KernelResult>)]) {
    let Some(path) = &opt.csv else { return };
    use std::io::Write;
    let fresh = !path.exists();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open --csv path");
    if fresh {
        writeln!(
            f,
            "figure,tensor,kernel,format,gflops,time_s,oi,bound_gflops,efficiency"
        )
        .unwrap();
    }
    for (id, results) in rows {
        for r in results {
            writeln!(
                f,
                "{figure},{id},{},{},{:.6},{:.ninep$e},{:.6},{:.6},{:.6}",
                r.kernel.name(),
                r.format,
                r.gflops,
                r.time_s,
                r.oi,
                r.bound_gflops,
                r.efficiency(),
                ninep = 6
            )
            .unwrap();
        }
    }
}

fn main() {
    let opt = parse_args();
    match opt.artifact.as_str() {
        "table1" => table1(),
        "table2" => table_datasets("Table 2: real-world tensors (surrogates)", REAL_DATASETS),
        "table3" => table_datasets("Table 3: synthetic tensors", SYNTHETIC_DATASETS),
        "table4" => table4(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => cpu_figure(&opt, false),
        "fig5" => cpu_figure(&opt, true),
        "fig6" => gpu_figure(
            &opt,
            DeviceSpec::p100(),
            "Figure 6: DGX-1P (simulated P100)",
        ),
        "fig7" => gpu_figure(
            &opt,
            DeviceSpec::v100(),
            "Figure 7: DGX-1V (simulated V100)",
        ),
        "stats" => stats_table(&opt),
        "reorder" => reorder_demo(&opt),
        "observations" => observations(&opt),
        "all" => {
            table1();
            table_datasets("Table 2: real-world tensors (surrogates)", REAL_DATASETS);
            table_datasets("Table 3: synthetic tensors", SYNTHETIC_DATASETS);
            table4();
            fig1();
            fig2();
            fig3();
            cpu_figure(&opt, false);
            cpu_figure(&opt, true);
            gpu_figure(
                &opt,
                DeviceSpec::p100(),
                "Figure 6: DGX-1P (simulated P100)",
            );
            gpu_figure(
                &opt,
                DeviceSpec::v100(),
                "Figure 7: DGX-1V (simulated V100)",
            );
            observations(&opt);
        }
        other => {
            eprintln!("unknown artifact {other:?}; see the module docs");
            std::process::exit(2);
        }
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===\n");
}

// ---------------------------------------------------------------- tables

fn table1() {
    section("Table 1: kernel analysis (third-order cubical tensors)");
    let mut t = TextTable::new(["Kernel", "Work (#Flops)", "COO bytes", "HiCOO bytes", "OI"]);
    for row in table1_rows() {
        t.row([row.kernel, row.work, row.coo_bytes, row.hicoo_bytes, row.oi]);
    }
    println!("{}", t.render());
    println!("Exact per-tensor OI values (with the MF term) feed the bounds in figures 4-7.");
}

fn table_datasets(title: &str, datasets: &[Dataset]) {
    section(title);
    let mut t = TextTable::new([
        "No.",
        "Tensor",
        "Gen.",
        "Order",
        "Paper dims",
        "Paper #nnz",
        "Density",
        "Bench dims",
        "Bench #nnz",
    ]);
    for d in datasets {
        let dims: Vec<String> = d.paper_dims.iter().map(|&x| short(x)).collect();
        let bdims: Vec<String> = d.bench_dims().iter().map(|&x| short(x as u64)).collect();
        t.row([
            d.id.to_string(),
            d.name.to_string(),
            d.gen_label().to_string(),
            d.order().to_string(),
            dims.join("x"),
            short(d.paper_nnz),
            format!("{:.1e}", d.paper_density()),
            bdims.join("x"),
            short(d.bench_nnz() as u64),
        ]);
    }
    println!("{}", t.render());
}

fn short(v: u64) -> String {
    if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.0}K", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

fn table4() {
    section("Table 4: platform parameters");
    let p = PLATFORMS;
    let mut t = TextTable::new(["Parameter", p[0].name, p[1].name, p[2].name, p[3].name]);
    let row4 = |t: &mut TextTable, label: &str, f: &dyn Fn(usize) -> String| {
        t.row([label.to_string(), f(0), f(1), f(2), f(3)]);
    };
    row4(&mut t, "Processor", &|i| p[i].processor.to_string());
    row4(&mut t, "Microarch", &|i| p[i].microarch.to_string());
    row4(&mut t, "Frequency (GHz)", &|i| fnum(p[i].frequency_ghz));
    row4(&mut t, "#Cores", &|i| fint(p[i].cores as u64));
    row4(&mut t, "Peak SP (TFLOPS)", &|i| fnum(p[i].peak_sp_tflops));
    row4(&mut t, "LLC (MiB)", &|i| fnum(p[i].llc_mib));
    row4(&mut t, "Mem size (GiB)", &|i| fnum(p[i].mem_gib));
    row4(&mut t, "Mem type", &|i| p[i].mem_type.to_string());
    row4(&mut t, "Mem BW (GB/s)", &|i| fnum(p[i].mem_bw_gbs));
    row4(&mut t, "ERT-DRAM (GB/s, modeled)", &|i| {
        fnum(p[i].ert_dram_gbs)
    });
    row4(&mut t, "Compiler", &|i| p[i].compiler.to_string());
    println!("{}", t.render());
}

// ---------------------------------------------------------------- figures 1-2

/// The worked example tensor used by the paper's Figures 1 and 2.
fn example_tensor() -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![4, 4, 4]),
        vec![
            (vec![0, 0, 0], 1.0),
            (vec![0, 0, 1], 2.0),
            (vec![0, 1, 0], 3.0),
            (vec![1, 0, 0], 4.0),
            (vec![1, 1, 2], 5.0),
            (vec![2, 2, 0], 6.0),
            (vec![2, 2, 2], 7.0),
            (vec![3, 3, 3], 8.0),
        ],
    )
    .unwrap()
}

fn fig1() {
    section("Figure 1: COO and sCOO layouts (worked example)");
    let x = example_tensor();
    println!("COO for a {} tensor with {} nonzeros:", x.shape(), x.nnz());
    for m in 0..x.order() {
        println!("  inds{}: {:?}", m + 1, x.mode_inds(m));
    }
    println!("  vals : {:?}", x.vals());
    println!("  storage: {} bytes (4(N+1)M)", x.storage_bytes());

    let u = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f32);
    let y = ttm(&x, &u, 2).unwrap();
    println!("\nsCOO after Ttm in mode 3 (mode k becomes dense, R = 2):");
    for m in 0..y.order() {
        if m != y.dense_mode() {
            println!("  inds{}: {:?}", m + 1, y.inds()[m]);
        }
    }
    for f in 0..y.num_fibers() {
        println!("  fiber {f}: {:?}", y.fiber_vals(f));
    }
    println!("  storage: {} bytes", y.storage_bytes());
}

fn fig2() {
    section("Figure 2: HiCOO, gHiCOO, and sHiCOO layouts (2x2x2 blocks)");
    let x = example_tensor();
    let h = HicooTensor::from_coo(&x, 1).unwrap();
    println!("HiCOO (block bits 1 => B = 2): {} blocks", h.num_blocks());
    println!("  bptr : {:?}", h.bptr());
    for m in 0..h.order() {
        println!("  binds{}: {:?}", m + 1, h.binds()[m]);
    }
    for m in 0..h.order() {
        println!("  einds{}: {:?}", m + 1, h.einds()[m]);
    }
    println!("  vals : {:?}", h.vals());
    println!(
        "  storage: {} bytes vs {} bytes COO",
        h.storage_bytes(),
        x.storage_bytes()
    );

    let g = GHicooTensor::from_coo_for_mode(&x, 1, 2).unwrap();
    println!("\ngHiCOO compressing modes i,j only (mode k stays COO):");
    println!(
        "  blocks: {}  storage: {} bytes",
        g.num_blocks(),
        g.storage_bytes()
    );
    println!("  mode-k full indices: {:?}", g.find(2));

    let u = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f32);
    let sh = tenbench_core::kernels::ttm::ttm_hicoo(&h, &u, 2).unwrap();
    println!("\nsHiCOO after HiCOO-Ttm in mode 3 (dense mode k, R = 2):");
    println!(
        "  blocks: {}  fibers: {}  storage: {} bytes",
        sh.num_blocks(),
        sh.num_fibers(),
        sh.storage_bytes()
    );
}

// ---------------------------------------------------------------- figure 3

fn fig3() {
    section("Figure 3: Roofline models");
    println!("Host (measured with the built-in ERT):");
    let report = ert::run(&ErtConfig::default());
    println!(
        "  threads {}  peak {} GFLOPS  cache {} GB/s  DRAM {} GB/s",
        report.threads,
        fnum(report.peak_gflops),
        fnum(report.cache_gbs),
        fnum(report.dram_gbs)
    );
    let mut sweep = TextTable::new(["Working set", "GB/s"]);
    for p in &report.points {
        sweep.row([format!("{} KiB", p.bytes / 1024), fnum(p.gbs)]);
    }
    println!("{}", sweep.render());

    let host = Roofline::from_ert("host", &report);
    let mut models: Vec<Roofline> = vec![host];
    models.extend(PLATFORMS.iter().map(Roofline::from_platform));
    for r in &models {
        println!(
            "{} roofline (ERT-DRAM ceiling '*', upper ceiling '.'):",
            r.name
        );
        let mut plot = AsciiPlot::new(64, 14, (0.02, 64.0), (1.0, 20_000.0));
        plot.series(&r.series(r.ceilings.len() - 1, 0.02, 64.0, 64), '*');
        if r.ceilings.len() > 1 {
            plot.series(&r.series(0, 0.02, 64.0, 64), '.');
        }
        for (_, oi) in kernel_oi_marks() {
            plot.vmark(oi, '|');
        }
        println!("{}", plot.render());
        let mut marks = TextTable::new(["Kernel", "OI", "Roofline perf (GFLOPS)"]);
        for (name, oi) in kernel_oi_marks() {
            marks.row([name.to_string(), fnum(oi), fnum(r.attainable_dram(oi))]);
        }
        println!("{}", marks.render());
    }
    println!("(vertical bars mark the kernel OIs; every kernel sits left of the ridge point, i.e. memory bound)");
}

// ---------------------------------------------------------------- figures 4-7

fn kernel_table(title: &str, rows: &[(String, Vec<KernelResult>)]) {
    section(title);
    let mut t = TextTable::new([
        "Tensor",
        "Fmt",
        "Tew",
        "Ts",
        "Ttv",
        "Ttm",
        "Mttkrp",
        "Tew eff",
        "Ts eff",
        "Ttv eff",
        "Ttm eff",
        "Mttkrp eff",
    ]);
    for (id, results) in rows {
        for fmt in ["COO", "HiCOO"] {
            let pick = |k: Kernel| -> Option<&KernelResult> {
                results.iter().find(|r| r.kernel == k && r.format == fmt)
            };
            let cells: Vec<String> = std::iter::once(id.clone())
                .chain(std::iter::once(fmt.to_string()))
                .chain(
                    Kernel::ALL
                        .iter()
                        .map(|&k| pick(k).map_or("-".into(), |r| fnum(r.gflops))),
                )
                .chain(Kernel::ALL.iter().map(|&k| {
                    pick(k).map_or("-".into(), |r| format!("{:.0}%", 100.0 * r.efficiency()))
                }))
                .collect();
            t.row(cells);
        }
    }
    println!("{}", t.render());
    println!(
        "GFLOPS per kernel (Table 1 work / time); eff = achieved / per-tensor Roofline bound."
    );
}

fn cpu_figure(opt: &Options, half_threads: bool) {
    let full = std::thread::available_parallelism().map_or(4, |n| n.get());
    let threads = if half_threads {
        (full / 2).max(1)
    } else {
        full
    };
    let label = if half_threads {
        format!("Figure 5: host CPU at {threads} threads (Wingtip substitute)")
    } else {
        format!("Figure 4: host CPU at {threads} threads (Bluesky substitute)")
    };
    let rows = with_threads(threads, || {
        let report = ert::run(&ErtConfig::quick());
        let machine = MachineModel {
            name: format!("host-{threads}t"),
            ert_dram_gbs: report.dram_gbs,
            peak_gflops: report.peak_gflops,
        };
        eprintln!(
            "[{}] ERT: {} GB/s DRAM, {} GFLOPS peak",
            machine.name,
            fnum(machine.ert_dram_gbs),
            fnum(machine.peak_gflops)
        );
        let mut rows = Vec::new();
        for d in &opt.datasets {
            let x = dataset_tensor(d, opt.scale);
            eprintln!("[{}] {} ({} nnz)...", machine.name, d.id, x.nnz());
            let res = run_cpu_suite(&x, &machine, DEFAULT_RANK, DEFAULT_BLOCK_BITS, opt.reps);
            rows.push((format!("{} {}", d.id, d.name), res));
        }
        rows
    });
    append_csv(opt, if half_threads { "fig5" } else { "fig4" }, &rows);
    kernel_table(&label, &rows);
}

fn gpu_figure(opt: &Options, dev: DeviceSpec, title: &str) {
    let mut rows = Vec::new();
    for d in &opt.datasets {
        let x = dataset_tensor(d, opt.scale);
        eprintln!("[{}] {} ({} nnz)...", dev.name, d.id, x.nnz());
        let res = run_gpu_suite(&x, &dev, DEFAULT_RANK, DEFAULT_BLOCK_BITS);
        rows.push((format!("{} {}", d.id, d.name), res));
    }
    append_csv(opt, if dev.name == "P100" { "fig6" } else { "fig7" }, &rows);
    kernel_table(title, &rows);
}

// ---------------------------------------------------------------- observations

fn observations(opt: &Options) {
    section("Observations 1-5 (recomputed on this run)");
    let full = std::thread::available_parallelism().map_or(4, |n| n.get());
    let report = ert::run(&ErtConfig::quick());
    let machine = MachineModel {
        name: format!("host-{full}t"),
        ert_dram_gbs: report.dram_gbs,
        peak_gflops: report.peak_gflops,
    };
    let mut cpu: Vec<(String, Vec<KernelResult>, TensorStats)> = Vec::new();
    let mut p100: Vec<(String, Vec<KernelResult>)> = Vec::new();
    let mut v100: Vec<(String, Vec<KernelResult>)> = Vec::new();
    for d in &opt.datasets {
        let x = dataset_tensor(d, opt.scale);
        eprintln!("[obs] {} ({} nnz)...", d.id, x.nnz());
        let stats = TensorStats::compute(&x, DEFAULT_BLOCK_BITS);
        cpu.push((
            d.id.to_string(),
            run_cpu_suite(&x, &machine, DEFAULT_RANK, DEFAULT_BLOCK_BITS, opt.reps),
            stats,
        ));
        p100.push((
            d.id.to_string(),
            run_gpu_suite(&x, &DeviceSpec::p100(), DEFAULT_RANK, DEFAULT_BLOCK_BITS),
        ));
        v100.push((
            d.id.to_string(),
            run_gpu_suite(&x, &DeviceSpec::v100(), DEFAULT_RANK, DEFAULT_BLOCK_BITS),
        ));
    }

    // Observation 1: diversity of achieved performance.
    let mut lo = f64::MAX;
    let mut hi: f64 = 0.0;
    let mut per_kernel: BTreeMap<(&str, &str), Vec<f64>> = BTreeMap::new();
    for (_, res, _) in &cpu {
        for r in res {
            lo = lo.min(r.gflops);
            hi = hi.max(r.gflops);
            per_kernel
                .entry((r.kernel.name(), r.format))
                .or_default()
                .push(r.gflops);
        }
    }
    println!(
        "Obs 1 (diversity): CPU GFLOPS range {} .. {} ({}x spread)",
        fnum(lo),
        fnum(hi),
        fnum(hi / lo.max(1e-12))
    );
    let mut t = TextTable::new(["Kernel", "COO avg GFLOPS", "HiCOO avg GFLOPS"]);
    for k in Kernel::ALL {
        let avg = |fmt: &str| -> String {
            per_kernel
                .get(&(k.name(), fmt))
                .map(|v| fnum(v.iter().sum::<f64>() / v.len() as f64))
                .unwrap_or_else(|| "-".into())
        };
        t.row([k.name().to_string(), avg("COO"), avg("HiCOO")]);
    }
    println!("{}", t.render());

    // Observation 2: cases above the Roofline bound are cache-resident.
    let mut above: Vec<(String, &'static str, f64, u64)> = Vec::new();
    for (id, res, stats) in &cpu {
        for r in res {
            if r.efficiency() > 1.0 {
                above.push((
                    id.clone(),
                    r.kernel.name(),
                    r.efficiency(),
                    stats.nnz as u64,
                ));
            }
        }
    }
    println!(
        "Obs 2 (roofline): {} CPU cases exceed the DRAM roofline; median nnz of those = {}",
        above.len(),
        fint(median_u64(above.iter().map(|a| a.3).collect()))
    );
    for (id, k, eff, nnz) in above.iter().take(8) {
        println!(
            "  {id} {k}: {:.0}% at {} nnz (fits cache)",
            eff * 100.0,
            fint(*nnz)
        );
    }

    // Observation 3: efficiency of non-streaming kernels.
    let eff_avg = |rows: &[(String, Vec<KernelResult>)], k: Kernel, fmt: &str| -> f64 {
        let v: Vec<f64> = rows
            .iter()
            .flat_map(|(_, rs)| rs.iter())
            .filter(|r| r.kernel == k && r.format == fmt)
            .map(|r| r.efficiency())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let cpu_rows: Vec<(String, Vec<KernelResult>)> =
        cpu.iter().map(|(i, r, _)| (i.clone(), r.clone())).collect();
    let mut t3 = TextTable::new(["Machine", "Ttv eff", "Ttm eff", "Mttkrp eff"]);
    for (name, rows) in [
        ("host CPU", &cpu_rows),
        ("P100 (sim)", &p100),
        ("V100 (sim)", &v100),
    ] {
        t3.row([
            name.to_string(),
            format!("{:.0}%", 100.0 * eff_avg(rows, Kernel::Ttv, "COO")),
            format!("{:.0}%", 100.0 * eff_avg(rows, Kernel::Ttm, "COO")),
            format!("{:.0}%", 100.0 * eff_avg(rows, Kernel::Mttkrp, "COO")),
        ]);
    }
    println!(
        "Obs 3 (efficiency of non-streaming kernels, COO):\n{}",
        t3.render()
    );

    // Observation 4: HiCOO vs COO, with Mttkrp-on-GPU as the outlier.
    let ratio = |rows: &[(String, Vec<KernelResult>)], k: Kernel| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (_, rs) in rows {
            let coo = rs.iter().find(|r| r.kernel == k && r.format == "COO");
            let hic = rs.iter().find(|r| r.kernel == k && r.format == "HiCOO");
            if let (Some(c), Some(h)) = (coo, hic) {
                num += h.gflops;
                den += c.gflops;
            }
        }
        num / den.max(1e-12)
    };
    let mut t4 = TextTable::new([
        "Kernel",
        "CPU HiCOO/COO",
        "P100 HiCOO/COO",
        "V100 HiCOO/COO",
    ]);
    for k in Kernel::ALL {
        t4.row([
            k.name().to_string(),
            fnum(ratio(&cpu_rows, k)),
            fnum(ratio(&p100, k)),
            fnum(ratio(&v100, k)),
        ]);
    }
    println!(
        "Obs 4 (HiCOO vs COO; Mttkrp on GPU is the outlier):\n{}",
        t4.render()
    );

    // Observation 5: real vs synthetic coverage.
    let spread = |pred: &dyn Fn(&str) -> bool| -> (f64, f64) {
        let v: Vec<f64> = cpu_rows
            .iter()
            .filter(|(id, _)| pred(id))
            .flat_map(|(_, rs)| rs.iter().map(|r| r.gflops))
            .collect();
        if v.is_empty() {
            return (0.0, 0.0);
        }
        let lo = v.iter().cloned().fold(f64::MAX, f64::min);
        let hi = v.iter().cloned().fold(0.0, f64::max);
        (lo, hi)
    };
    let (rl, rh) = spread(&|id: &str| id.starts_with('r'));
    let (sl, sh) = spread(&|id: &str| id.starts_with('s'));
    println!(
        "Obs 5 (datasets): real surrogates span {}..{} GFLOPS; synthetic span {}..{} GFLOPS — both are needed for coverage.",
        fnum(rl),
        fnum(rh),
        fnum(sl),
        fnum(sh)
    );
}

// ---------------------------------------------------------------- extras

/// Structural statistics of every selected dataset (not a paper artifact,
/// but the quantities behind the per-tensor Roofline bounds).
fn stats_table(opt: &Options) {
    section("Dataset structural statistics (bench scale)");
    let mut t = TextTable::new([
        "No.",
        "Dims",
        "#Nnz",
        "Density",
        "Mean MF",
        "Max fiber",
        "HiCOO nb",
        "nnz/blk",
        "HiCOO/COO bytes",
    ]);
    for d in &opt.datasets {
        let x = dataset_tensor(d, opt.scale);
        let s = TensorStats::compute(&x, DEFAULT_BLOCK_BITS);
        let dims: Vec<String> = s.dims.iter().map(|&v| short(v as u64)).collect();
        t.row([
            d.id.to_string(),
            dims.join("x"),
            fint(s.nnz as u64),
            format!("{:.1e}", s.density),
            fint(s.mean_fibers() as u64),
            fint(*s.max_fiber_len_per_mode.iter().max().unwrap_or(&0) as u64),
            fint(s.hicoo_blocks as u64),
            fnum(s.mean_nnz_per_block),
            format!("{:.2}", s.compression_ratio()),
        ]);
    }
    println!("{}", t.render());
}

/// Mode-reordering demonstration through the GPU simulator: the frequency
/// permutation packs hot operand rows together and raises the L2 hit rate
/// of the irregular Ttv gathers (paper §3.2.1's reordering remark).
fn reorder_demo(opt: &Options) {
    use tenbench_core::reorder::{
        apply_mode_permutation, frequency_permutation, permute_vector, random_permutation,
    };
    section("Reordering ablation (simulated P100, Ttv mode 0)");
    let mut t = TextTable::new([
        "Tensor",
        "Labeling",
        "L2 hit",
        "Modeled time (us)",
        "GFLOPS",
    ]);
    let dev = DeviceSpec::p100();
    for d in &opt.datasets {
        let x = dataset_tensor(d, opt.scale);
        let mode = 0usize;
        let v = tenbench_core::dense::DenseVector::from_fn(x.shape().dim(mode) as usize, |i| {
            (i % 97) as f32 * 0.01
        });
        // Zipf surrogates come out frequency-ordered already, so the
        // realistic test is: shuffle the labels (as real-world ids are),
        // then let the heuristic recover the packing.
        for which in ["natural", "shuffled", "shuffled+frequency"] {
            let dim = x.shape().dim(mode);
            let mut xr = x.clone();
            let mut vr = v.clone();
            if which != "natural" {
                let shuffle = random_permutation(dim, 42);
                apply_mode_permutation(&mut xr, mode, &shuffle).unwrap();
                vr = permute_vector(&vr, &shuffle).unwrap();
            }
            if which == "shuffled+frequency" {
                let freq = frequency_permutation(&xr, mode).unwrap();
                apply_mode_permutation(&mut xr, mode, &freq).unwrap();
                vr = permute_vector(&vr, &freq).unwrap();
            }
            let (_, s) = tenbench_gpusim::kernels::ttv_coo_gpu(&dev, &xr, &vr, mode).unwrap();
            t.row([
                d.id.to_string(),
                which.to_string(),
                format!("{:.0}%", s.l2_hit_rate() * 100.0),
                fnum(s.time_s * 1e6),
                fnum(s.gflops()),
            ]);
        }
    }
    println!("{}", t.render());
}

fn median_u64(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}
