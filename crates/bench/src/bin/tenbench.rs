//! The `tenbench` command-line tool.
//!
//! ```text
//! tenbench convert  <in.{tns,tnb}> <out.{tns,tnb}>
//! tenbench stats    <file> [--block-bits B]
//! tenbench generate <kron|pl> --dims 1024,1024,64 --nnz 100000 [--seed S] --out <file>
//! tenbench kernel   <tew|ts|ttv|ttm|mttkrp> <file> [--mode N] [--rank R]
//!                   [--format coo|hicoo] [--block-bits B] [--reps K]
//!                   [--strategy seq|atomic|privatized|row_locked|scheduled]
//!                   [--max-seconds S] [--fallback on|off]
//! tenbench kernel   --all [file] [--dataset s4] [--nnz N] [--mode N] ...
//! tenbench ablate-mttkrp [--dataset s4] [--nnz N] [--rank R]
//!                   [--block-bits B] [--reps K] [--threads 1,2,4,8]
//!                   [--out results.json] [--max-seconds S]
//! tenbench ablate-simd [--dataset s4] [--nnz N] [--ranks 4,8,16]
//!                   [--block-bits B] [--reps K] [--out BENCH_simd.json]
//!                   [--min-speedup X]
//! tenbench convert-bench [--dataset s4] [--nnz N] [--block-bits B]
//!                   [--threads 1,2,4,8] [--reps K] [--out BENCH_convert.json]
//!                   [--min-speedup X]
//! tenbench scale-bench [--dataset s4] [--nnz N] [--rank R] [--block-bits B]
//!                   [--threads 1,2,4,8] [--reps K] [--out BENCH_scaling.json]
//!                   [--floors ci/scaling-floor.txt]
//! tenbench verify   <file> [--block-bits B] [--rank R] [--max-seconds S]
//! tenbench report   <trace.json | flight-dump.json>
//! tenbench obs-overhead [--dataset s4] [--nnz N] [--rank R] [--block-bits B]
//!                   [--reps K] [--threads 1,2,4] [--rounds 3]
//!                   [--out BENCH_obs_overhead.json] [--max-overhead-pct X]
//! tenbench serve    [--dataset s4] [--nnz N] [--rank R] [--workers W]
//!                   [--queue-bound Q] [--max-batch B] [--cache-mb M]
//!                   [--block-bits B] [--max-seconds S] [--flight-dump-dir DIR]
//! tenbench stress   [--dataset s4] [--nnz N] [--tensors T] [--duration 5s]
//!                   [--concurrency C] [--alpha A] [--rank R] [--workers W]
//!                   [--queue-bound Q] [--max-batch B] [--cache-mb M]
//!                   [--deadline-ms D] [--max-p99-ms X] [--min-hit-ratio H]
//!                   [--out BENCH_serve.json] [--flight-dump-dir DIR]
//!                   [--net] [--connections C] [--shards S]
//! tenbench chaos    [--seed S] [--duration 3s] [--jobs J] [--dim D]
//!                   [--nnz N] [--tensors T] [--alpha A] [--clients C]
//!                   [--rank R] [--max-iters I] [--fault-rate P]
//!                   [--max-step-seconds S] [--job-workers W]
//!                   [--max-recoveries K] [--out BENCH_chaos.json]
//!                   [--floors ci/chaos-floor.txt] [--flight-dump-dir DIR]
//! ```
//!
//! The measuring subcommands (`kernel`, `ablate-mttkrp`, `convert-bench`)
//! additionally accept `--trace <path>` (write a chrome-trace JSON of the
//! run, viewable in `about:tracing` / Perfetto) and `--profile` (append
//! the hierarchical span profile, counters, and pool telemetry to the
//! report). `report` validates and summarizes a written trace;
//! `obs-overhead` measures the traced-vs-untraced cost of the capture.
//!
//! Every subcommand accepts `--backend auto|scalar|simd`: it installs a
//! process-wide kernel-backend override (outranking the `TENBENCH_BACKEND`
//! environment variable), so `kernel --backend scalar` times the reference
//! loops and `ablate-simd` can be forced either way for CI equivalence
//! runs. `serve` and `stress` additionally accept `--layout hicoo|vb-hicoo`
//! to select the cached tensor layout the service prepares and executes.
//!
//! `--max-seconds` or `--fallback` switch `kernel` to supervised mode:
//! the run executes on a watchdogged worker thread under panic isolation,
//! the output is validated (NaN/Inf scan; Mttkrp additionally checksums
//! against the sequential reference), and on failure the strategy falls
//! back through the chain (e.g. `scheduled -> atomic -> privatized ->
//! seq`). `verify` runs the full integrity battery on one tensor file.
//!
//! `serve` starts the in-process batched kernel service (supervised
//! executor, format/schedule cache, admission-controlled queue) and runs a
//! demonstration request mix; `stress` drives it closed-loop with
//! Zipf-skewed tensor popularity, probes overload shedding, and writes
//! `BENCH_serve.json` with p50/p90/p99 latency, throughput, and cache hit
//! ratio. Its gates (`--max-p99-ms`, `--min-hit-ratio`, and a mandatory
//! typed queue-full rejection under overload) fail the process for CI.
//! With `--net` the same load instead travels over loopback TCP: a
//! `NetServer` with `--shards` fingerprint-partitioned shards serves
//! `--connections` concurrent client connections speaking the `TNF1`
//! frame protocol, latency is measured client-side around the socket
//! round trip, and two extra gates apply — zero requests lost without a
//! typed answer, and zero server-side protocol errors.
//!
//! `chaos` runs the fault-injection harness: kernel traffic plus
//! long-running decomposition jobs on one live service stack, with
//! injected step panics, watchdog-tripping hangs, checkpoint corruption,
//! and queue-full bursts. It writes `BENCH_chaos.json` and fails the
//! process unless every admitted job reaches a terminal state, at least
//! `min_recoveries` faults were absorbed by checkpoint resume, every
//! fault kind fired, and every completed CP-ALS job bitwise-matches an
//! uninterrupted reference run.
//!
//! `--flight-dump-dir DIR` (on `serve`, `stress`, and `chaos`) routes
//! flight-recorder fault dumps to DIR: the always-on per-thread ring of
//! recent causal events is snapshotted into
//! `DIR/flight-<seq>-<reason>.json` the moment the supervisor records a
//! panic, watchdog timeout, or invalid output, or checkpoint corruption is
//! detected on the resume path. `tenbench report <dump>` validates and
//! pretty-prints a dump; under `chaos`, the run additionally fails unless
//! every observed fault kind produced at least one dump.

use std::path::PathBuf;
use std::process::ExitCode;

use tenbench_bench::cli;

fn main() -> ExitCode {
    match run() {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tenbench: {e}");
            ExitCode::from(2)
        }
    }
}

/// Build the service tuning knobs shared by `serve` and `stress` from the
/// parsed options.
fn serve_config(
    get_usize: &dyn Fn(&str, usize) -> Result<usize, String>,
    block_bits: u8,
    layout: Option<&str>,
) -> Result<tenbench_serve::ServeConfig, String> {
    let defaults = tenbench_serve::ServeConfig::default();
    let layout = match layout {
        Some(s) => tenbench_serve::PrepLayout::parse(s)
            .ok_or_else(|| format!("bad --layout {s:?} (expected hicoo or vb-hicoo)"))?,
        None => defaults.layout,
    };
    Ok(tenbench_serve::ServeConfig {
        workers: get_usize("workers", defaults.workers)?,
        queue_bound: get_usize("queue-bound", defaults.queue_bound)?,
        max_batch: get_usize("max-batch", defaults.max_batch)?,
        cache_bytes: (get_usize("cache-mb", (defaults.cache_bytes >> 20) as usize)? as u64) << 20,
        block_bits,
        layout,
    })
}

fn run() -> Result<String, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pos: Vec<String> = Vec::new();
    let mut opts: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    // Flags that do not consume a value.
    const SWITCHES: [&str; 3] = ["profile", "all", "net"];
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if SWITCHES.contains(&key) {
                opts.insert(key.to_string(), "on".to_string());
                i += 1;
            } else {
                let val = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                opts.insert(key.to_string(), val.clone());
                i += 2;
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        opts.get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key}")))
            .unwrap_or(Ok(default))
    };
    let block_bits = get_usize("block-bits", 7)? as u8;
    // `--backend auto|scalar|simd` installs a process-wide override that
    // outranks TENBENCH_BACKEND; every kernel entry point below sees it.
    if let Some(b) = opts.get("backend") {
        let choice = tenbench_core::simd::BackendChoice::parse(b)
            .ok_or_else(|| format!("bad --backend {b:?} (expected auto, scalar, or simd)"))?;
        tenbench_core::simd::force_backend(Some(choice));
    }
    let max_seconds: Option<f64> = opts
        .get("max-seconds")
        .map(|v| v.parse().map_err(|_| "bad --max-seconds".to_string()))
        .transpose()?;
    let fallback: Option<bool> = opts
        .get("fallback")
        .map(|v| match v.as_str() {
            "on" | "true" => Ok(true),
            "off" | "false" => Ok(false),
            _ => Err("bad --fallback (expected on or off)".to_string()),
        })
        .transpose()?;
    let supervisor_cfg = || {
        let mut cfg = tenbench_bench::supervisor::SupervisorConfig::default();
        if let Some(s) = max_seconds {
            cfg.max_seconds = s;
        }
        if let Some(f) = fallback {
            cfg.fallback = f;
        }
        cfg
    };
    let obs_opts = cli::ObsOptions {
        trace: opts.get("trace").map(PathBuf::from),
        profile: opts.contains_key("profile"),
    };
    // `--flight-dump-dir DIR` routes flight-recorder fault dumps there;
    // the directory is created eagerly so a bad path fails now, not at
    // the first fault. The chaos gates additionally key on its contents.
    let flight_dump_dir = opts.get("flight-dump-dir").map(PathBuf::from);
    if let Some(dir) = &flight_dump_dir {
        tenbench_obs::flight::set_dump_dir(Some(dir.clone()))
            .map_err(|e| format!("--flight-dump-dir {}: {e}", dir.display()))?;
    }

    match pos.first().map(String::as_str) {
        Some("convert") => {
            let [_, input, output] = &pos[..] else {
                return Err("usage: tenbench convert <in> <out>".into());
            };
            Ok(cli::convert(&PathBuf::from(input), &PathBuf::from(output))?)
        }
        Some("stats") => {
            let [_, input] = &pos[..] else {
                return Err("usage: tenbench stats <file>".into());
            };
            Ok(cli::stats(&PathBuf::from(input), block_bits)?)
        }
        Some("generate") => {
            let [_, family] = &pos[..] else {
                return Err("usage: tenbench generate <kron|pl> --dims ... --nnz ... --out ...".into());
            };
            let dims: Vec<u32> = opts
                .get("dims")
                .ok_or("--dims is required")?
                .split(',')
                .map(|d| d.parse().map_err(|_| "bad --dims"))
                .collect::<Result<_, _>>()?;
            let nnz = get_usize("nnz", 0)?;
            if nnz == 0 {
                return Err("--nnz is required".into());
            }
            let seed = get_usize("seed", 42)? as u64;
            let out = opts.get("out").ok_or("--out is required")?;
            Ok(cli::generate(family, &dims, nnz, seed, &PathBuf::from(out))?)
        }
        Some("kernel") => {
            let mode = get_usize("mode", 0)?;
            let rank = get_usize("rank", 16)?;
            let format = opts.get("format").map(String::as_str).unwrap_or("coo");
            let reps = get_usize("reps", 5)?;
            let strategy = opts.get("strategy").map(String::as_str).unwrap_or("atomic");
            if opts.contains_key("all") {
                let input = match &pos[..] {
                    [_] => None,
                    [_, input] => Some(PathBuf::from(input)),
                    _ => return Err("usage: tenbench kernel --all [file] [options]".into()),
                };
                let nnz = get_usize("nnz", 50_000)?;
                return Ok(cli::with_obs(&obs_opts, || {
                    cli::run_kernel_all(
                        input.as_deref(),
                        opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                        nnz,
                        mode,
                        rank,
                        block_bits,
                        reps,
                        strategy,
                    )
                })?);
            }
            let [_, kernel, input] = &pos[..] else {
                return Err("usage: tenbench kernel <name> <file> [options]".into());
            };
            Ok(cli::with_obs(&obs_opts, || {
                if max_seconds.is_some() || fallback.is_some() {
                    cli::run_kernel_supervised(
                        kernel,
                        &PathBuf::from(input),
                        mode,
                        rank,
                        format,
                        block_bits,
                        reps,
                        strategy,
                        &supervisor_cfg(),
                    )
                } else {
                    cli::run_kernel(
                        kernel,
                        &PathBuf::from(input),
                        mode,
                        rank,
                        format,
                        block_bits,
                        reps,
                        strategy,
                    )
                }
            })?)
        }
        Some("ablate-mttkrp") => {
            let nnz = get_usize("nnz", 1_000_000)?;
            let rank = get_usize("rank", 16)?;
            let reps = get_usize("reps", 3)?;
            // Without --threads, a single sweep at the ambient pool size.
            let threads: Vec<usize> = match opts.get("threads") {
                Some(v) => v
                    .split(',')
                    .map(|t| t.parse().map_err(|_| "bad --threads"))
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            Ok(cli::with_obs(&obs_opts, || {
                cli::ablate_mttkrp(
                    opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                    nnz,
                    rank,
                    block_bits,
                    reps,
                    &threads,
                    opts.get("out").map(PathBuf::from).as_deref(),
                    &supervisor_cfg(),
                )
            })?)
        }
        Some("ablate-simd") => {
            let nnz = get_usize("nnz", 200_000)?;
            let reps = get_usize("reps", 3)?;
            let ranks: Vec<usize> = opts
                .get("ranks")
                .map(String::as_str)
                .unwrap_or("4,8,16")
                .split(',')
                .map(|t| t.parse().map_err(|_| "bad --ranks"))
                .collect::<Result<_, _>>()?;
            let min_speedup: Option<f64> = opts
                .get("min-speedup")
                .map(|v| v.parse().map_err(|_| "bad --min-speedup".to_string()))
                .transpose()?;
            Ok(cli::with_obs(&obs_opts, || {
                cli::ablate_simd(
                    opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                    nnz,
                    &ranks,
                    block_bits,
                    reps,
                    opts.get("out").map(PathBuf::from).as_deref(),
                    min_speedup,
                )
            })?)
        }
        Some("convert-bench") => {
            let threads: Vec<usize> = opts
                .get("threads")
                .map(String::as_str)
                .unwrap_or("1,2,4,8")
                .split(',')
                .map(|t| t.parse().map_err(|_| "bad --threads"))
                .collect::<Result<_, _>>()?;
            let min_speedup: Option<f64> = opts
                .get("min-speedup")
                .map(|v| v.parse().map_err(|_| "bad --min-speedup".to_string()))
                .transpose()?;
            let nnz = get_usize("nnz", 1_000_000)?;
            let reps = get_usize("reps", 3)?;
            Ok(cli::with_obs(&obs_opts, || {
                cli::convert_bench(
                    opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                    nnz,
                    block_bits,
                    &threads,
                    reps,
                    opts.get("out").map(PathBuf::from).as_deref(),
                    min_speedup,
                )
            })?)
        }
        Some("scale-bench") => {
            let threads: Vec<usize> = opts
                .get("threads")
                .map(String::as_str)
                .unwrap_or("1,2,4,8")
                .split(',')
                .map(|t| t.parse().map_err(|_| "bad --threads"))
                .collect::<Result<_, _>>()?;
            let sb = cli::ScaleBenchOpts {
                dataset: opts
                    .get("dataset")
                    .cloned()
                    .unwrap_or_else(|| "s4".to_string()),
                nnz: get_usize("nnz", 1_000_000)?,
                rank: get_usize("rank", 16)?,
                block_bits,
                threads,
                reps: get_usize("reps", 3)?,
                out_json: opts.get("out").map(PathBuf::from),
                floors: opts.get("floors").map(PathBuf::from),
            };
            Ok(cli::with_obs(&obs_opts, || cli::scale_bench(&sb))?)
        }
        Some("verify") => {
            let [_, input] = &pos[..] else {
                return Err("usage: tenbench verify <file> [--block-bits B] [--rank R]".into());
            };
            let report = cli::verify(
                &PathBuf::from(input),
                block_bits,
                get_usize("rank", 8)?,
                &supervisor_cfg(),
            )?;
            if report.contains("VERIFY FAIL") {
                eprint!("{report}");
                return Err("verification failed".into());
            }
            Ok(report)
        }
        Some("report") => {
            let [_, input] = &pos[..] else {
                return Err("usage: tenbench report <trace.json>".into());
            };
            Ok(cli::report(&PathBuf::from(input))?)
        }
        Some("obs-overhead") => {
            let threads: Vec<usize> = opts
                .get("threads")
                .map(String::as_str)
                .unwrap_or("1,2,4")
                .split(',')
                .map(|t| t.parse().map_err(|_| "bad --threads"))
                .collect::<Result<_, _>>()?;
            let max_overhead_pct: Option<f64> = opts
                .get("max-overhead-pct")
                .map(|v| v.parse().map_err(|_| "bad --max-overhead-pct".to_string()))
                .transpose()?;
            Ok(cli::obs_overhead(
                opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                get_usize("nnz", 200_000)?,
                get_usize("rank", 16)?,
                block_bits,
                get_usize("reps", 3)?,
                &threads,
                get_usize("rounds", 3)?,
                opts.get("out").map(PathBuf::from).as_deref(),
                max_overhead_pct,
            )?)
        }
        Some("serve") => {
            let serve_cfg = serve_config(&get_usize, block_bits, opts.get("layout").map(String::as_str))?;
            Ok(cli::serve_demo(
                opts.get("dataset").map(String::as_str).unwrap_or("s4"),
                get_usize("nnz", 20_000)?,
                get_usize("rank", 16)?,
                serve_cfg,
                &supervisor_cfg(),
            )?)
        }
        Some("stress") => {
            let serve_cfg = serve_config(&get_usize, block_bits, opts.get("layout").map(String::as_str))?;
            let max_p99_ms: Option<f64> = opts
                .get("max-p99-ms")
                .map(|v| v.parse().map_err(|_| "bad --max-p99-ms".to_string()))
                .transpose()?;
            let min_hit_ratio: f64 = opts
                .get("min-hit-ratio")
                .map(|v| v.parse().map_err(|_| "bad --min-hit-ratio".to_string()))
                .transpose()?
                .unwrap_or(0.5);
            let alpha: f64 = opts
                .get("alpha")
                .map(|v| v.parse().map_err(|_| "bad --alpha".to_string()))
                .transpose()?
                .unwrap_or(1.1);
            let stress_opts = cli::StressOpts {
                dataset: opts
                    .get("dataset")
                    .cloned()
                    .unwrap_or_else(|| "s4".to_string()),
                nnz: get_usize("nnz", 20_000)?,
                tensors: get_usize("tensors", 12)?,
                duration: cli::parse_duration(
                    opts.get("duration").map(String::as_str).unwrap_or("5s"),
                )?,
                concurrency: get_usize("concurrency", 4)?,
                alpha,
                rank: get_usize("rank", 16)?,
                deadline_ms: get_usize("deadline-ms", 0)? as u64,
                max_p99_ms,
                min_hit_ratio,
                out_json: opts.get("out").map(PathBuf::from),
            };
            if opts.contains_key("net") {
                let net_opts = cli::NetStressOpts {
                    connections: get_usize("connections", 200)?,
                    shards: get_usize("shards", 2)?,
                };
                Ok(cli::stress_net(
                    &stress_opts,
                    &net_opts,
                    serve_cfg,
                    &supervisor_cfg(),
                )?)
            } else {
                Ok(cli::stress(&stress_opts, serve_cfg, &supervisor_cfg())?)
            }
        }
        Some("chaos") => {
            let defaults = tenbench_bench::chaos::ChaosConfig::default();
            let get_f64 = |key: &str, default: f64| -> Result<f64, String> {
                opts.get(key)
                    .map(|v| v.parse().map_err(|_| format!("bad --{key}")))
                    .unwrap_or(Ok(default))
            };
            let cfg = tenbench_bench::chaos::ChaosConfig {
                duration: cli::parse_duration(
                    opts.get("duration").map(String::as_str).unwrap_or("3s"),
                )?,
                seed: get_usize("seed", defaults.seed as usize)? as u64,
                jobs: get_usize("jobs", defaults.jobs)?,
                dim: get_usize("dim", defaults.dim as usize)? as u32,
                nnz: get_usize("nnz", defaults.nnz)?,
                tensors: get_usize("tensors", defaults.tensors)?,
                alpha: get_f64("alpha", defaults.alpha)?,
                clients: get_usize("clients", defaults.clients)?,
                rank: get_usize("rank", defaults.rank)?,
                max_iters: get_usize("max-iters", defaults.max_iters)?,
                fault_rate: get_f64("fault-rate", defaults.fault_rate)?,
                max_step_seconds: get_f64("max-step-seconds", defaults.max_step_seconds)?,
                job_workers: get_usize("job-workers", defaults.job_workers)?,
                max_recoveries: get_usize("max-recoveries", defaults.max_recoveries as usize)?
                    as u32,
            };
            let chaos_opts = cli::ChaosOpts {
                cfg,
                out_json: opts.get("out").map(PathBuf::from),
                floors: opts.get("floors").map(PathBuf::from),
                flight_dump_dir,
            };
            Ok(cli::chaos(&chaos_opts)?)
        }
        _ => Err("usage: tenbench <convert|stats|generate|kernel|ablate-mttkrp|ablate-simd|convert-bench|scale-bench|verify|report|obs-overhead|serve|stress|chaos> ... (see the module docs)".into()),
    }
}
