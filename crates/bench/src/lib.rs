//! # tenbench-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures from this repository (see the `harness` binary), plus
//! shared plumbing for the Criterion micro-benchmarks.
//!
//! * [`format`] — aligned text tables and ASCII log-log plots for terminal
//!   "figures".
//! * [`data`] — dataset materialization with an on-disk cache.
//! * [`suite`] — the measured CPU kernel suite (Figures 4–5) and the
//!   simulated GPU suite (Figures 6–7), with per-tensor Roofline bounds.
//! * [`supervisor`] — watchdog timeouts, panic isolation, strategy
//!   fallback, and output validation for long sweeps.
//! * [`metrics`] — observability glue: trace/counter capture lifecycle
//!   and pool-telemetry snapshots merged into reports.
//! * [`serve_exec`] — plugs the supervisor in as the execution backend of
//!   the `tenbench-serve` kernel service and as the step runner of its
//!   decomposition-job subsystem.
//! * [`chaos`] — the fault-injection harness: a live service under load
//!   with panics, hangs, checkpoint corruption, and queue-full bursts,
//!   gated on zero lost jobs and bitwise resume determinism.

// Index-heavy kernel code deliberately uses explicit loop indices over
// several parallel arrays; the iterator forms clippy suggests are less
// readable there.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod cli;
pub mod data;
pub mod format;
pub mod metrics;
pub mod serve_exec;
pub mod suite;
pub mod supervisor;
