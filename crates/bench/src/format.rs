//! Terminal rendering: aligned tables and ASCII log-log plots.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<I: IntoIterator<Item = T>, T: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (short rows are padded with empty cells).
    pub fn row<I: IntoIterator<Item = T>, T: Into<String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Render with two spaces between columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(&self.rows);
        for row in all {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (c, w) in width.iter().enumerate() {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                out.push_str(cell);
                if c + 1 < cols {
                    for _ in 0..w.saturating_sub(cell.chars().count()) + 2 {
                        out.push(' ');
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// An ASCII log-log scatter/line plot (used for the Figure 3 rooflines).
#[derive(Debug)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    x_range: (f64, f64),
    y_range: (f64, f64),
    grid: Vec<Vec<char>>,
}

impl AsciiPlot {
    /// Create a plot with log-scaled axes over the given ranges.
    pub fn new(width: usize, height: usize, x_range: (f64, f64), y_range: (f64, f64)) -> Self {
        assert!(
            x_range.0 > 0.0 && y_range.0 > 0.0,
            "log axes need positive ranges"
        );
        AsciiPlot {
            width,
            height,
            x_range,
            y_range,
            grid: vec![vec![' '; width]; height],
        }
    }

    fn pos(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        let fx = (x.ln() - self.x_range.0.ln()) / (self.x_range.1.ln() - self.x_range.0.ln());
        let fy = (y.ln() - self.y_range.0.ln()) / (self.y_range.1.ln() - self.y_range.0.ln());
        if !(0.0..=1.0).contains(&fx) || !(0.0..=1.0).contains(&fy) {
            return None;
        }
        let col = (fx * (self.width - 1) as f64).round() as usize;
        let row = self.height - 1 - (fy * (self.height - 1) as f64).round() as usize;
        Some((row, col))
    }

    /// Plot a point series with the given glyph.
    pub fn series(&mut self, pts: &[(f64, f64)], glyph: char) {
        for &(x, y) in pts {
            if let Some((r, c)) = self.pos(x, y) {
                self.grid[r][c] = glyph;
            }
        }
    }

    /// Drop a labeled vertical marker at `x` (for kernel OI marks).
    pub fn vmark(&mut self, x: f64, glyph: char) {
        if let Some((_, c)) = self.pos(x, self.y_range.0 * 1.0001) {
            for r in 0..self.height {
                if self.grid[r][c] == ' ' {
                    self.grid[r][c] = glyph;
                }
            }
        }
    }

    /// Render with axis annotations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, row) in self.grid.iter().enumerate() {
            let y = if i == 0 {
                format!("{:>9.1} |", self.y_range.1)
            } else if i == self.height - 1 {
                format!("{:>9.2} |", self.y_range.0)
            } else {
                format!("{:>9} |", "")
            };
            out.push_str(&y);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>10}+{}\n{:>11}{:<10.3}{:>width$.1}\n",
            "",
            "-".repeat(self.width),
            "",
            self.x_range.0,
            self.x_range.1,
            width = self.width.saturating_sub(10)
        ));
        out
    }
}

/// Format a float compactly for tables (3 significant-ish digits).
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Format a u64 with thousands separators.
pub fn fint(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["a", "bbbb"]);
        t.row(["xx", "y"]);
        t.row(["1", "22222"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn fint_groups_thousands() {
        assert_eq!(fint(1_234_567), "1,234,567");
        assert_eq!(fint(12), "12");
        assert_eq!(fint(0), "0");
    }

    #[test]
    fn fnum_scales() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.0), "12345");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(0.5), "0.500");
        assert!(fnum(1e-5).contains('e'));
    }

    #[test]
    fn plot_renders_in_bounds() {
        let mut p = AsciiPlot::new(40, 10, (0.01, 100.0), (1.0, 10_000.0));
        p.series(&[(0.1, 10.0), (1.0, 100.0), (10.0, 1000.0)], '*');
        p.vmark(1.0, '|');
        let r = p.render();
        assert!(r.contains('*'));
        assert!(r.lines().count() >= 12);
        // Out-of-range points are silently dropped.
        p.series(&[(1e6, 1e6)], '@');
    }
}
