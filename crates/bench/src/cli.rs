//! The `tenbench` command-line tool: format conversion, tensor statistics,
//! synthetic generation, and single-kernel runs on user tensors — "the
//! benchmark suite can be run against any set of tensors provided that
//! they are expressed using coordinate format" (paper §4).
//!
//! The logic lives here (returning the report as a `String`) so it is unit
//! testable; `src/bin/tenbench.rs` is a thin wrapper.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tenbench_obs as obs;

use tenbench_core::coo::{CooTensor, SortAlgo};
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp, Kernel};
use tenbench_core::shape::Shape;
use tenbench_gen::zipf::ZipfSampler;
use tenbench_gen::{KroneckerGenerator, PowerLawGenerator, TensorStats};

use crate::format::{fint, fnum, TextTable};
use crate::suite::{make_factors, make_partner, time_avg};
use crate::supervisor::{self, RunReport, SupervisorConfig, Trial};

/// CLI errors: anything the underlying crates report, plus usage problems.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments or unsupported file extension.
    Usage(String),
    /// I/O or parse failure.
    Io(tenbench_io::IoError),
    /// Kernel or format failure.
    Tensor(tenbench_core::TensorError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Tensor(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<tenbench_io::IoError> for CliError {
    fn from(e: tenbench_io::IoError) -> Self {
        CliError::Io(e)
    }
}

impl From<tenbench_core::TensorError> for CliError {
    fn from(e: tenbench_core::TensorError) -> Self {
        CliError::Tensor(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(tenbench_io::IoError::Io(e))
    }
}

/// Result alias for CLI operations.
pub type CliResult<T> = Result<T, CliError>;

/// Observability options shared by the measuring subcommands
/// (`--trace <path>` and `--profile`).
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Write the run's chrome-trace JSON here.
    pub trace: Option<PathBuf>,
    /// Append the hierarchical span profile and metrics summary to the
    /// report.
    pub profile: bool,
}

impl ObsOptions {
    /// `true` when any capture output was requested.
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.profile
    }
}

/// Run `body` under an observability capture when one was requested:
/// spans, counters, and pool telemetry record for the duration; the
/// drained trace is schema-validated and written to `--trace`, and
/// `--profile` appends the span profile plus the metrics summary to the
/// report. With no capture requested this is exactly `body()`.
pub fn with_obs(opts: &ObsOptions, body: impl FnOnce() -> CliResult<String>) -> CliResult<String> {
    if !opts.active() {
        return body();
    }
    let cap = crate::metrics::Capture::begin();
    let result = body();
    let (trace, report) = cap.finish();
    let mut out = result?;
    if opts.profile {
        out.push('\n');
        out.push_str(&trace.profile());
        out.push_str(&report.render());
    }
    if let Some(path) = &opts.trace {
        let json = trace.to_chrome_json();
        // Self-check before writing: an artifact that fails its own
        // validator should never reach disk silently.
        obs::json::validate_chrome_trace(&json).map_err(|e| {
            CliError::Usage(format!("internal: emitted trace failed validation: {e}"))
        })?;
        std::fs::write(path, &json)?;
        out.push_str(&format!("\nwrote trace {}", path.display()));
    }
    Ok(out)
}

/// Load a tensor by file extension: `.tns` (FROSTT text) or `.tnb`
/// (tenbench binary).
pub fn load_tensor(path: &Path) -> CliResult<CooTensor<f32>> {
    let file = File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("tns") => Ok(tenbench_io::tns::read_tns(BufReader::new(file))?),
        Some("tnb") => Ok(tenbench_io::bin::read_bin(BufReader::new(file))?),
        other => Err(CliError::Usage(format!(
            "unsupported input extension {other:?} (expected .tns or .tnb)"
        ))),
    }
}

/// Save a tensor by file extension.
pub fn save_tensor(t: &CooTensor<f32>, path: &Path) -> CliResult<()> {
    let file = File::create(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("tns") => Ok(tenbench_io::tns::write_tns(t, BufWriter::new(file))?),
        Some("tnb") => Ok(tenbench_io::bin::write_bin(t, BufWriter::new(file))?),
        other => Err(CliError::Usage(format!(
            "unsupported output extension {other:?} (expected .tns or .tnb)"
        ))),
    }
}

/// `convert <in> <out>`: read one format, write the other.
pub fn convert(input: &Path, output: &Path) -> CliResult<String> {
    let t = load_tensor(input)?;
    save_tensor(&t, output)?;
    Ok(format!(
        "converted {} -> {}: {} tensor, {} nonzeros",
        input.display(),
        output.display(),
        t.shape(),
        fint(t.nnz() as u64)
    ))
}

/// `stats <file> [block_bits]`: structural statistics report.
pub fn stats(input: &Path, block_bits: u8) -> CliResult<String> {
    let t = load_tensor(input)?;
    Ok(stats_report(&t, block_bits))
}

/// Render the statistics report for an in-memory tensor.
pub fn stats_report(t: &CooTensor<f32>, block_bits: u8) -> String {
    let s = TensorStats::compute(t, block_bits);
    let mut out = String::new();
    out.push_str(&format!(
        "shape {}  order {}  nnz {}  density {:.3e}\n",
        t.shape(),
        s.order,
        fint(s.nnz as u64),
        s.density
    ));
    let mut tab = TextTable::new(["Mode", "Dim", "Fibers (MF)", "Max fiber"]);
    for m in 0..s.order {
        tab.row([
            m.to_string(),
            fint(s.dims[m] as u64),
            fint(s.fibers_per_mode[m] as u64),
            fint(s.max_fiber_len_per_mode[m] as u64),
        ]);
    }
    out.push_str(&tab.render());
    out.push_str(&format!(
        "HiCOO (B = {}): {} blocks, mean {} nnz/block, max {}\n",
        s.block_size,
        fint(s.hicoo_blocks as u64),
        fnum(s.mean_nnz_per_block),
        fint(s.max_nnz_per_block as u64)
    ));
    out.push_str(&format!(
        "storage: COO {} bytes, HiCOO {} bytes ({:.2}x)\n",
        fint(s.coo_bytes),
        fint(s.hicoo_bytes),
        s.compression_ratio()
    ));
    out
}

/// `generate <kron|pl> dims nnz seed out`: synthesize a tensor to a file.
pub fn generate(
    family: &str,
    dims: &[u32],
    nnz: usize,
    seed: u64,
    output: &Path,
) -> CliResult<String> {
    let shape = Shape::new(dims.to_vec());
    let t = match family {
        "kron" => KroneckerGenerator::rmat_like(shape, nnz).generate(seed),
        "pl" => PowerLawGenerator::with_threshold(shape, 1.4, nnz, 1000).generate(seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown generator {other:?} (expected kron or pl)"
            )))
        }
    };
    save_tensor(&t, output)?;
    Ok(format!(
        "generated {} ({}): {} nonzeros -> {}",
        family,
        t.shape(),
        fint(t.nnz() as u64),
        output.display()
    ))
}

/// `kernel <name> <file> ...`: run one kernel and report GFLOPS.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel(
    kernel: &str,
    input: &Path,
    mode: usize,
    rank: usize,
    format: &str,
    block_bits: u8,
    reps: usize,
    strategy: &str,
) -> CliResult<String> {
    let x = load_tensor(input)?;
    run_kernel_on(&x, kernel, mode, rank, format, block_bits, reps, strategy)
}

fn parse_strategy(strategy: &str) -> CliResult<mttkrp::MttkrpStrategy> {
    use mttkrp::MttkrpStrategy::*;
    Ok(match strategy {
        "seq" => Seq,
        "atomic" => Atomic,
        "privatized" => Privatized,
        "row_locked" => RowLocked,
        "scheduled" => Scheduled,
        other => {
            return Err(CliError::Usage(format!(
                "unknown strategy {other:?} (expected seq, atomic, privatized, row_locked, or scheduled)"
            )))
        }
    })
}

/// Run one kernel on an in-memory tensor and report time/GFLOPS.
///
/// `strategy` selects the Mttkrp parallelization (and, for HiCOO Ttv/Ttm,
/// `scheduled` switches to the conflict-free scheduled kernels); other
/// kernel/format combinations ignore it.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_on(
    x: &CooTensor<f32>,
    kernel: &str,
    mode: usize,
    rank: usize,
    format: &str,
    block_bits: u8,
    reps: usize,
    strategy: &str,
) -> CliResult<String> {
    x.shape().check_mode(mode)?;
    let hicoo = match format {
        "coo" => false,
        "hicoo" => true,
        other => {
            return Err(CliError::Usage(format!(
                "unknown format {other:?} (expected coo or hicoo)"
            )))
        }
    };
    let m = x.nnz() as u64;
    let order = x.order();
    let (kname, flops, secs) = match kernel {
        "tew" => {
            let y = make_partner(x);
            let t = if hicoo {
                let hx = HicooTensor::from_coo(x, block_bits)?;
                let hy = HicooTensor::from_coo(&y, block_bits)?;
                time_avg(reps, || {
                    std::hint::black_box(tew::tew_hicoo_same_pattern(&hx, &hy, EwOp::Add).unwrap());
                })
            } else {
                time_avg(reps, || {
                    std::hint::black_box(tew::tew_same_pattern(x, &y, EwOp::Add).unwrap());
                })
            };
            (Kernel::Tew, Kernel::Tew.flops(order, m, 0), t)
        }
        "ts" => {
            let t = if hicoo {
                let hx = HicooTensor::from_coo(x, block_bits)?;
                time_avg(reps, || {
                    std::hint::black_box(ts::ts_hicoo(&hx, 1.01, EwOp::Mul).unwrap());
                })
            } else {
                time_avg(reps, || {
                    std::hint::black_box(ts::ts(x, 1.01, EwOp::Mul).unwrap());
                })
            };
            (Kernel::Ts, Kernel::Ts.flops(order, m, 0), t)
        }
        "ttv" => {
            let v = DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32);
            let t = if hicoo && strategy == "scheduled" {
                let hx = HicooTensor::from_coo(x, block_bits)?;
                let _ = tenbench_core::sched::complement_schedule(&hx, mode); // untimed build
                time_avg(reps, || {
                    std::hint::black_box(ttv::ttv_hicoo_sched(&hx, &v, mode).unwrap());
                })
            } else if hicoo {
                let g = tenbench_core::hicoo::GHicooTensor::from_coo_for_mode(x, block_bits, mode)?;
                let fp = g.fibers(mode)?;
                time_avg(reps, || {
                    std::hint::black_box(ttv::ttv_ghicoo(&g, &fp, &v, Default::default()).unwrap());
                })
            } else {
                let mut xm = x.clone();
                let fp = xm.fibers(mode)?;
                time_avg(reps, || {
                    std::hint::black_box(
                        ttv::ttv_prepared(&xm, &fp, &v, Default::default()).unwrap(),
                    );
                })
            };
            (Kernel::Ttv, Kernel::Ttv.flops(order, m, 0), t)
        }
        "ttm" => {
            let u = DenseMatrix::constant(x.shape().dim(mode) as usize, rank, 0.5f32);
            let t = if hicoo && strategy == "scheduled" {
                let hx = HicooTensor::from_coo(x, block_bits)?;
                let _ = tenbench_core::sched::complement_schedule(&hx, mode); // untimed build
                time_avg(reps, || {
                    std::hint::black_box(ttm::ttm_hicoo_sched(&hx, &u, mode).unwrap());
                })
            } else if hicoo {
                let g = tenbench_core::hicoo::GHicooTensor::from_coo_for_mode(x, block_bits, mode)?;
                let fp = g.fibers(mode)?;
                time_avg(reps, || {
                    std::hint::black_box(ttm::ttm_ghicoo(&g, &fp, &u, Default::default()).unwrap());
                })
            } else {
                let mut xm = x.clone();
                let fp = xm.fibers(mode)?;
                time_avg(reps, || {
                    std::hint::black_box(
                        ttm::ttm_prepared(&xm, &fp, &u, Default::default()).unwrap(),
                    );
                })
            };
            (Kernel::Ttm, Kernel::Ttm.flops(order, m, rank as u64), t)
        }
        "mttkrp" => {
            let factors = make_factors(x, rank);
            let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
            let strat = parse_strategy(strategy)?;
            let t = if hicoo {
                let hx = HicooTensor::from_coo(x, block_bits)?;
                let run: Box<dyn Fn() -> DenseMatrix<f32>> = match strat {
                    mttkrp::MttkrpStrategy::Seq => {
                        Box::new(|| mttkrp::mttkrp_hicoo_seq(&hx, &frefs, mode).unwrap())
                    }
                    mttkrp::MttkrpStrategy::Scheduled => {
                        let _ = tenbench_core::sched::mode_schedule(&hx, mode); // untimed build
                        Box::new(|| mttkrp::mttkrp_hicoo_sched(&hx, &frefs, mode).unwrap())
                    }
                    _ => Box::new(|| mttkrp::mttkrp_hicoo(&hx, &frefs, mode).unwrap()),
                };
                time_avg(reps, || {
                    std::hint::black_box(run());
                })
            } else {
                if strat == mttkrp::MttkrpStrategy::Scheduled {
                    let _ = tenbench_core::sched::row_schedule(x, mode); // untimed build
                }
                time_avg(reps, || {
                    std::hint::black_box(mttkrp::mttkrp_with(x, &frefs, mode, strat).unwrap());
                })
            };
            (
                Kernel::Mttkrp,
                Kernel::Mttkrp.flops(order, m, rank as u64),
                t,
            )
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown kernel {other:?} (expected tew, ts, ttv, ttm, or mttkrp)"
            )))
        }
    };
    Ok(format!(
        "{} [{}] on {} ({} nnz): {} s avg over {} reps = {} GFLOPS",
        kname.name(),
        format,
        x.shape(),
        fint(m),
        fnum(secs),
        reps,
        fnum(flops as f64 / secs / 1e9)
    ))
}

/// `kernel --all ...`: run every kernel on both formats against one
/// tensor (loaded from `input`, or generated from the dataset registry
/// when no file is given), one report line per cell. Under `--trace`
/// this produces a capture spanning the full ten-cell sweep.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_all(
    input: Option<&Path>,
    dataset: &str,
    nnz: usize,
    mode: usize,
    rank: usize,
    block_bits: u8,
    reps: usize,
    strategy: &str,
) -> CliResult<String> {
    let x = match input {
        Some(p) => load_tensor(p)?,
        None => {
            let d = tenbench_gen::registry::find(dataset)
                .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
            d.generate_with(nnz, d.default_seed())
        }
    };
    let mut out = String::new();
    for kernel in ["tew", "ts", "ttv", "ttm", "mttkrp"] {
        for format in ["coo", "hicoo"] {
            out.push_str(&run_kernel_on(
                &x, kernel, mode, rank, format, block_bits, reps, strategy,
            )?);
            out.push('\n');
        }
    }
    Ok(out.trim_end().to_string())
}

/// `kernel ... --max-seconds S` / `--fallback on`: run one kernel under
/// supervision (watchdog timeout, panic isolation, strategy fallback,
/// output validation) and report the structured outcome alongside the
/// timing. The reported GFLOPS uses the kernel-only seconds measured
/// inside the accepted attempt (the `time_avg` batch), never the attempt
/// wall time, which additionally covers a warmup run and thread handoff;
/// validation time is reported separately as `validate_s`.
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_supervised(
    kernel: &str,
    input: &Path,
    mode: usize,
    rank: usize,
    format: &str,
    block_bits: u8,
    reps: usize,
    strategy: &str,
    cfg: &SupervisorConfig,
) -> CliResult<String> {
    let x = load_tensor(input)?;
    run_kernel_supervised_on(
        &x, kernel, mode, rank, format, block_bits, reps, strategy, cfg,
    )
}

/// Supervised single-kernel run on an in-memory tensor (see
/// [`run_kernel_supervised`]).
#[allow(clippy::too_many_arguments)]
pub fn run_kernel_supervised_on(
    x: &CooTensor<f32>,
    kernel: &str,
    mode: usize,
    rank: usize,
    format: &str,
    block_bits: u8,
    reps: usize,
    strategy: &str,
    cfg: &SupervisorConfig,
) -> CliResult<String> {
    x.shape().check_mode(mode)?;
    let hicoo = match format {
        "coo" => false,
        "hicoo" => true,
        other => {
            return Err(CliError::Usage(format!(
                "unknown format {other:?} (expected coo or hicoo)"
            )))
        }
    };
    let m = x.nnz() as u64;
    let order = x.order();
    let cell = format!("{kernel}/{format}/{strategy}/mode{mode}");
    let xa = Arc::new(x.clone());
    let count_bad = |vals: &[f32]| vals.iter().filter(|v| !v.is_finite()).count();

    let (kname, report, kernel_secs) = match kernel {
        "mttkrp" => {
            let strat = parse_strategy(strategy)?;
            let factors = Arc::new(make_factors(x, rank));
            let hx = if hicoo {
                Some(Arc::new(HicooTensor::from_coo(x, block_bits)?))
            } else {
                None
            };
            let (report, _) =
                supervisor::supervised_mttkrp(&cell, &xa, &factors, mode, hx.as_ref(), strat, cfg);
            // The Mttkrp trials time a single guarded execution, so the
            // attempt wall time is the kernel time.
            (Kernel::Mttkrp, report, None)
        }
        "tew" => {
            let trial = if hicoo {
                let hx = Arc::new(HicooTensor::from_coo(x, block_bits)?);
                let hy = Arc::new(HicooTensor::from_coo(&make_partner(x), block_bits)?);
                Trial::new("same_pattern", move || {
                    let out = tew::tew_hicoo_same_pattern(&hx, &hy, EwOp::Add)
                        .map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(
                            tew::tew_hicoo_same_pattern(&hx, &hy, EwOp::Add).unwrap(),
                        );
                    });
                    Ok((secs, out.nonfinite_count()))
                })
            } else {
                let ya = Arc::new(make_partner(x));
                let xa = xa.clone();
                Trial::new("same_pattern", move || {
                    let out =
                        tew::tew_same_pattern(&xa, &ya, EwOp::Add).map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(tew::tew_same_pattern(&xa, &ya, EwOp::Add).unwrap());
                    });
                    Ok((secs, out.nonfinite_count()))
                })
            };
            let (report, value) = supervise_scalar(&cell, vec![trial], cfg);
            (Kernel::Tew, report, value.map(|(s, _)| s))
        }
        "ts" => {
            let trial = if hicoo {
                let hx = Arc::new(HicooTensor::from_coo(x, block_bits)?);
                Trial::new("default", move || {
                    let out = ts::ts_hicoo(&hx, 1.01, EwOp::Mul).map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(ts::ts_hicoo(&hx, 1.01, EwOp::Mul).unwrap());
                    });
                    Ok((secs, out.nonfinite_count()))
                })
            } else {
                let xa = xa.clone();
                Trial::new("default", move || {
                    let out = ts::ts(&xa, 1.01, EwOp::Mul).map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(ts::ts(&xa, 1.01, EwOp::Mul).unwrap());
                    });
                    Ok((secs, out.nonfinite_count()))
                })
            };
            let (report, value) = supervise_scalar(&cell, vec![trial], cfg);
            (Kernel::Ts, report, value.map(|(s, _)| s))
        }
        "ttv" => {
            let v = Arc::new(DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32));
            let trials = if hicoo {
                let hx = Arc::new(HicooTensor::from_coo(x, block_bits)?);
                let sched = {
                    let hx = hx.clone();
                    let v = v.clone();
                    Trial::new("scheduled", move || {
                        let out = ttv::ttv_hicoo_sched(&hx, &v, mode).map_err(|e| e.to_string())?;
                        let secs = time_avg(reps, || {
                            std::hint::black_box(ttv::ttv_hicoo_sched(&hx, &v, mode).unwrap());
                        });
                        Ok((secs, out.nonfinite_count()))
                    })
                };
                let default = {
                    let xa = xa.clone();
                    let v = v.clone();
                    Trial::new("ghicoo", move || {
                        let g = tenbench_core::hicoo::GHicooTensor::from_coo_for_mode(
                            &xa, block_bits, mode,
                        )
                        .map_err(|e| e.to_string())?;
                        let fp = g.fibers(mode).map_err(|e| e.to_string())?;
                        let out = ttv::ttv_ghicoo(&g, &fp, &v, Default::default())
                            .map_err(|e| e.to_string())?;
                        let secs = time_avg(reps, || {
                            std::hint::black_box(
                                ttv::ttv_ghicoo(&g, &fp, &v, Default::default()).unwrap(),
                            );
                        });
                        Ok((secs, out.nonfinite_count()))
                    })
                };
                if strategy == "scheduled" {
                    vec![sched, default]
                } else {
                    vec![default, sched]
                }
            } else {
                let xa = xa.clone();
                let v = v.clone();
                vec![Trial::new("default", move || {
                    let mut xm = (*xa).clone();
                    let fp = xm.fibers(mode).map_err(|e| e.to_string())?;
                    let out = ttv::ttv_prepared(&xm, &fp, &v, Default::default())
                        .map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(
                            ttv::ttv_prepared(&xm, &fp, &v, Default::default()).unwrap(),
                        );
                    });
                    Ok((secs, out.nonfinite_count()))
                })]
            };
            let (report, value) = supervise_scalar(&cell, trials, cfg);
            (Kernel::Ttv, report, value.map(|(s, _)| s))
        }
        "ttm" => {
            let u = Arc::new(DenseMatrix::constant(
                x.shape().dim(mode) as usize,
                rank,
                0.5f32,
            ));
            let trials = if hicoo {
                let hx = Arc::new(HicooTensor::from_coo(x, block_bits)?);
                let sched = {
                    let hx = hx.clone();
                    let u = u.clone();
                    Trial::new("scheduled", move || {
                        let out = ttm::ttm_hicoo_sched(&hx, &u, mode).map_err(|e| e.to_string())?;
                        let secs = time_avg(reps, || {
                            std::hint::black_box(ttm::ttm_hicoo_sched(&hx, &u, mode).unwrap());
                        });
                        Ok((secs, count_bad(out.vals())))
                    })
                };
                let default = {
                    let xa = xa.clone();
                    let u = u.clone();
                    Trial::new("ghicoo", move || {
                        let g = tenbench_core::hicoo::GHicooTensor::from_coo_for_mode(
                            &xa, block_bits, mode,
                        )
                        .map_err(|e| e.to_string())?;
                        let fp = g.fibers(mode).map_err(|e| e.to_string())?;
                        let out = ttm::ttm_ghicoo(&g, &fp, &u, Default::default())
                            .map_err(|e| e.to_string())?;
                        let secs = time_avg(reps, || {
                            std::hint::black_box(
                                ttm::ttm_ghicoo(&g, &fp, &u, Default::default()).unwrap(),
                            );
                        });
                        Ok((secs, count_bad(out.vals())))
                    })
                };
                if strategy == "scheduled" {
                    vec![sched, default]
                } else {
                    vec![default, sched]
                }
            } else {
                let xa = xa.clone();
                let u = u.clone();
                vec![Trial::new("default", move || {
                    let mut xm = (*xa).clone();
                    let fp = xm.fibers(mode).map_err(|e| e.to_string())?;
                    let out = ttm::ttm_prepared(&xm, &fp, &u, Default::default())
                        .map_err(|e| e.to_string())?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(
                            ttm::ttm_prepared(&xm, &fp, &u, Default::default()).unwrap(),
                        );
                    });
                    Ok((secs, count_bad(out.vals())))
                })]
            };
            let (report, value) = supervise_scalar(&cell, trials, cfg);
            (Kernel::Ttm, report, value.map(|(s, _)| s))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown kernel {other:?} (expected tew, ts, ttv, ttm, or mttkrp)"
            )))
        }
    };
    let flops = kname.flops(order, m, rank as u64);
    Ok(render_supervised(x, &report, flops, kernel_secs))
}

/// Supervise a chain of `(kernel seconds, non-finite count)` trials,
/// accepting only all-finite outputs.
fn supervise_scalar(
    cell: &str,
    trials: Vec<Trial<(f64, usize)>>,
    cfg: &SupervisorConfig,
) -> (RunReport, Option<(f64, usize)>) {
    supervisor::supervise(
        cell,
        &trials,
        |&(_, bad)| {
            if bad == 0 {
                Ok(None)
            } else {
                Err(format!("{bad} non-finite values in output"))
            }
        },
        cfg,
    )
}

/// Render a supervised run. GFLOPS comes from the kernel-only seconds the
/// trial measured (`kernel_secs`) when available; the attempt wall time in
/// the report also covers setup and the untimed warmup run, so using it
/// would understate throughput.
fn render_supervised(
    x: &CooTensor<f32>,
    report: &RunReport,
    flops: u64,
    kernel_secs: Option<f64>,
) -> String {
    let mut out = String::new();
    if report.status.is_success() {
        let t = kernel_secs.or(report.time_s).unwrap_or(f64::INFINITY);
        out.push_str(&format!(
            "{} on {} ({} nnz): status {} via {} in {} s = {} GFLOPS\n",
            report.cell,
            x.shape(),
            fint(x.nnz() as u64),
            report.status,
            report.strategy.as_deref().unwrap_or("?"),
            fnum(t),
            fnum(flops as f64 / t / 1e9)
        ));
    } else {
        out.push_str(&format!(
            "{} on {} ({} nnz): status {}\n",
            report.cell,
            x.shape(),
            fint(x.nnz() as u64),
            report.status
        ));
    }
    out.push_str(&report.to_json());
    out.push('\n');
    out
}

/// `verify <file>`: hardened load, structural validation of both formats,
/// NaN/Inf scan, and a supervised Mttkrp checksum comparison against the
/// sequential reference. Returns a report ending in `VERIFY PASS` or
/// `VERIFY FAIL`; load failures (corrupt file, oversized header) are
/// reported as errors by the hardened reader itself.
pub fn verify(
    input: &Path,
    block_bits: u8,
    rank: usize,
    cfg: &SupervisorConfig,
) -> CliResult<String> {
    let t = load_tensor(input)?;
    let mut out = format!(
        "verify {}: {} tensor, {} nonzeros\n",
        input.display(),
        t.shape(),
        fint(t.nnz() as u64)
    );
    let mut ok = true;
    let mut check = |label: &str, r: Result<(), String>, out: &mut String| match r {
        Ok(()) => out.push_str(&format!("  {label}: ok\n")),
        Err(e) => {
            ok = false;
            out.push_str(&format!("  {label}: FAIL ({e})\n"));
        }
    };
    check(
        "coo structure",
        t.validate().map_err(|e| e.to_string()),
        &mut out,
    );
    let nf = t.nonfinite_count();
    check(
        "values finite",
        if nf == 0 {
            Ok(())
        } else {
            Err(format!("{nf} non-finite values"))
        },
        &mut out,
    );
    let hx = match HicooTensor::from_coo(&t, block_bits) {
        Ok(h) => {
            check(
                "hicoo structure",
                h.validate().map_err(|e| e.to_string()),
                &mut out,
            );
            Some(Arc::new(h))
        }
        Err(e) => {
            check("hicoo conversion", Err(e.to_string()), &mut out);
            None
        }
    };
    if t.nnz() > 0 {
        let xa = Arc::new(t.clone());
        // Sort pipeline cross-check under the supervisor: the radix-sorted
        // tensor must equal the sequential comparator ordering exactly,
        // both lexicographically and in Morton block order.
        let xs = xa.clone();
        let trials = vec![Trial::new("radix", move || {
            let order: Vec<usize> = (0..xs.order()).collect();
            let mut a = (*xs).clone();
            let mut b = (*xs).clone();
            a.sort_lexicographic_with(&order, SortAlgo::Radix);
            b.sort_lexicographic_with(&order, SortAlgo::Comparator);
            let lex_ok = a == b;
            let mut a = (*xs).clone();
            let mut b = (*xs).clone();
            a.sort_morton_with(block_bits, SortAlgo::Radix);
            b.sort_morton_with(block_bits, SortAlgo::Comparator);
            Ok((lex_ok, a == b))
        })];
        let (r, _) = supervisor::supervise(
            "sort/coo",
            &trials,
            |&(lex_ok, morton_ok): &(bool, bool)| {
                if lex_ok && morton_ok {
                    Ok(None)
                } else {
                    Err(format!(
                        "radix order diverges from comparator (lex ok = {lex_ok}, morton ok = {morton_ok})"
                    ))
                }
            },
            cfg,
        );
        check(
            "radix sort vs comparator reference",
            if r.status.is_success() {
                Ok(())
            } else {
                Err(r.status.to_string())
            },
            &mut out,
        );
        let factors = Arc::new(make_factors(&t, rank));
        let strat = mttkrp::MttkrpStrategy::Scheduled;
        let (r, _) =
            supervisor::supervised_mttkrp("mttkrp/coo", &xa, &factors, 0, None, strat, cfg);
        check(
            "mttkrp coo vs sequential reference",
            if r.status.is_success() {
                Ok(())
            } else {
                Err(r.status.to_string())
            },
            &mut out,
        );
        if let Some(hx) = &hx {
            let (r, _) = supervisor::supervised_mttkrp(
                "mttkrp/hicoo",
                &xa,
                &factors,
                0,
                Some(hx),
                strat,
                cfg,
            );
            check(
                "mttkrp hicoo vs sequential reference",
                if r.status.is_success() {
                    Ok(())
                } else {
                    Err(r.status.to_string())
                },
                &mut out,
            );
        }
    }
    out.push_str(if ok { "VERIFY PASS\n" } else { "VERIFY FAIL\n" });
    Ok(out)
}

/// `ablate-mttkrp`: measure every Mttkrp strategy (COO and HiCOO, atomic
/// and scheduled) on a generated dataset, render a table, and optionally
/// write the rows as JSON for committed benchmark artifacts.
#[allow(clippy::too_many_arguments)]
pub fn ablate_mttkrp(
    dataset: &str,
    nnz: usize,
    rank: usize,
    block_bits: u8,
    reps: usize,
    threads_list: &[usize],
    out_json: Option<&Path>,
    cfg: &SupervisorConfig,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
    let x = d.generate_with(nnz, d.default_seed());

    // One supervised sweep per requested pool size; an empty list keeps
    // the single-sweep behavior at the ambient pool size.
    let sweeps: Vec<Option<usize>> = if threads_list.is_empty() {
        vec![None]
    } else {
        threads_list.iter().map(|&t| Some(t)).collect()
    };

    let mut out = format!(
        "Mttkrp scheduling ablation on {dataset} ({}, {} nnz, R = {rank}, B = {})\n",
        x.shape(),
        fint(x.nnz() as u64),
        1u32 << block_bits,
    );
    let mut measured: Vec<(usize, Vec<crate::suite::AblationRow>)> = Vec::new();
    for threads in sweeps {
        let rows = crate::suite::run_mttkrp_ablation_supervised_at(
            &x, rank, block_bits, reps, threads, cfg,
        );
        let shown = threads.unwrap_or_else(tenbench_core::par::current_threads);
        let atomic_hicoo = rows
            .iter()
            .find(|r| r.name == "hicoo/atomic")
            .map(|r| r.time_s)
            .unwrap_or(0.0);
        let atomic_coo = rows
            .iter()
            .find(|r| r.name == "coo/atomic")
            .map(|r| r.time_s)
            .unwrap_or(0.0);
        let speedup = |r: &crate::suite::AblationRow| -> String {
            let base = if r.name.starts_with("hicoo") {
                atomic_hicoo
            } else {
                atomic_coo
            };
            let s = base / r.time_s;
            if s.is_finite() {
                format!("{s:.2}x")
            } else {
                "-".to_string()
            }
        };
        let mut tab = TextTable::new(["Strategy", "Time (s)", "Melem/s", "vs atomic", "Status"]);
        for r in &rows {
            tab.row([
                r.name.clone(),
                if r.time_s.is_finite() {
                    fnum(r.time_s)
                } else {
                    "-".to_string()
                },
                fnum(r.melem_s),
                speedup(r),
                r.status.to_string(),
            ]);
        }
        out.push_str(&format!("-- {shown} threads --\n"));
        out.push_str(&tab.render());
        measured.push((shown, rows));
    }

    if let Some(path) = out_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"dataset\": \"{dataset}\",\n  \"shape\": \"{}\",\n  \"nnz\": {},\n  \"rank\": {rank},\n  \"block_bits\": {block_bits},\n  \"reps\": {reps},\n  \"host_cpus\": {},\n",
            x.shape(),
            x.nnz(),
            host_cpus(),
        ));
        json.push_str("  \"sweeps\": [\n");
        for (si, (threads, rows)) in measured.iter().enumerate() {
            let atomic_hicoo = rows
                .iter()
                .find(|r| r.name == "hicoo/atomic")
                .map(|r| r.time_s)
                .unwrap_or(0.0);
            let atomic_coo = rows
                .iter()
                .find(|r| r.name == "coo/atomic")
                .map(|r| r.time_s)
                .unwrap_or(0.0);
            json.push_str(&format!("    {{\"threads\": {threads}, \"rows\": [\n"));
            for (i, r) in rows.iter().enumerate() {
                let base = if r.name.starts_with("hicoo") {
                    atomic_hicoo
                } else {
                    atomic_coo
                };
                let s = base / r.time_s;
                json.push_str(&format!(
                    "      {{\"name\": \"{}\", \"time_s\": {}, \"melem_s\": {}, \"speedup_vs_atomic\": {}, \"status\": \"{}\"}}{}\n",
                    r.name,
                    obs::json::json_f64(r.time_s),
                    obs::json::json_f64_fixed(r.melem_s, 3),
                    obs::json::json_f64_fixed(s, 3),
                    r.status.label(),
                    if i + 1 < rows.len() { "," } else { "" }
                ));
            }
            json.push_str(&format!(
                "    ]}}{}\n",
                if si + 1 < measured.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, &json)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }
    Ok(out)
}

/// `ablate-simd`: measure every kernel cell (COO, HiCOO, and the
/// value-blocked HiCOO layout where it exists) under the Scalar and Simd
/// backends on a generated dataset, annotate each side against the host's
/// ERT Roofline, render the pairs as a table, and optionally write
/// `BENCH_simd.json`. With `min_speedup`, the Simd-vs-Scalar ratio of the
/// scheduled HiCOO Mttkrp cell at the largest measured rank is enforced as
/// a CI regression gate (the floor lives in `ci/simd-floor.txt`).
pub fn ablate_simd(
    dataset: &str,
    nnz: usize,
    ranks: &[usize],
    block_bits: u8,
    reps: usize,
    out_json: Option<&Path>,
    min_speedup: Option<f64>,
) -> CliResult<String> {
    use tenbench_core::simd::{self, KernelBackend};

    if ranks.is_empty() {
        return Err(CliError::Usage("--ranks list is empty".to_string()));
    }
    let d = tenbench_gen::registry::find(dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
    let x = d.generate_with(nnz, d.default_seed());

    // Real obtainable ceilings for the %-of-roofline columns: a quick ERT
    // sweep on this host, exactly as the harness figures do.
    let ert = tenbench_roofline::ert::run(&tenbench_roofline::ert::ErtConfig::quick());
    let machine = crate::suite::MachineModel {
        name: format!("host-{}t", ert.threads),
        ert_dram_gbs: ert.dram_gbs,
        peak_gflops: ert.peak_gflops,
    };

    let rows = crate::suite::run_simd_ablation(&x, &machine, ranks, block_bits, reps);
    // `run_simd_ablation` emits scalar-then-simd per cell; re-pair them.
    let pairs: Vec<(
        &crate::suite::SimdAblationRow,
        &crate::suite::SimdAblationRow,
    )> = rows
        .chunks(2)
        .map(|c| {
            debug_assert_eq!(c[0].backend, KernelBackend::Scalar);
            debug_assert_eq!(c[1].backend, KernelBackend::Simd);
            (&c[0], &c[1])
        })
        .collect();
    let speedup = |s: &crate::suite::SimdAblationRow, v: &crate::suite::SimdAblationRow| -> f64 {
        if s.time_s.is_finite() && v.time_s > 0.0 {
            s.time_s / v.time_s
        } else {
            f64::NAN
        }
    };

    let mut out = format!(
        "SIMD backend ablation on {dataset} ({}, {} nnz, B = {}, ranks {:?})\n\
         host: {} logical CPUs, avx2 {}, ERT {} GB/s DRAM / {} GFLOPS peak\n",
        x.shape(),
        fint(x.nnz() as u64),
        1u32 << block_bits,
        ranks,
        host_cpus(),
        if simd::avx2_available() { "yes" } else { "no" },
        fnum(machine.ert_dram_gbs),
        fnum(machine.peak_gflops),
    );
    let mut tab = TextTable::new([
        "Kernel",
        "Format",
        "R",
        "Scalar (s)",
        "Simd (s)",
        "Speedup",
        "Scalar %roof",
        "Simd %roof",
    ]);
    for (s, v) in &pairs {
        tab.row([
            s.kernel.name().to_string(),
            s.format.to_string(),
            s.rank.to_string(),
            fnum(s.time_s),
            fnum(v.time_s),
            format!("{:.2}x", speedup(s, v)),
            format!("{:.1}%", s.pct_of_roof),
            format!("{:.1}%", v.pct_of_roof),
        ]);
    }
    out.push_str(&tab.render());

    if let Some(path) = out_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"dataset\": \"{dataset}\",\n  \"shape\": \"{}\",\n  \"nnz\": {},\n  \"ranks\": {:?},\n  \"block_bits\": {block_bits},\n  \"reps\": {reps},\n  \"host_cpus\": {},\n  \"avx2\": {},\n  \"ert_dram_gbs\": {},\n  \"ert_peak_gflops\": {},\n",
            x.shape(),
            x.nnz(),
            ranks,
            host_cpus(),
            simd::avx2_available(),
            obs::json::json_f64_fixed(machine.ert_dram_gbs, 3),
            obs::json::json_f64_fixed(machine.peak_gflops, 3),
        ));
        json.push_str("  \"cells\": [\n");
        for (i, (s, v)) in pairs.iter().enumerate() {
            let side = |r: &crate::suite::SimdAblationRow| {
                format!(
                    "{{\"time_s\": {}, \"gflops\": {}, \"ai\": {}, \"pct_of_roof\": {}}}",
                    obs::json::json_f64(r.time_s),
                    obs::json::json_f64_fixed(r.gflops, 4),
                    obs::json::json_f64_fixed(r.ai_measured, 4),
                    obs::json::json_f64_fixed(r.pct_of_roof, 2),
                )
            };
            json.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"format\": \"{}\", \"rank\": {}, \"scalar\": {}, \"simd\": {}, \"simd_speedup\": {}}}{}\n",
                s.kernel.name(),
                s.format,
                s.rank,
                side(s),
                side(v),
                obs::json::json_f64_fixed(speedup(s, v), 3),
                if i + 1 < pairs.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, &json)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }

    if let Some(floor) = min_speedup {
        let gate_rank = *ranks.iter().max().expect("ranks nonempty");
        let (s, v) = pairs
            .iter()
            .find(|(s, _)| {
                s.kernel == tenbench_core::kernels::Kernel::Mttkrp
                    && s.format == "HiCOO"
                    && s.rank == gate_rank
            })
            .ok_or_else(|| {
                CliError::Usage("no scheduled HiCOO Mttkrp cell to gate on".to_string())
            })?;
        let got = speedup(s, v);
        if got.is_nan() || got < floor {
            return Err(CliError::Usage(format!(
                "SIMD speedup regression: scheduled HiCOO Mttkrp at R = {gate_rank} is \
                 {got:.2}x scalar, below the floor of {floor:.2}x"
            )));
        }
        out.push_str(&format!(
            "simd gate: mttkrp/HiCOO @ R={gate_rank} {got:.2}x >= {floor:.2}x ok\n"
        ));
    }
    Ok(out)
}

/// One measured configuration of the conversion pipeline.
struct ConvertRow {
    algo: &'static str,
    threads: usize,
    sort_s: f64,
    build_s: f64,
}

impl ConvertRow {
    fn total_s(&self) -> f64 {
        self.sort_s + self.build_s
    }
}

/// `convert-bench`: measure the COO→HiCOO conversion pipeline (Morton sort
/// then block build) across thread counts. The first row is the sequential
/// comparator-sort baseline; the remaining rows run the parallel radix
/// pipeline at each requested thread count. Optionally writes the rows as
/// JSON (`BENCH_convert.json`) and enforces a minimum radix speedup at the
/// highest thread count (the CI regression gate).
pub fn convert_bench(
    dataset: &str,
    nnz: usize,
    block_bits: u8,
    threads_list: &[usize],
    reps: usize,
    out_json: Option<&Path>,
    min_speedup: Option<f64>,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
    if threads_list.is_empty() {
        return Err(CliError::Usage("--threads list is empty".to_string()));
    }
    let x = d.generate_with(nnz, d.default_seed());
    let m = x.nnz();

    // Best-of-reps per configuration; each rep re-clones the (lex-sorted)
    // generator output so both backends start from the identical order.
    let measure = |threads: usize, algo: SortAlgo, label: &'static str| -> CliResult<ConvertRow> {
        let mut best: Option<ConvertRow> = None;
        for _ in 0..reps.max(1) {
            let mut c = x.clone();
            let (sort_s, build_s) = tenbench_core::par::with_threads(threads, || {
                let t0 = Instant::now();
                c.sort_morton_with(block_bits, algo);
                let sort_s = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                // The internal re-sort is a no-op: the sort state already
                // says Morton(block_bits), so this times the build alone.
                let r = HicooTensor::from_coo_inplace(&mut c, block_bits);
                let build_s = t1.elapsed().as_secs_f64();
                r.map(|h| {
                    std::hint::black_box(h.num_blocks());
                    (sort_s, build_s)
                })
            })?;
            let row = ConvertRow {
                algo: label,
                threads,
                sort_s,
                build_s,
            };
            if best.as_ref().is_none_or(|b| row.total_s() < b.total_s()) {
                best = Some(row);
            }
        }
        Ok(best.expect("reps >= 1"))
    };

    let baseline = measure(1, SortAlgo::Comparator, "comparator")?;
    let mut rows = vec![baseline];
    for &threads in threads_list {
        rows.push(measure(threads, SortAlgo::Radix, "radix")?);
    }

    let base_total = rows[0].total_s();
    let mnnz = |r: &ConvertRow| m as f64 / r.total_s() / 1e6;
    let mut tab = TextTable::new([
        "Pipeline",
        "Threads",
        "Sort (s)",
        "Build (s)",
        "Total (s)",
        "Mnnz/s",
        "Speedup",
    ]);
    for r in &rows {
        tab.row([
            r.algo.to_string(),
            r.threads.to_string(),
            fnum(r.sort_s),
            fnum(r.build_s),
            fnum(r.total_s()),
            fnum(mnnz(r)),
            format!("{:.2}x", base_total / r.total_s()),
        ]);
    }
    let mut out = format!(
        "COO -> HiCOO conversion pipeline on {dataset} ({}, {} nnz, B = {}, best of {reps})\n",
        x.shape(),
        fint(m as u64),
        1u32 << block_bits,
    );
    out.push_str(&tab.render());

    let final_speedup = base_total / rows.last().expect("rows nonempty").total_s();

    if let Some(path) = out_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"dataset\": \"{dataset}\",\n  \"shape\": \"{}\",\n  \"nnz\": {m},\n  \"block_bits\": {block_bits},\n  \"reps\": {reps},\n",
            x.shape(),
        ));
        json.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"pipeline\": \"{}\", \"threads\": {}, \"sort_s\": {}, \"build_s\": {}, \"total_s\": {}, \"mnnz_per_s\": {}, \"speedup_vs_baseline\": {}}}{}\n",
                r.algo,
                r.threads,
                obs::json::json_f64(r.sort_s),
                obs::json::json_f64(r.build_s),
                obs::json::json_f64(r.total_s()),
                obs::json::json_f64_fixed(mnnz(r), 3),
                obs::json::json_f64_fixed(base_total / r.total_s(), 3),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"speedup_at_max_threads\": {}\n}}\n",
            obs::json::json_f64_fixed(final_speedup, 3)
        ));
        std::fs::write(path, &json)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }

    if let Some(floor) = min_speedup {
        if final_speedup < floor {
            return Err(CliError::Usage(format!(
                "conversion speedup regression: radix at {} threads is {final_speedup:.2}x vs \
                 sequential comparator baseline, below the floor of {floor:.2}x",
                rows.last().expect("rows nonempty").threads,
            )));
        }
        out.push_str(&format!(
            "speedup gate: {final_speedup:.2}x >= {floor:.2}x ok\n"
        ));
    }
    Ok(out)
}

/// One measured cell of the multicore scaling sweep.
struct ScaleCell {
    bench: &'static str,
    threads: usize,
    time_s: f64,
    self_speedup: f64,
    busy_frac: f64,
    park_frac: f64,
    steal_frac: f64,
    chunks: u64,
}

/// Options for [`scale_bench`].
pub struct ScaleBenchOpts {
    /// Dataset registry id to generate.
    pub dataset: String,
    /// Target nonzero count.
    pub nnz: usize,
    /// Factor-matrix rank for Mttkrp/Ttm.
    pub rank: usize,
    /// HiCOO block bits.
    pub block_bits: u8,
    /// Pool sizes to sweep (sorted and deduplicated before measuring).
    pub threads: Vec<usize>,
    /// Timed repetitions per cell (best-of).
    pub reps: usize,
    /// Where to write `BENCH_scaling.json`, if anywhere.
    pub out_json: Option<PathBuf>,
    /// Scaling-floor file to enforce, if any.
    pub floors: Option<PathBuf>,
}

/// Logical CPUs on this host. Scaling floors above this count are
/// unenforceable — wall-clock self-speedup past the physical core count is
/// not a real measurement — so the gate reports them as skipped.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a scaling-floor file: one `<bench>@<threads> <min_self_speedup>`
/// per line, `#` comments. Keys without an `@` belong to other consumers
/// of the same file (the conversion-bench single-point gate reads its
/// floor from here too) and are ignored.
fn parse_scaling_floors(path: &Path) -> CliResult<Vec<(String, usize, f64)>> {
    let text = std::fs::read_to_string(path)?;
    let mut floors = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            CliError::Usage(format!(
                "{}:{}: {what}: {raw:?}",
                path.display(),
                lineno + 1
            ))
        };
        let mut it = line.split_whitespace();
        let (Some(key), Some(val)) = (it.next(), it.next()) else {
            return Err(bad("expected `<bench>@<threads> <floor>`"));
        };
        let Some((bench, t)) = key.split_once('@') else {
            continue;
        };
        let t: usize = t.parse().map_err(|_| bad("bad thread count"))?;
        let floor: f64 = val.parse().map_err(|_| bad("bad floor"))?;
        floors.push((bench.to_string(), t, floor));
    }
    Ok(floors)
}

/// `scale-bench`: sweep every kernel and the conversion pipeline across
/// thread counts and report per-cell wall time, self-speedup (vs the
/// smallest measured thread count), and pool telemetry (busy/park ratio
/// and steal fraction over the measured reps). Optionally writes
/// `BENCH_scaling.json` (with a `host_cpus` field so downstream gates can
/// tell real flat curves from core-starved hosts) and enforces
/// self-speedup floors from a `ci/scaling-floor.txt`-style file; floors
/// whose thread count exceeds the host's cores are reported as skipped.
pub fn scale_bench(opts: &ScaleBenchOpts) -> CliResult<String> {
    let d = tenbench_gen::registry::find(&opts.dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {:?}", opts.dataset)))?;
    let mut threads = opts.threads.clone();
    threads.sort_unstable();
    threads.dedup();
    if threads.is_empty() || threads[0] == 0 {
        return Err(CliError::Usage(
            "--threads must be a non-empty list of positive counts".to_string(),
        ));
    }
    let reps = opts.reps.max(1);
    let rank = opts.rank;
    let block_bits = opts.block_bits;
    let mode = 0usize;
    let x = d.generate_with(opts.nnz, d.default_seed());

    // Inputs shared by every cell, built once and untimed.
    let y = make_partner(&x);
    let factors = make_factors(&x, rank);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let v = DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32);
    let u = DenseMatrix::constant(x.shape().dim(mode) as usize, rank, 0.5f32);
    let mut xm = x.clone();
    let fp = xm.fibers(mode)?;
    let hx = HicooTensor::from_coo(&x, block_bits)?;

    // Each bench does its own untimed setup (e.g. re-cloning the tensor
    // the conversion pipeline is about to sort) and returns the wall
    // seconds of the timed section alone.
    type Bench<'a> = (&'static str, Box<dyn FnMut() -> CliResult<f64> + Send + 'a>);
    let mut benches: Vec<Bench<'_>> = vec![
        (
            "convert",
            Box::new(|| {
                let mut c = x.clone();
                let t0 = Instant::now();
                c.sort_morton_with(block_bits, SortAlgo::Radix);
                let h = HicooTensor::from_coo_inplace(&mut c, block_bits)?;
                std::hint::black_box(h.num_blocks());
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "tew",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(tew::tew_same_pattern(&x, &y, EwOp::Add)?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "ts",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(ts::ts(&x, 1.01, EwOp::Mul)?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "ttv",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(ttv::ttv_prepared(&xm, &fp, &v, Default::default())?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "ttm",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(ttm::ttm_prepared(&xm, &fp, &u, Default::default())?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "mttkrp_atomic",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(mttkrp::mttkrp_with(
                    &x,
                    &frefs,
                    mode,
                    mttkrp::MttkrpStrategy::Atomic,
                )?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "mttkrp_sched",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(mttkrp::mttkrp_with(
                    &x,
                    &frefs,
                    mode,
                    mttkrp::MttkrpStrategy::Scheduled,
                )?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
        (
            "mttkrp_hicoo_sched",
            Box::new(|| {
                let t0 = Instant::now();
                std::hint::black_box(mttkrp::mttkrp_hicoo_sched(&hx, &frefs, mode)?);
                Ok(t0.elapsed().as_secs_f64())
            }),
        ),
    ];

    let mut cells: Vec<ScaleCell> = Vec::new();
    for (name, run) in benches.iter_mut() {
        let mut base: Option<f64> = None;
        for &t in &threads {
            let (time_s, stats) = tenbench_core::par::with_threads(t, || -> CliResult<_> {
                // Warm-up rep: builds this thread count's schedules, warms
                // the pool and scratch, and prefaults outputs — all
                // outside the telemetry window.
                run()?;
                rayon::reset_pool_stats();
                let prev = rayon::set_pool_telemetry(true);
                let mut best = f64::INFINITY;
                let mut failed = None;
                for _ in 0..reps {
                    match run() {
                        Ok(s) => best = best.min(s),
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                rayon::set_pool_telemetry(prev);
                if let Some(e) = failed {
                    return Err(e);
                }
                Ok((best, rayon::pool_stats()))
            })?;
            let busy: u64 =
                stats.workers.iter().map(|w| w.busy_ns).sum::<u64>() + stats.caller.busy_ns;
            let park: u64 = stats.workers.iter().map(|w| w.park_ns).sum();
            let base_s = *base.get_or_insert(time_s);
            cells.push(ScaleCell {
                bench: name,
                threads: t,
                time_s,
                self_speedup: base_s / time_s,
                busy_frac: busy as f64 / (busy + park).max(1) as f64,
                park_frac: park as f64 / (busy + park).max(1) as f64,
                steal_frac: stats.chunks_stolen as f64 / stats.chunks_total.max(1) as f64,
                chunks: stats.chunks_total,
            });
        }
    }

    let host = host_cpus();
    let mut tab = TextTable::new([
        "Bench",
        "Threads",
        "Time (s)",
        "Self-speedup",
        "Busy",
        "Steal",
        "Chunks",
    ]);
    for c in &cells {
        tab.row([
            c.bench.to_string(),
            c.threads.to_string(),
            fnum(c.time_s),
            format!("{:.2}x", c.self_speedup),
            format!("{:.0}%", c.busy_frac * 100.0),
            format!("{:.0}%", c.steal_frac * 100.0),
            fint(c.chunks),
        ]);
    }
    let mut out = format!(
        "Multicore scaling sweep on {} ({}, {} nnz, R = {rank}, B = {}, best of {reps}, host cpus = {host})\n",
        opts.dataset,
        x.shape(),
        fint(x.nnz() as u64),
        1u32 << block_bits,
    );
    out.push_str(&tab.render());

    if let Some(path) = &opts.out_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"dataset\": \"{}\",\n  \"shape\": \"{}\",\n  \"nnz\": {},\n  \"rank\": {rank},\n  \"block_bits\": {block_bits},\n  \"reps\": {reps},\n  \"host_cpus\": {host},\n",
            opts.dataset,
            x.shape(),
            x.nnz(),
        ));
        json.push_str("  \"rows\": [\n");
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"bench\": \"{}\", \"threads\": {}, \"time_s\": {}, \"self_speedup\": {}, \"busy_frac\": {}, \"park_frac\": {}, \"steal_frac\": {}, \"chunks\": {}}}{}\n",
                c.bench,
                c.threads,
                obs::json::json_f64(c.time_s),
                obs::json::json_f64_fixed(c.self_speedup, 3),
                obs::json::json_f64_fixed(c.busy_frac, 3),
                obs::json::json_f64_fixed(c.park_frac, 3),
                obs::json::json_f64_fixed(c.steal_frac, 3),
                c.chunks,
                if i + 1 < cells.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, &json)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }

    if let Some(floor_path) = &opts.floors {
        let floors = parse_scaling_floors(floor_path)?;
        let mut violations = Vec::new();
        for (bench, t, floor) in &floors {
            if *t > host {
                out.push_str(&format!(
                    "gate {bench}@{t}: skipped (floor {floor:.2}x, host has {host} cpus)\n"
                ));
                continue;
            }
            match cells.iter().find(|c| c.bench == bench && c.threads == *t) {
                None => violations.push(format!(
                    "{bench}@{t}: floor {floor:.2}x but no measured row \
                     (pass --threads including {t})"
                )),
                Some(c) if c.self_speedup < *floor => violations.push(format!(
                    "{bench}@{t}: self-speedup {:.2}x below floor {floor:.2}x",
                    c.self_speedup
                )),
                Some(c) => out.push_str(&format!(
                    "gate {bench}@{t}: {:.2}x >= {floor:.2}x ok\n",
                    c.self_speedup
                )),
            }
        }
        if !violations.is_empty() {
            return Err(CliError::Usage(format!(
                "scaling gate failed:\n  {}",
                violations.join("\n  ")
            )));
        }
    }
    Ok(out)
}

/// `report <trace.json | flight-dump.json>`: validate a previously
/// written observability artifact and summarize it. Flight-recorder dumps
/// (recognized by their `flight_dump` marker) are schema-checked and
/// pretty-printed with the faulting context's events highlighted; anything
/// else is validated as a chrome trace (event count, lanes, nesting
/// depth). Fails with a usage error when the file is neither, which is
/// what the CI schema gate keys on.
pub fn report(input: &Path) -> CliResult<String> {
    let json = std::fs::read_to_string(input)?;
    if let Ok(doc) = obs::json::Value::parse(&json) {
        if obs::flight::is_flight_dump(&doc) {
            let rendered = obs::flight::render_flight_dump(&json).map_err(|e| {
                CliError::Usage(format!("{}: invalid flight dump: {e}", input.display()))
            })?;
            return Ok(format!(
                "{}: valid flight dump\n{rendered}",
                input.display()
            ));
        }
    }
    let s = obs::json::validate_chrome_trace(&json)
        .map_err(|e| CliError::Usage(format!("{}: invalid chrome trace: {e}", input.display())))?;
    Ok(format!(
        "{}: valid chrome trace\n  events          {}\n  duration events {}\n  flow events     {}\n  thread lanes    {}\n  max span depth  {}\n",
        input.display(),
        fint(s.total_events as u64),
        fint(s.duration_events as u64),
        fint(s.flow_events as u64),
        fint(s.threads as u64),
        fint(s.max_depth as u64),
    ))
}

/// `obs-overhead`: measure the wall-time cost of full tracing over the
/// measured CPU suite at each requested thread count. Untraced and traced
/// runs are interleaved and the best of `rounds` is kept on both sides, so
/// one-off scheduling noise cannot manufacture (or hide) overhead.
/// Optionally writes `BENCH_obs_overhead.json` and enforces a maximum
/// overhead percentage at every thread count (the CI gate).
#[allow(clippy::too_many_arguments)]
pub fn obs_overhead(
    dataset: &str,
    nnz: usize,
    rank: usize,
    block_bits: u8,
    reps: usize,
    threads_list: &[usize],
    rounds: usize,
    out_json: Option<&Path>,
    max_overhead_pct: Option<f64>,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
    let x = d.generate_with(nnz, d.default_seed());
    let machine = crate::suite::MachineModel {
        name: "obs-overhead".into(),
        ert_dram_gbs: 100.0,
        peak_gflops: 1000.0,
    };
    let rounds = rounds.max(1);

    struct Row {
        threads: usize,
        untraced_s: f64,
        traced_s: f64,
    }
    let mut rows = Vec::new();
    for &threads in threads_list {
        let mut untraced_s = f64::INFINITY;
        let mut traced_s = f64::INFINITY;
        for _ in 0..rounds {
            let t0 = Instant::now();
            tenbench_core::par::with_threads(threads, || {
                std::hint::black_box(crate::suite::run_cpu_suite(
                    &x, &machine, rank, block_bits, reps,
                ));
            });
            untraced_s = untraced_s.min(t0.elapsed().as_secs_f64());

            let cap = crate::metrics::Capture::begin();
            let t0 = Instant::now();
            tenbench_core::par::with_threads(threads, || {
                std::hint::black_box(crate::suite::run_cpu_suite(
                    &x, &machine, rank, block_bits, reps,
                ));
            });
            traced_s = traced_s.min(t0.elapsed().as_secs_f64());
            let _ = cap.finish();
        }
        rows.push(Row {
            threads,
            untraced_s,
            traced_s,
        });
    }
    // Guarded: a degenerate zero-time untraced baseline must not turn the
    // overhead into a non-finite number (it would poison the JSON gate).
    let pct = |r: &Row| {
        if r.untraced_s > 0.0 && r.untraced_s.is_finite() && r.traced_s.is_finite() {
            (r.traced_s / r.untraced_s - 1.0) * 100.0
        } else {
            0.0
        }
    };

    let mut tab = TextTable::new(["Threads", "Untraced (s)", "Traced (s)", "Overhead"]);
    for r in &rows {
        tab.row([
            r.threads.to_string(),
            fnum(r.untraced_s),
            fnum(r.traced_s),
            format!("{:+.2}%", pct(r)),
        ]);
    }
    let mut out = format!(
        "Tracing overhead on {dataset} ({}, {} nnz, R = {rank}, B = {}, best of {rounds})\n",
        x.shape(),
        fint(x.nnz() as u64),
        1u32 << block_bits,
    );
    out.push_str(&tab.render());

    if let Some(path) = out_json {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"dataset\": \"{dataset}\",\n  \"shape\": \"{}\",\n  \"nnz\": {},\n  \"rank\": {rank},\n  \"block_bits\": {block_bits},\n  \"reps\": {reps},\n  \"rounds\": {rounds},\n",
            x.shape(),
            x.nnz(),
        ));
        json.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"threads\": {}, \"untraced_s\": {}, \"traced_s\": {}, \"overhead_pct\": {}}}{}\n",
                r.threads,
                obs::json::json_f64(r.untraced_s),
                obs::json::json_f64(r.traced_s),
                obs::json::json_f64_fixed(pct(r), 3),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, &json)?;
        out.push_str(&format!("wrote {}\n", path.display()));
    }

    if let Some(ceiling) = max_overhead_pct {
        if let Some(r) = rows.iter().find(|r| pct(r) > ceiling) {
            return Err(CliError::Usage(format!(
                "tracing overhead regression: {:+.2}% at {} threads, above the ceiling of {ceiling:.2}%",
                pct(r),
                r.threads,
            )));
        }
        out.push_str(&format!("overhead gate: all <= {ceiling:.2}% ok\n"));
    }
    Ok(out)
}

/// Parse a `--duration` value: a plain number of seconds, optionally with
/// an `s`/`ms` suffix (`"5"`, `"5s"`, `"250ms"`).
pub fn parse_duration(s: &str) -> CliResult<std::time::Duration> {
    let bad = || CliError::Usage(format!("bad --duration {s:?} (expected e.g. 5, 5s, 250ms)"));
    if let Some(ms) = s.strip_suffix("ms") {
        let v: u64 = ms.parse().map_err(|_| bad())?;
        return Ok(std::time::Duration::from_millis(v));
    }
    let secs = s.strip_suffix('s').unwrap_or(s);
    let v: f64 = secs.parse().map_err(|_| bad())?;
    if !v.is_finite() || v < 0.0 {
        return Err(bad());
    }
    Ok(std::time::Duration::from_secs_f64(v))
}

/// `serve`: start the in-process kernel service on the supervised
/// executor, submit a demonstration mix of requests (every kernel × both
/// formats across a few tensors), and print per-request metrics plus the
/// service report. This is the smoke-level entry point; `stress` is the
/// load generator.
pub fn serve_demo(
    dataset: &str,
    nnz: usize,
    rank: usize,
    serve_cfg: tenbench_serve::ServeConfig,
    sup_cfg: &SupervisorConfig,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {dataset:?}")))?;
    let pool: Vec<Arc<CooTensor<f32>>> = (0..3u64)
        .map(|i| Arc::new(d.generate_with(nnz, d.default_seed().wrapping_add(i))))
        .collect();
    let svc = tenbench_serve::KernelService::start(
        serve_cfg,
        Box::new(crate::serve_exec::SupervisedExecutor::new(sup_cfg.clone())),
    );

    let mut submitted = Vec::new();
    for (i, x) in pool.iter().enumerate() {
        for kernel in Kernel::ALL {
            for format in [
                tenbench_serve::FormatKind::Coo,
                tenbench_serve::FormatKind::Hicoo,
            ] {
                let mode = i % x.order();
                let ticket = svc
                    .submit(tenbench_serve::Request {
                        kernel,
                        format,
                        mode,
                        rank,
                        tensor: x.clone(),
                        deadline: None,
                    })
                    .map_err(|e| CliError::Usage(format!("submit refused: {e}")))?;
                submitted.push((kernel, format, mode, ticket));
            }
        }
    }

    let mut tab = TextTable::new([
        "Kernel",
        "Format",
        "Mode",
        "Strategy",
        "Batch",
        "Cache",
        "Queued (ms)",
        "Exec (ms)",
        "Total (ms)",
    ]);
    for (kernel, format, mode, ticket) in submitted {
        match ticket.wait() {
            Ok(r) => tab.row([
                kernel.name().to_string(),
                format.as_str().to_string(),
                mode.to_string(),
                r.strategy,
                r.batch_size.to_string(),
                if r.cache_hit { "hit" } else { "miss" }.to_string(),
                format!("{:.3}", r.queued_ms),
                format!("{:.3}", r.exec_ms),
                format!("{:.3}", r.total_ms),
            ]),
            Err(e) => tab.row([
                kernel.name().to_string(),
                format.as_str().to_string(),
                mode.to_string(),
                format!("ERROR: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    let report = svc.shutdown();
    let mut out = format!(
        "kernel service demo on {dataset} x3 ({} nnz each, rank {rank})\n",
        fint(pool[0].nnz() as u64),
    );
    out.push_str(&tab.render());
    out.push_str("\nservice report\n");
    out.push_str(&report.render());
    Ok(out)
}

/// Knobs for [`stress`], bundling what would otherwise be a dozen
/// positional arguments.
#[derive(Debug, Clone)]
pub struct StressOpts {
    /// Registry dataset id used to generate the tensor pool.
    pub dataset: String,
    /// Nonzeros per pool tensor.
    pub nnz: usize,
    /// Pool size (distinct tensors; Zipf popularity ranges over these).
    pub tensors: usize,
    /// Closed-loop phase length.
    pub duration: std::time::Duration,
    /// Closed-loop client workers.
    pub concurrency: usize,
    /// Zipf skew of tensor popularity.
    pub alpha: f64,
    /// Factor rank for Ttm/Mttkrp requests.
    pub rank: usize,
    /// Per-request queue deadline in ms for the closed loop (0 = none).
    pub deadline_ms: u64,
    /// Fail if the closed-loop p99 latency exceeds this many ms.
    pub max_p99_ms: Option<f64>,
    /// Fail if the closed-loop cache hit ratio falls below this.
    pub min_hit_ratio: f64,
    /// Write `BENCH_serve.json` here.
    pub out_json: Option<PathBuf>,
}

/// `stress`: drive the kernel service closed-loop with Zipf-skewed tensor
/// popularity, then probe overload behaviour with an open burst, and
/// write `BENCH_serve.json`. Gates (each a usage error on violation):
/// closed-loop p99 at or under `--max-p99-ms`; cache hit ratio at or over
/// `--min-hit-ratio`; at least one typed queue-full rejection from the
/// overload probe.
pub fn stress(
    opts: &StressOpts,
    serve_cfg: tenbench_serve::ServeConfig,
    sup_cfg: &SupervisorConfig,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(&opts.dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {:?}", opts.dataset)))?;
    if opts.tensors == 0 {
        return Err(CliError::Usage("--tensors must be at least 1".to_string()));
    }
    let pool: Vec<Arc<CooTensor<f32>>> = (0..opts.tensors as u64)
        .map(|i| Arc::new(d.generate_with(opts.nnz, d.default_seed().wrapping_add(i))))
        .collect();

    let svc = tenbench_serve::KernelService::start(
        serve_cfg.clone(),
        Box::new(crate::serve_exec::SupervisedExecutor::new(sup_cfg.clone())),
    );
    let tally = tenbench_serve::closed_loop(
        &svc,
        &pool,
        &tenbench_serve::StressConfig {
            duration: opts.duration,
            concurrency: opts.concurrency,
            zipf_alpha: opts.alpha,
            rank: opts.rank,
            deadline_ms: opts.deadline_ms,
            seed: d.default_seed(),
        },
    );
    // Snapshot the closed-loop phase before the overload burst pollutes
    // the latency distribution; the gates read this report.
    let zipf_report = svc.report();
    let probe = tenbench_serve::overload_probe(&svc, &pool);
    let final_report = svc.shutdown();

    let mut out = format!(
        "serve stress on {} x{} ({} nnz each, alpha {}, {} clients, {:.1}s)\n\n",
        opts.dataset,
        opts.tensors,
        fint(pool[0].nnz() as u64),
        opts.alpha,
        opts.concurrency,
        opts.duration.as_secs_f64(),
    );
    out.push_str("zipf phase (closed loop)\n");
    out.push_str(&format!(
        "  clients         issued {} ok {} rejected {} (full) + {} (deadline), failed {}\n",
        tally.issued, tally.ok, tally.rejected_full, tally.rejected_deadline, tally.failed,
    ));
    out.push_str(&zipf_report.render());
    out.push_str("\noverload probe (open burst, tight deadlines)\n");
    out.push_str(&format!(
        "  submitted {} -> {} queue-full, {} deadline-shed, {} completed, {} failed\n",
        probe.submitted,
        probe.rejected_queue_full,
        probe.rejected_deadline,
        probe.completed,
        probe.failed,
    ));

    if let Some(path) = &opts.out_json {
        let json = format!(
            concat!(
                "{{\n  \"config\": {{\"dataset\": \"{}\", \"nnz\": {}, \"tensors\": {}, ",
                "\"duration_s\": {}, \"concurrency\": {}, \"alpha\": {}, \"rank\": {}, ",
                "\"workers\": {}, \"queue_bound\": {}, \"max_batch\": {}, ",
                "\"cache_bytes\": {}, \"deadline_ms\": {}}},\n",
                "  \"zipf_phase\": {{\"clients\": {{\"issued\": {}, \"ok\": {}, ",
                "\"rejected_full\": {}, \"rejected_deadline\": {}, \"failed\": {}}}, ",
                "\"service\": {}}},\n",
                "  \"overload_probe\": {{\"submitted\": {}, \"rejected_queue_full\": {}, ",
                "\"rejected_deadline\": {}, \"completed\": {}, \"failed\": {}}},\n",
                "  \"final\": {}\n}}\n"
            ),
            opts.dataset,
            opts.nnz,
            opts.tensors,
            obs::json::json_f64(opts.duration.as_secs_f64()),
            opts.concurrency,
            obs::json::json_f64(opts.alpha),
            opts.rank,
            serve_cfg.workers,
            serve_cfg.queue_bound,
            serve_cfg.max_batch,
            serve_cfg.cache_bytes,
            opts.deadline_ms,
            tally.issued,
            tally.ok,
            tally.rejected_full,
            tally.rejected_deadline,
            tally.failed,
            zipf_report.to_json(),
            probe.submitted,
            probe.rejected_queue_full,
            probe.rejected_deadline,
            probe.completed,
            probe.failed,
            final_report.to_json(),
        );
        // Self-check: the artifact must parse before it reaches disk.
        obs::json::Value::parse(&json).map_err(|e| {
            CliError::Usage(format!("internal: emitted BENCH_serve.json invalid: {e}"))
        })?;
        std::fs::write(path, &json)?;
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }

    if tally.ok == 0 {
        return Err(CliError::Usage(
            "stress gate: no request completed in the closed-loop phase".to_string(),
        ));
    }
    let hit = zipf_report.cache.hit_ratio();
    if hit < opts.min_hit_ratio {
        return Err(CliError::Usage(format!(
            "stress gate: cache hit ratio {hit:.3} below the floor of {:.3}",
            opts.min_hit_ratio,
        )));
    }
    out.push_str(&format!(
        "hit-ratio gate: {hit:.3} >= {:.3} ok\n",
        opts.min_hit_ratio
    ));
    if let Some(ceiling) = opts.max_p99_ms {
        if zipf_report.p99_ms > ceiling {
            return Err(CliError::Usage(format!(
                "stress gate: closed-loop p99 {:.2} ms above the ceiling of {ceiling:.2} ms",
                zipf_report.p99_ms,
            )));
        }
        out.push_str(&format!(
            "p99 gate: {:.2} ms <= {ceiling:.2} ms ok\n",
            zipf_report.p99_ms
        ));
    }
    if probe.rejected_queue_full == 0 {
        return Err(CliError::Usage(
            "stress gate: overload probe saw no typed queue-full rejection — admission \
             control did not engage"
                .to_string(),
        ));
    }
    out.push_str(&format!(
        "overload gate: {} typed queue-full rejections ok\n",
        probe.rejected_queue_full
    ));
    Ok(out)
}

/// Extra knobs for the networked stress path ([`stress_net`]).
#[derive(Debug, Clone)]
pub struct NetStressOpts {
    /// Concurrent loopback client connections in the closed-loop phase.
    pub connections: usize,
    /// Fingerprint-partitioned shards behind the listener.
    pub shards: usize,
}

/// Client-side outcome tally for the networked phases. Every issued
/// request lands in exactly one bucket, so `issued == answered() + lost`
/// must balance and `lost == 0` is the no-silent-drop gate: a lost
/// request is one the transport swallowed without a response frame or a
/// typed rejection.
#[derive(Debug, Clone, Copy, Default)]
struct WireTally {
    issued: u64,
    ok: u64,
    rejected_full: u64,
    rejected_deadline: u64,
    shutting_down: u64,
    failed: u64,
    lost: u64,
}

impl WireTally {
    fn absorb(&mut self, o: WireTally) {
        self.issued += o.issued;
        self.ok += o.ok;
        self.rejected_full += o.rejected_full;
        self.rejected_deadline += o.rejected_deadline;
        self.shutting_down += o.shutting_down;
        self.failed += o.failed;
        self.lost += o.lost;
    }

    fn answered(&self) -> u64 {
        self.ok + self.rejected_full + self.rejected_deadline + self.shutting_down + self.failed
    }

    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\"issued\": {}, \"ok\": {}, \"rejected_full\": {}, ",
                "\"rejected_deadline\": {}, \"shutting_down\": {}, ",
                "\"failed\": {}, \"lost\": {}}}"
            ),
            self.issued,
            self.ok,
            self.rejected_full,
            self.rejected_deadline,
            self.shutting_down,
            self.failed,
            self.lost,
        )
    }

    fn render(&self) -> String {
        format!(
            "issued {} ok {} rejected {} (full) + {} (deadline), failed {}, lost {}",
            self.issued,
            self.ok,
            self.rejected_full,
            self.rejected_deadline,
            self.failed,
            self.lost,
        )
    }
}

/// Bucket one typed wire status into the tally; returns `false` when the
/// client should stop (the server is shutting down).
fn classify(tally: &mut WireTally, status: tenbench_serve::WireStatus) -> bool {
    use tenbench_serve::WireStatus;
    match status {
        WireStatus::Ok => tally.ok += 1,
        WireStatus::QueueFull => tally.rejected_full += 1,
        WireStatus::DeadlineExpired => tally.rejected_deadline += 1,
        WireStatus::ShuttingDown => {
            tally.shutting_down += 1;
            return false;
        }
        WireStatus::Failed | WireStatus::WorkerLost | WireStatus::BadRequest => tally.failed += 1,
    }
    true
}

/// `stress --net`: the networked variant of [`stress`]. Starts the TCP
/// tier ([`tenbench_serve::NetServer`]) on loopback with
/// fingerprint-partitioned shards, drives it closed-loop from
/// `net.connections` concurrent client connections — Zipf-skewed tensor
/// popularity, tensors shipped as pre-serialized `TNB2` bytes inside
/// `TNF1` frames — then fires an overload burst of simultaneous
/// short-deadline connections whose in-flight count dwarfs the shards'
/// queue capacity. Latency is measured client-side around the socket
/// round trip and merged across workers, so the reported p50/p90/p99 is
/// genuinely wire-level. Gates (each a usage error on violation): at
/// least one completion; zero lost requests (every request gets a
/// response frame or a typed rejection); zero server-side protocol
/// errors; aggregate cache hit ratio at or over `--min-hit-ratio`; wire
/// p99 at or under `--max-p99-ms`; at least one typed queue-full
/// rejection in the burst.
pub fn stress_net(
    opts: &StressOpts,
    net: &NetStressOpts,
    serve_cfg: tenbench_serve::ServeConfig,
    sup_cfg: &SupervisorConfig,
) -> CliResult<String> {
    let d = tenbench_gen::registry::find(&opts.dataset)
        .ok_or_else(|| CliError::Usage(format!("unknown dataset id {:?}", opts.dataset)))?;
    if opts.tensors == 0 {
        return Err(CliError::Usage("--tensors must be at least 1".to_string()));
    }
    if net.connections == 0 {
        return Err(CliError::Usage(
            "--connections must be at least 1".to_string(),
        ));
    }
    let seed0 = d.default_seed();
    let pool: Vec<Arc<CooTensor<f32>>> = (0..opts.tensors as u64)
        .map(|i| Arc::new(d.generate_with(opts.nnz, seed0.wrapping_add(i))))
        .collect();
    // Serialize each tensor once; every request reuses the TNB2 bytes.
    let blobs: Vec<Vec<u8>> = pool
        .iter()
        .map(|t| {
            let mut buf = Vec::new();
            tenbench_io::bin::write_bin(t.as_ref(), &mut buf)?;
            Ok::<_, tenbench_io::IoError>(buf)
        })
        .collect::<Result<_, _>>()?;

    let net_cfg = tenbench_serve::NetConfig {
        shards: net.shards.max(1),
        serve: serve_cfg.clone(),
        ..tenbench_serve::NetConfig::default()
    };
    let server = tenbench_serve::NetServer::start(net_cfg.clone(), "127.0.0.1:0", || {
        Box::new(crate::serve_exec::SupervisedExecutor::new(sup_cfg.clone()))
    })?;
    let addr = server.addr();

    // Closed-loop Zipf phase: one request in flight per connection.
    let zipf = ZipfSampler::new(pool.len() as u64, opts.alpha);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut tally = WireTally::default();
    let mut wire_hist = obs::LogHistogram::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..net.connections)
            .map(|w| {
                let zipf = &zipf;
                let stop = &stop;
                let pool = &pool;
                let blobs = &blobs;
                s.spawn(move || {
                    let mut tally = WireTally::default();
                    let mut hist = obs::LogHistogram::new();
                    let mut client = match tenbench_serve::NetClient::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            // A refused loopback connect is a lost client,
                            // not a typed answer — the gate must see it.
                            tally.lost += 1;
                            return (tally, hist);
                        }
                    };
                    let mut rng = StdRng::seed_from_u64(seed0.wrapping_add(w as u64));
                    let mut turn = w;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let idx = zipf.sample_index(&mut rng) as usize;
                        let kernel = Kernel::ALL[turn % Kernel::ALL.len()];
                        let format = if turn % 2 == 0 {
                            tenbench_serve::FormatKind::Hicoo
                        } else {
                            tenbench_serve::FormatKind::Coo
                        };
                        let mode = (turn % pool[idx].order()) as u8;
                        turn += 1;
                        tally.issued += 1;
                        let req = tenbench_serve::WireRequest {
                            kernel,
                            format,
                            mode,
                            rank: opts.rank.min(u16::MAX as usize) as u16,
                            deadline_ms: opts.deadline_ms.min(u64::from(u32::MAX)) as u32,
                        };
                        let t0 = Instant::now();
                        match client.request(&req, &blobs[idx]) {
                            Ok(resp) => {
                                if resp.status == tenbench_serve::WireStatus::Ok {
                                    hist.record(t0.elapsed().as_secs_f64() * 1e3);
                                }
                                if !classify(&mut tally, resp.status) {
                                    break;
                                }
                            }
                            Err(_) => {
                                tally.lost += 1;
                                break;
                            }
                        }
                    }
                    (tally, hist)
                })
            })
            .collect();
        std::thread::sleep(opts.duration);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            let (t, hist) = h.join().expect("net stress client");
            tally.absorb(t);
            wire_hist.merge(&hist);
        }
    });

    // Overload burst: enough simultaneous one-in-flight connections that
    // the in-flight count dwarfs one shard's queue capacity. Every burst
    // request targets the same shard (the client computes the same
    // fingerprint % shards routing the server uses), and none carries a
    // deadline — deadline shedding drains a full queue almost as fast as
    // it fills, so an undeadlined backlog is what makes the bound itself
    // bind. Admission control must answer every request — a typed
    // QueueFull, never silence.
    let hot: Vec<usize> = {
        let target = pool[0].fingerprint() % net_cfg.shards as u64;
        (0..pool.len())
            .filter(|&i| pool[i].fingerprint() % net_cfg.shards as u64 == target)
            .collect()
    };
    let burst_conns = (net_cfg.shards * serve_cfg.queue_bound * 2 + 16).max(net.connections);
    let per_conn = 3usize;
    let barrier = std::sync::Barrier::new(burst_conns);
    let mut burst = WireTally::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..burst_conns)
            .map(|w| {
                let barrier = &barrier;
                let pool = &pool;
                let blobs = &blobs;
                let hot = &hot;
                s.spawn(move || {
                    let mut tally = WireTally::default();
                    let mut client = match tenbench_serve::NetClient::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            tally.lost += 1;
                            barrier.wait();
                            return tally;
                        }
                    };
                    barrier.wait();
                    for i in 0..per_conn {
                        let idx = hot[(w + i) % hot.len()];
                        tally.issued += 1;
                        let req = tenbench_serve::WireRequest {
                            kernel: Kernel::ALL[(w + i) % Kernel::ALL.len()],
                            format: tenbench_serve::FormatKind::Hicoo,
                            mode: ((w + i) % pool[idx].order()) as u8,
                            // A wide rank makes each admitted execution
                            // slow enough that the shard cannot drain the
                            // queue as fast as 200 connections refill it.
                            rank: 256,
                            deadline_ms: 0,
                        };
                        match client.request(&req, &blobs[idx]) {
                            Ok(resp) => {
                                if !classify(&mut tally, resp.status) {
                                    break;
                                }
                            }
                            Err(_) => {
                                tally.lost += 1;
                                break;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            burst.absorb(h.join().expect("net burst client"));
        }
    });

    let report = server.shutdown();
    let cache = report.cache();
    let wire_p50 = wire_hist.percentile(50.0);
    let wire_p90 = wire_hist.percentile(90.0);
    let wire_p99 = wire_hist.percentile(99.0);

    for (name, t) in [("closed-loop", &tally), ("burst", &burst)] {
        if t.issued != t.answered() + t.lost {
            return Err(CliError::Usage(format!(
                "internal: {name} tally does not balance: {t:?}"
            )));
        }
    }

    let mut out = format!(
        "net stress on {} x{} ({} nnz each, alpha {}, {} shards, {:.1}s)\n\n",
        opts.dataset,
        opts.tensors,
        fint(pool[0].nnz() as u64),
        opts.alpha,
        net_cfg.shards,
        opts.duration.as_secs_f64(),
    );
    out.push_str(&format!(
        "zipf phase (closed loop, {} connections)\n  clients         {}\n  wire latency    p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms (n={})\n",
        net.connections,
        tally.render(),
        wire_p50,
        wire_p90,
        wire_p99,
        wire_hist.count(),
    ));
    out.push_str(&format!(
        "overload burst ({} connections, {} requests each, single-shard, no deadline)\n  clients         {}\n",
        burst_conns,
        per_conn,
        burst.render(),
    ));
    out.push_str("\nserver report\n");
    out.push_str(&format!(
        "  wire            {} connections, {} requests, {} responses, {} protocol errors\n  bytes           {} in, {} out\n  cache           {} hits / {} misses / {} collisions (hit ratio {:.3}), {} entries, {} evictions\n",
        report.connections,
        report.requests,
        report.responses,
        report.protocol_errors,
        fint(report.bytes_in),
        fint(report.bytes_out),
        cache.hits,
        cache.misses,
        cache.collisions,
        cache.hit_ratio(),
        cache.entries,
        cache.evictions,
    ));
    for (i, shard) in report.shards.iter().enumerate() {
        out.push_str(&format!(
            "  shard {i}         {} completed, {} queue-full, {} deadline-shed, p99 {:.3} ms\n",
            shard.completed, shard.rejected_queue_full, shard.rejected_deadline, shard.p99_ms,
        ));
    }

    if let Some(path) = &opts.out_json {
        let json = format!(
            concat!(
                "{{\n  \"config\": {{\"dataset\": \"{}\", \"nnz\": {}, \"tensors\": {}, ",
                "\"duration_s\": {}, \"connections\": {}, \"shards\": {}, \"alpha\": {}, ",
                "\"rank\": {}, \"workers\": {}, \"queue_bound\": {}, \"max_batch\": {}, ",
                "\"cache_bytes\": {}, \"deadline_ms\": {}}},\n",
                "  \"zipf_phase\": {{\"clients\": {}, ",
                "\"wire_latency\": {{\"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, ",
                "\"hist\": {}}}}},\n",
                "  \"overload_burst\": {{\"connections\": {}, \"per_connection\": {}, ",
                "\"clients\": {}}},\n",
                "  \"final\": {}\n}}\n"
            ),
            opts.dataset,
            opts.nnz,
            opts.tensors,
            obs::json::json_f64(opts.duration.as_secs_f64()),
            net.connections,
            net_cfg.shards,
            obs::json::json_f64(opts.alpha),
            opts.rank,
            serve_cfg.workers,
            serve_cfg.queue_bound,
            serve_cfg.max_batch,
            serve_cfg.cache_bytes,
            opts.deadline_ms,
            tally.to_json(),
            obs::json::json_f64(wire_p50),
            obs::json::json_f64(wire_p90),
            obs::json::json_f64(wire_p99),
            wire_hist.to_json(),
            burst_conns,
            per_conn,
            burst.to_json(),
            report.to_json(),
        );
        // Self-check: the artifact must parse before it reaches disk.
        obs::json::Value::parse(&json).map_err(|e| {
            CliError::Usage(format!("internal: emitted BENCH_serve.json invalid: {e}"))
        })?;
        std::fs::write(path, &json)?;
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }

    if tally.ok == 0 {
        return Err(CliError::Usage(
            "net stress gate: no request completed in the closed-loop phase".to_string(),
        ));
    }
    let lost = tally.lost + burst.lost;
    if lost > 0 {
        return Err(CliError::Usage(format!(
            "net stress gate: {lost} requests lost without a response frame or typed rejection"
        )));
    }
    out.push_str("\nlost gate: every request answered (0 lost) ok\n");
    if report.protocol_errors > 0 {
        return Err(CliError::Usage(format!(
            "net stress gate: {} protocol errors on well-formed traffic",
            report.protocol_errors,
        )));
    }
    let hit = cache.hit_ratio();
    if hit < opts.min_hit_ratio {
        return Err(CliError::Usage(format!(
            "net stress gate: cache hit ratio {hit:.3} below the floor of {:.3}",
            opts.min_hit_ratio,
        )));
    }
    out.push_str(&format!(
        "hit-ratio gate: {hit:.3} >= {:.3} ok\n",
        opts.min_hit_ratio
    ));
    if let Some(ceiling) = opts.max_p99_ms {
        if wire_p99 > ceiling {
            return Err(CliError::Usage(format!(
                "net stress gate: wire p99 {wire_p99:.2} ms above the ceiling of {ceiling:.2} ms"
            )));
        }
        out.push_str(&format!(
            "p99 gate: {wire_p99:.2} ms <= {ceiling:.2} ms ok\n"
        ));
    }
    if burst.rejected_full == 0 {
        return Err(CliError::Usage(
            "net stress gate: overload burst saw no typed queue-full rejection — admission \
             control did not engage"
                .to_string(),
        ));
    }
    out.push_str(&format!(
        "overload gate: {} typed queue-full rejections ok\n",
        burst.rejected_full
    ));
    Ok(out)
}

/// Knobs for [`chaos`] beyond the harness's own [`crate::chaos::ChaosConfig`].
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// The scenario configuration.
    pub cfg: crate::chaos::ChaosConfig,
    /// Write `BENCH_chaos.json` here.
    pub out_json: Option<PathBuf>,
    /// Read gate floors (`max_lost_jobs` / `min_recoveries`) from this
    /// `ci/chaos-floor.txt`-style file.
    pub floors: Option<PathBuf>,
    /// Write flight-recorder dumps here as faults fire, and gate on one
    /// dump per observed fault kind at the end of the run.
    pub flight_dump_dir: Option<PathBuf>,
}

/// Gate floors for a chaos run: the CI contract.
#[derive(Debug, Clone, Copy)]
struct ChaosFloors {
    /// Admitted jobs allowed to vanish without a terminal state (0).
    max_lost_jobs: u64,
    /// Minimum checkpoint-resume recoveries, proving the injector fired
    /// and recovery worked (not merely that nothing went wrong).
    min_recoveries: u64,
}

impl Default for ChaosFloors {
    fn default() -> Self {
        ChaosFloors {
            max_lost_jobs: 0,
            min_recoveries: 1,
        }
    }
}

fn parse_chaos_floors(path: &Path) -> CliResult<ChaosFloors> {
    let text = std::fs::read_to_string(path)?;
    let mut floors = ChaosFloors::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            CliError::Usage(format!(
                "{}:{}: {what}: {raw:?}",
                path.display(),
                lineno + 1
            ))
        };
        let mut it = line.split_whitespace();
        let (Some(key), Some(val)) = (it.next(), it.next()) else {
            return Err(bad("expected `<key> <value>`"));
        };
        let val: u64 = val.parse().map_err(|_| bad("bad value"))?;
        match key {
            "max_lost_jobs" => floors.max_lost_jobs = val,
            "min_recoveries" => floors.min_recoveries = val,
            _ => return Err(bad("unknown chaos floor key")),
        }
    }
    Ok(floors)
}

/// `chaos`: run the fault-injection harness against a live service and
/// apply the robustness gates (each a usage error on violation): zero lost
/// jobs beyond the floor, at least `min_recoveries` checkpoint-resume
/// recoveries, every injected fault kind exercised, at least one typed
/// queue-full rejection from the job burst, bitwise CP-ALS reference
/// match for every completed decomposition, and no fit-residual increase
/// across a resume boundary.
pub fn chaos(opts: &ChaosOpts) -> CliResult<String> {
    let floors = match &opts.floors {
        Some(path) => parse_chaos_floors(path)?,
        None => ChaosFloors::default(),
    };
    if let Some(dir) = &opts.flight_dump_dir {
        obs::flight::set_dump_dir(Some(dir.clone()))
            .map_err(|e| CliError::Usage(format!("--flight-dump-dir {}: {e}", dir.display())))?;
    }

    // Injected panics are contained by the supervisor's catch_unwind and
    // surface as typed step verdicts; silence their default stderr spew so
    // the report stays readable. Panics on any other thread still print.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::thread::current().name() != Some("tenbench-supervised") {
            prev_hook(info);
        }
    }));
    let report = crate::chaos::run_chaos(&opts.cfg);
    let _ = std::panic::take_hook();

    let mut out = format!(
        "chaos run: seed {}, {} jobs + kernel traffic ({} clients, {:.1}s, alpha {}), fault rate {}\n\n",
        opts.cfg.seed,
        opts.cfg.jobs,
        opts.cfg.clients,
        opts.cfg.duration.as_secs_f64(),
        opts.cfg.alpha,
        opts.cfg.fault_rate,
    );
    let mut table = TextTable::new(vec![
        "job", "kind", "terminal", "iters", "fit", "recov", "resumes",
    ]);
    for l in &report.job_lines {
        table.row(vec![
            l.job_id.to_string(),
            l.kind.to_string(),
            l.terminal.clone(),
            l.iterations.to_string(),
            if l.fit.is_finite() {
                format!("{:.6}", l.fit)
            } else {
                "-".to_string()
            },
            l.recoveries.to_string(),
            l.resume_boundaries.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\njobs: {} admitted, {} completed, {} failed (typed), {} lost, {} burst-rejected (typed)\n",
        report.admitted, report.completed, report.failed, report.lost, report.burst_rejected,
    ));
    out.push_str(&format!(
        "faults injected: {} panics, {} hangs, {} checkpoint corruptions\n",
        report.injected_panics, report.injected_hangs, report.injected_corruptions,
    ));
    out.push_str(&format!(
        "recovery: {} total ({} checkpoint resumes, {} reinits), {} corrupt checkpoints detected, {} checkpoints written\n",
        report.recoveries, report.resumes, report.reinits, report.corrupt_detected,
        report.checkpoints,
    ));
    out.push_str(&format!(
        "kernel traffic: {} issued, {} ok, {} rejected (full), {} shed (deadline), {} failed; probe: {}/{} queue-full\n",
        report.kernel.issued,
        report.kernel.ok,
        report.kernel.rejected_full,
        report.kernel.rejected_deadline,
        report.kernel.failed,
        report.kernel_probe.rejected_queue_full,
        report.kernel_probe.submitted,
    ));
    out.push_str(&format!(
        "determinism: {}/{} completed cp_als runs bitwise-match the uninterrupted reference, {} resume boundaries, {} residual violations\n",
        report.cp_checked - report.cp_mismatched,
        report.cp_checked,
        report.resume_boundaries,
        report.residual_violations,
    ));
    out.push_str("obs counters:\n");
    for (name, delta) in &report.counters {
        out.push_str(&format!("  {name:<26} {delta}\n"));
    }

    if let Some(path) = &opts.out_json {
        let json = format!(
            concat!(
                "{{\n  \"config\": {{\"seed\": {}, \"jobs\": {}, \"duration_s\": {}, ",
                "\"clients\": {}, \"tensors\": {}, \"dim\": {}, \"nnz\": {}, ",
                "\"fault_rate\": {}, \"max_step_seconds\": {}}},\n",
                "  \"report\": {}\n}}\n"
            ),
            opts.cfg.seed,
            opts.cfg.jobs,
            obs::json::json_f64(opts.cfg.duration.as_secs_f64()),
            opts.cfg.clients,
            opts.cfg.tensors,
            opts.cfg.dim,
            opts.cfg.nnz,
            obs::json::json_f64(opts.cfg.fault_rate),
            obs::json::json_f64(opts.cfg.max_step_seconds),
            report.to_json(),
        );
        obs::json::Value::parse(&json).map_err(|e| {
            CliError::Usage(format!("internal: emitted BENCH_chaos.json invalid: {e}"))
        })?;
        std::fs::write(path, &json)?;
        out.push_str(&format!("\nwrote {}\n", path.display()));
    }

    // The gates. Render the full report above first so a violated gate
    // still leaves the evidence on screen.
    if report.lost > floors.max_lost_jobs {
        return Err(CliError::Usage(format!(
            "chaos gate: {} jobs lost without a terminal state (floor {})",
            report.lost, floors.max_lost_jobs,
        )));
    }
    out.push_str(&format!(
        "lost-jobs gate: {} <= {} ok\n",
        report.lost, floors.max_lost_jobs
    ));
    if report.resumes < floors.min_recoveries {
        return Err(CliError::Usage(format!(
            "chaos gate: only {} checkpoint-resume recoveries (floor {}) — the injector \
             or the resume path is dead",
            report.resumes, floors.min_recoveries,
        )));
    }
    out.push_str(&format!(
        "recovery gate: {} resumes >= {} ok\n",
        report.resumes, floors.min_recoveries
    ));
    if report.injected_panics == 0 || report.injected_hangs == 0 || report.injected_corruptions == 0
    {
        return Err(CliError::Usage(format!(
            "chaos gate: fault mix incomplete ({} panics, {} hangs, {} corruptions) — \
             raise --jobs, --max-iters, or --fault-rate",
            report.injected_panics, report.injected_hangs, report.injected_corruptions,
        )));
    }
    out.push_str("fault-mix gate: panic + hang + corruption all injected ok\n");
    if report.burst_rejected == 0 {
        return Err(CliError::Usage(
            "chaos gate: the job-queue burst saw no typed queue-full rejection — admission \
             control did not engage"
                .to_string(),
        ));
    }
    out.push_str(&format!(
        "burst gate: {} typed queue-full rejections ok\n",
        report.burst_rejected
    ));
    if report.cp_mismatched > 0 {
        return Err(CliError::Usage(format!(
            "chaos gate: {}/{} completed cp_als jobs do not bitwise-match their \
             uninterrupted reference",
            report.cp_mismatched, report.cp_checked,
        )));
    }
    out.push_str(&format!(
        "determinism gate: {}/{} cp_als reference matches ok\n",
        report.cp_checked, report.cp_checked
    ));
    if report.residual_violations > 0 {
        return Err(CliError::Usage(format!(
            "chaos gate: {} fit-residual increases across resume boundaries",
            report.residual_violations,
        )));
    }
    out.push_str("residual gate: non-increasing across every resume boundary ok\n");
    // Flight-recorder gate: every fault kind that actually fired must have
    // produced at least one dump of the matching reason. Hangs surface as
    // watchdog timeouts; corruptions dump at detection time (the resume
    // walk), so that kind is keyed on detections, not injections.
    if let Some(dir) = &opts.flight_dump_dir {
        let count_kind = |reason: &str| -> CliResult<usize> {
            let suffix = format!("-{reason}.json");
            let mut n = 0;
            for entry in std::fs::read_dir(dir)? {
                let name = entry?.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("flight-") && name.ends_with(&suffix) {
                    n += 1;
                }
            }
            Ok(n)
        };
        for (reason, fired) in [
            ("panic", report.injected_panics),
            ("timeout", report.injected_hangs),
            ("ckpt_corrupt", report.corrupt_detected),
        ] {
            let dumps = count_kind(reason)?;
            if fired > 0 && dumps == 0 {
                return Err(CliError::Usage(format!(
                    "chaos gate: {fired} {reason} faults observed but no \
                     flight-*-{reason}.json dump in {}",
                    dir.display(),
                )));
            }
            out.push_str(&format!(
                "flight-dump gate: {reason} — {dumps} dumps for {fired} faults ok\n"
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![16, 16, 16]),
            (0..200u32)
                .map(|i| (vec![i % 16, (i / 16) % 16, (i * 7) % 16], i as f32 + 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn stats_report_mentions_key_numbers() {
        let r = stats_report(&tiny(), 3);
        assert!(r.contains("16x16x16"));
        assert!(r.contains("HiCOO (B = 8)"));
        assert!(r.contains("storage"));
    }

    #[test]
    fn run_kernel_on_every_kernel_and_format() {
        let x = tiny();
        for k in ["tew", "ts", "ttv", "ttm", "mttkrp"] {
            for f in ["coo", "hicoo"] {
                let r = run_kernel_on(&x, k, 0, 4, f, 3, 1, "atomic").unwrap();
                assert!(r.contains("GFLOPS"), "{k}/{f}: {r}");
            }
        }
    }

    #[test]
    fn run_kernel_on_scheduled_strategy() {
        let x = tiny();
        for k in ["ttv", "ttm", "mttkrp"] {
            for f in ["coo", "hicoo"] {
                let r = run_kernel_on(&x, k, 0, 4, f, 3, 1, "scheduled").unwrap();
                assert!(r.contains("GFLOPS"), "{k}/{f}: {r}");
            }
        }
        for s in ["seq", "privatized", "row_locked"] {
            let r = run_kernel_on(&x, "mttkrp", 1, 4, "coo", 3, 1, s).unwrap();
            assert!(r.contains("GFLOPS"), "{s}: {r}");
        }
    }

    #[test]
    fn run_kernel_rejects_bad_input() {
        let x = tiny();
        assert!(matches!(
            run_kernel_on(&x, "nope", 0, 4, "coo", 3, 1, "atomic"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_kernel_on(&x, "ttv", 0, 4, "csr", 3, 1, "atomic"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_kernel_on(&x, "ttv", 9, 4, "coo", 3, 1, "atomic"),
            Err(CliError::Tensor(_))
        ));
        assert!(matches!(
            run_kernel_on(&x, "mttkrp", 0, 4, "coo", 3, 1, "speculative"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn ablate_mttkrp_writes_json() {
        let dir = std::env::temp_dir().join("tenbench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("ablate.json");
        let cfg = SupervisorConfig::default();
        let r = ablate_mttkrp("s4", 3_000, 4, 3, 1, &[], Some(&json), &cfg).unwrap();
        assert!(r.contains("hicoo/scheduled"), "{r}");
        assert!(r.contains("Status"), "{r}");
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"speedup_vs_atomic\""));
        assert!(body.contains("coo/privatized"));
        assert!(body.contains("\"status\": \"ok\""));
        assert!(matches!(
            ablate_mttkrp("zz99", 1_000, 4, 3, 1, &[], None, &cfg),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn ablate_simd_writes_json_and_gates() {
        let dir = std::env::temp_dir().join("tenbench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("ablate_simd.json");
        // A floor of 0.0 always passes: this exercises the gate plumbing
        // without asserting a speedup a 1-core CI box cannot promise.
        let r = ablate_simd("s4", 3_000, &[4], 3, 1, Some(&json), Some(0.0)).unwrap();
        assert!(r.contains("Speedup"), "{r}");
        assert!(r.contains("simd gate: mttkrp/HiCOO @ R=4"), "{r}");
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(body.contains("\"simd_speedup\""), "{body}");
        assert!(body.contains("\"format\": \"VbHiCOO\""), "{body}");
        assert!(body.contains("\"avx2\""), "{body}");
        assert!(body.contains("\"host_cpus\""), "{body}");
        // An impossible floor fails as a usage error (the CI gate path).
        assert!(matches!(
            ablate_simd("s4", 3_000, &[4], 3, 1, None, Some(1.0e9)),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            ablate_simd("zz99", 1_000, &[4], 3, 1, None, None),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            ablate_simd("s4", 1_000, &[], 3, 1, None, None),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn supervised_kernel_runs_report_ok() {
        let x = tiny();
        let cfg = SupervisorConfig::default();
        for k in ["tew", "ts", "ttv", "ttm", "mttkrp"] {
            for f in ["coo", "hicoo"] {
                let r = run_kernel_supervised_on(&x, k, 0, 4, f, 3, 1, "scheduled", &cfg).unwrap();
                assert!(r.contains("status ok"), "{k}/{f}: {r}");
                assert!(r.contains("GFLOPS"), "{k}/{f}: {r}");
                assert!(r.contains("\"status\": \"ok\""), "{k}/{f}: {r}");
            }
        }
    }

    #[test]
    fn supervised_kernel_times_out_cleanly() {
        // A cap short enough that the watchdog fires during the attempt on
        // any machine is impractical for these tiny kernels; instead check
        // the flag plumbing accepts a generous cap and still succeeds.
        let x = tiny();
        let cfg = SupervisorConfig::with_max_seconds(30.0);
        let r = run_kernel_supervised_on(&x, "mttkrp", 0, 4, "coo", 3, 1, "atomic", &cfg).unwrap();
        assert!(r.contains("status ok"), "{r}");
        assert!(matches!(
            run_kernel_supervised_on(&x, "nope", 0, 4, "coo", 3, 1, "atomic", &cfg),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn verify_passes_on_clean_tensor_and_fails_on_corrupt_file() {
        let dir = std::env::temp_dir().join("tenbench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verify.tnb");
        save_tensor(&tiny(), &path).unwrap();
        let cfg = SupervisorConfig::default();
        let r = verify(&path, 3, 4, &cfg).unwrap();
        assert!(r.contains("VERIFY PASS"), "{r}");
        assert!(r.contains("coo structure: ok"), "{r}");
        assert!(
            r.contains("mttkrp hicoo vs sequential reference: ok"),
            "{r}"
        );

        // Flip one payload byte: the hardened reader must reject the file,
        // so verify reports an error instead of validating garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        let bad = dir.join("verify-bad.tnb");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(matches!(verify(&bad, 3, 4, &cfg), Err(CliError::Io(_))));
    }

    #[test]
    fn convert_and_stats_round_trip_through_disk() {
        let dir = std::env::temp_dir().join("tenbench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("t.tns");
        let tnb = dir.join("t.tnb");
        save_tensor(&tiny(), &tns).unwrap();
        let msg = convert(&tns, &tnb).unwrap();
        assert!(msg.contains("converted"));
        let back = load_tensor(&tnb).unwrap();
        assert_eq!(back.nnz(), tiny().nnz());
        let s = stats(&tnb, 4).unwrap();
        assert!(s.contains("nnz 200"));
    }

    #[test]
    fn generate_writes_a_loadable_file() {
        let dir = std::env::temp_dir().join("tenbench-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("gen.tnb");
        let msg = generate("pl", &[2048, 2048, 32], 3_000, 7, &out).unwrap();
        assert!(msg.contains("3,000"));
        let t = load_tensor(&out).unwrap();
        assert_eq!(t.nnz(), 3_000);
        assert!(matches!(
            generate("weird", &[4, 4], 10, 1, &out),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unsupported_extensions_are_rejected() {
        assert!(matches!(
            load_tensor(Path::new("/nonexistent/file.xyz")),
            Err(CliError::Io(_)) | Err(CliError::Usage(_))
        ));
        let r = save_tensor(&tiny(), Path::new("/tmp/tenbench-cli-test/x.csv"));
        assert!(matches!(r, Err(CliError::Usage(_))));
    }
}
