//! The measured CPU suite (Figures 4–5) and simulated GPU suite (Figures
//! 6–7): five kernels x two formats per tensor, with per-tensor Roofline
//! bounds.
//!
//! Measurement methodology follows the paper (§5.1.2): kernels run five
//! times and report the average; Ttv, Ttm, and Mttkrp are further averaged
//! over all tensor modes; `R = 16` reflects low-rank tensor methods; the
//! HiCOO block size is 128 (`block_bits = 7`); pre-processing (sorting,
//! fiber partitions, format conversion, output allocation plans) is done
//! once outside the timed region.

use std::sync::Arc;
use std::time::Instant;

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::{GHicooTensor, HicooTensor, VbHicooTensor};
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp, Kernel};
use tenbench_core::par::Schedule;
use tenbench_core::simd::KernelBackend;
use tenbench_gen::TensorStats;
use tenbench_gpusim::device::DeviceSpec;
use tenbench_gpusim::kernels as gpuk;
use tenbench_obs as obs;
use tenbench_roofline::bounds;
use tenbench_roofline::model::{Ceiling, Roofline};

use crate::supervisor::{
    mttkrp_reference_digest, supervise, validate_matrix, RunStatus, SupervisorConfig, Trial,
};

/// Rank used for Ttm and Mttkrp, as in the paper.
pub const DEFAULT_RANK: usize = 16;
/// HiCOO block bits (B = 128), as in the paper.
pub const DEFAULT_BLOCK_BITS: u8 = 7;
/// Repetitions per measurement, as in the paper.
pub const DEFAULT_REPS: usize = 5;

/// The machine a suite run is measured on or modeled for.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Display name.
    pub name: String,
    /// Obtainable (ERT-DRAM) bandwidth in GB/s, for the Roofline bounds.
    pub ert_dram_gbs: f64,
    /// Peak single-precision GFLOPS.
    pub peak_gflops: f64,
}

impl MachineModel {
    /// Model for a simulated GPU.
    pub fn from_device(dev: &DeviceSpec) -> Self {
        MachineModel {
            name: dev.name.to_string(),
            ert_dram_gbs: dev.dram_bw_gbs,
            peak_gflops: dev.peak_sp_gflops,
        }
    }

    /// The single-ceiling Roofline used to annotate measured cells.
    pub fn roofline(&self) -> Roofline {
        Roofline {
            name: self.name.clone(),
            peak_gflops: self.peak_gflops,
            ceilings: vec![Ceiling {
                name: "ERT-DRAM".into(),
                gbs: self.ert_dram_gbs,
            }],
        }
    }
}

/// One kernel x format measurement on one tensor.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Which kernel.
    pub kernel: Kernel,
    /// "COO" or "HiCOO".
    pub format: &'static str,
    /// Average kernel time in seconds (measured or modeled).
    pub time_s: f64,
    /// Achieved GFLOPS (Table 1 work over time).
    pub gflops: f64,
    /// Exact operational intensity used for the bound.
    pub oi: f64,
    /// Roofline performance bound in GFLOPS.
    pub bound_gflops: f64,
    /// Arithmetic intensity from the instrumented FLOP/byte counters
    /// charged by the kernel itself (per-call delta over the timed cell).
    pub ai_measured: f64,
    /// Which roof binds at the measured AI: `"memory"` or `"compute"`.
    pub bound_by: &'static str,
    /// Achieved GFLOPS as a percentage of the binding roof at the
    /// measured AI.
    pub pct_of_roof: f64,
}

impl KernelResult {
    /// Performance efficiency vs the Roofline bound (can exceed 1 for
    /// cache-resident tensors).
    pub fn efficiency(&self) -> f64 {
        if self.bound_gflops > 0.0 {
            self.gflops / self.bound_gflops
        } else {
            0.0
        }
    }
}

/// Average wall time of `f` over `reps` runs, with inner batching for
/// sub-millisecond kernels so timer resolution does not dominate.
pub fn time_avg<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // Calibrate: one untimed warmup that also sizes the inner batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64();
    let batch = if once < 1e-3 {
        ((1e-3 / once.max(1e-9)).ceil() as usize).clamp(1, 10_000)
    } else {
        1
    };
    let mut total = 0.0;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += t.elapsed().as_secs_f64() / batch as f64;
    }
    total / reps.max(1) as f64
}

/// Best-of-`reps` seconds per call, with the same calibration and batching
/// as [`time_avg`]. Scheduler jitter only ever *adds* time, so the minimum
/// of each side is the noise-robust estimator for paired A/B comparisons —
/// the SIMD ablation gates on a scalar/SIMD ratio, which stays stable under
/// min-timing even on small shared hosts where the mean wobbles by ±10%.
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64();
    let batch = if once < 1e-3 {
        ((1e-3 / once.max(1e-9)).ceil() as usize).clamp(1, 10_000)
    } else {
        1
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    best
}

/// One timed cell with its instrumented-counter deltas: the average call
/// time plus the FLOPs, cost-model bytes, and kernel entries charged while
/// the cell ran. Per-call figures divide by `calls`, which includes the
/// calibration warmup [`time_avg`] performs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellMeasure {
    /// Average seconds per call (see [`time_avg`]).
    pub secs: f64,
    /// `kernel.flops` counter delta across the whole cell.
    pub flops: u64,
    /// `kernel.bytes` counter delta across the whole cell.
    pub bytes: u64,
    /// `kernel.calls` counter delta across the whole cell.
    pub calls: u64,
}

impl CellMeasure {
    /// Fold another cell into this one (counters add; times add — divide
    /// `secs` yourself when averaging over modes).
    pub fn accumulate(&mut self, other: &CellMeasure) {
        self.secs += other.secs;
        self.flops += other.flops;
        self.bytes += other.bytes;
        self.calls += other.calls;
    }

    /// Place this measurement against a roofline using the per-call
    /// counter deltas (the achieved-GFLOPS / AI / %-of-roof annotation).
    pub fn annotate(&self, roof: &Roofline) -> tenbench_roofline::model::Achieved {
        let calls = self.calls.max(1);
        roof.annotate(self.flops / calls, self.bytes / calls, self.secs)
    }
}

/// [`time_avg`] with counter accounting: enables the obs counters for the
/// duration and reports the `kernel.flops` / `kernel.bytes` /
/// `kernel.calls` deltas alongside the average call time. The kernels
/// charge their Table 1 costs on entry, so the deltas are the *measured*
/// work of exactly the calls this cell made (plus any concurrent charges —
/// the counters are process-wide).
pub fn measure_cell<F: FnMut()>(reps: usize, f: F) -> CellMeasure {
    use obs::counters as ctr;
    let _scope = ctr::counters_scope();
    let f0 = ctr::FLOPS.get();
    let b0 = ctr::BYTES.get();
    let c0 = ctr::KERNEL_CALLS.get();
    let secs = time_avg(reps, f);
    CellMeasure {
        secs,
        flops: ctr::FLOPS.get().wrapping_sub(f0),
        bytes: ctr::BYTES.get().wrapping_sub(b0),
        calls: ctr::KERNEL_CALLS.get().wrapping_sub(c0),
    }
}

/// [`measure_cell`] timing with [`time_min`] instead of [`time_avg`] — used
/// by the SIMD ablation, whose regression gate is a scalar/SIMD time ratio.
pub fn measure_cell_min<F: FnMut()>(reps: usize, f: F) -> CellMeasure {
    use obs::counters as ctr;
    let _scope = ctr::counters_scope();
    let f0 = ctr::FLOPS.get();
    let b0 = ctr::BYTES.get();
    let c0 = ctr::KERNEL_CALLS.get();
    let secs = time_min(reps, f);
    CellMeasure {
        secs,
        flops: ctr::FLOPS.get().wrapping_sub(f0),
        bytes: ctr::BYTES.get().wrapping_sub(b0),
        calls: ctr::KERNEL_CALLS.get().wrapping_sub(c0),
    }
}

/// Build the per-mode factor matrices used by Ttm and Mttkrp.
pub fn make_factors(x: &CooTensor<f32>, r: usize) -> Vec<DenseMatrix<f32>> {
    (0..x.order())
        .map(|m| {
            DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                (((i * 31 + j * 17 + m * 7) % 1000) as f32) * 1e-3
            })
        })
        .collect()
}

/// A same-pattern element-wise partner for `x` (values doubled).
pub fn make_partner(x: &CooTensor<f32>) -> CooTensor<f32> {
    let mut y = x.clone();
    y.vals_mut().iter_mut().for_each(|v| *v = *v * 2.0 + 0.5);
    y
}

/// Run the full measured CPU suite on one tensor.
pub fn run_cpu_suite(
    x: &CooTensor<f32>,
    machine: &MachineModel,
    r: usize,
    block_bits: u8,
    reps: usize,
) -> Vec<KernelResult> {
    let stats = TensorStats::compute(x, block_bits);
    let order = x.order();
    let m = x.nnz() as u64;
    let bw = machine.ert_dram_gbs;
    let peak = machine.peak_gflops;

    let y = make_partner(x);
    let hx = HicooTensor::from_coo(x, block_bits).expect("valid block bits");
    let hy = HicooTensor::from_coo(&y, block_bits).expect("valid block bits");
    let factors = make_factors(x, r);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();

    let roof = machine.roofline();
    let mut out = Vec::new();
    let push = |out: &mut Vec<KernelResult>,
                kernel: Kernel,
                format: &'static str,
                cell: CellMeasure,
                bound: bounds::KernelBound| {
        let a = cell.annotate(&roof);
        out.push(KernelResult {
            kernel,
            format,
            time_s: cell.secs,
            gflops: a.gflops,
            oi: bound.oi,
            bound_gflops: bound.gflops,
            ai_measured: a.oi,
            bound_by: a.bound_by,
            pct_of_roof: a.pct_of_roof,
        });
    };

    // Tew / Ts: nonzero-parallel value loops.
    let cell = measure_cell(reps, || {
        std::hint::black_box(tew::tew_same_pattern(x, &y, EwOp::Add).unwrap());
    });
    push(
        &mut out,
        Kernel::Tew,
        "COO",
        cell,
        bounds::tew_bound(m, bw, peak),
    );
    let cell = measure_cell(reps, || {
        std::hint::black_box(tew::tew_hicoo_same_pattern(&hx, &hy, EwOp::Add).unwrap());
    });
    push(
        &mut out,
        Kernel::Tew,
        "HiCOO",
        cell,
        bounds::tew_bound(m, bw, peak),
    );

    let cell = measure_cell(reps, || {
        std::hint::black_box(ts::ts(x, 1.000_1, EwOp::Mul).unwrap());
    });
    push(
        &mut out,
        Kernel::Ts,
        "COO",
        cell,
        bounds::ts_bound(m, bw, peak),
    );
    let cell = measure_cell(reps, || {
        std::hint::black_box(ts::ts_hicoo(&hx, 1.000_1, EwOp::Mul).unwrap());
    });
    push(
        &mut out,
        Kernel::Ts,
        "HiCOO",
        cell,
        bounds::ts_bound(m, bw, peak),
    );

    // Ttv / Ttm / Mttkrp: averaged over modes; pre-processing untimed.
    let mean_mf = stats.mean_fibers() as u64;
    let mut ttv_coo = CellMeasure::default();
    let mut ttv_hic = CellMeasure::default();
    let mut ttm_coo = CellMeasure::default();
    let mut ttm_hic = CellMeasure::default();
    let mut mtt_coo = CellMeasure::default();
    let mut mtt_hic = CellMeasure::default();
    for mode in 0..order {
        let mut xm = x.clone();
        let fp = xm.fibers(mode).expect("mode in range");
        let g = GHicooTensor::from_coo_for_mode(x, block_bits, mode).expect("valid plan");
        let gfp = g.fibers(mode).expect("ttv layout");
        let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i % 100) as f32 * 0.01);
        let u = &factors[mode];

        ttv_coo.accumulate(&measure_cell(reps, || {
            std::hint::black_box(ttv::ttv_prepared(&xm, &fp, &v, Schedule::default()).unwrap());
        }));
        ttv_hic.accumulate(&measure_cell(reps, || {
            std::hint::black_box(ttv::ttv_ghicoo(&g, &gfp, &v, Schedule::default()).unwrap());
        }));
        ttm_coo.accumulate(&measure_cell(reps, || {
            std::hint::black_box(ttm::ttm_prepared(&xm, &fp, u, Schedule::default()).unwrap());
        }));
        ttm_hic.accumulate(&measure_cell(reps, || {
            std::hint::black_box(ttm::ttm_ghicoo(&g, &gfp, u, Schedule::default()).unwrap());
        }));
        mtt_coo.accumulate(&measure_cell(reps, || {
            std::hint::black_box(mttkrp::mttkrp_atomic(x, &frefs, mode).unwrap());
        }));
        mtt_hic.accumulate(&measure_cell(reps, || {
            std::hint::black_box(mttkrp::mttkrp_hicoo(&hx, &frefs, mode).unwrap());
        }));
    }
    // Mode-averaged rows: average the per-call time; the counter deltas
    // and call counts sum, so per-call figures stay mode-averaged too.
    let n = order as f64;
    for c in [
        &mut ttv_coo,
        &mut ttv_hic,
        &mut ttm_coo,
        &mut ttm_hic,
        &mut mtt_coo,
        &mut mtt_hic,
    ] {
        c.secs /= n;
    }
    push(
        &mut out,
        Kernel::Ttv,
        "COO",
        ttv_coo,
        bounds::ttv_bound(order, m, mean_mf, bw, peak),
    );
    push(
        &mut out,
        Kernel::Ttv,
        "HiCOO",
        ttv_hic,
        bounds::ttv_bound(order, m, mean_mf, bw, peak),
    );
    push(
        &mut out,
        Kernel::Ttm,
        "COO",
        ttm_coo,
        bounds::ttm_bound(order, m, mean_mf, r as u64, bw, peak),
    );
    push(
        &mut out,
        Kernel::Ttm,
        "HiCOO",
        ttm_hic,
        bounds::ttm_bound(order, m, mean_mf, r as u64, bw, peak),
    );
    push(
        &mut out,
        Kernel::Mttkrp,
        "COO",
        mtt_coo,
        bounds::mttkrp_coo_bound(order, m, r as u64, bw, peak),
    );
    push(
        &mut out,
        Kernel::Mttkrp,
        "HiCOO",
        mtt_hic,
        bounds::mttkrp_hicoo_bound(
            order,
            m,
            r as u64,
            stats.hicoo_blocks as u64,
            stats.block_size as u64,
            bw,
            peak,
        ),
    );
    out
}

/// One row of the Mttkrp scheduling ablation: a strategy/format pair with
/// its per-mode-averaged kernel time and supervised run status.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Strategy label, e.g. `"coo/scheduled"` or `"hicoo/atomic"`.
    pub name: String,
    /// Average time per Mttkrp call in seconds (averaged over modes).
    /// Infinite when the row did not produce a trusted number.
    pub time_s: f64,
    /// Throughput in millions of nonzero-updates per second
    /// (`order * nnz * R / time`); zero for failed rows.
    pub melem_s: f64,
    /// Supervised status: `Ok` for a clean run, or the failure that kept
    /// this strategy from producing a trusted number.
    pub status: crate::supervisor::RunStatus,
}

/// Measure every COO Mttkrp strategy plus atomic and scheduled HiCOO
/// Mttkrp on one tensor, averaged over all modes. Schedule construction is
/// pre-warmed outside the timed region (the schedule is cached and reused
/// across calls, matching the suite's untimed pre-processing methodology).
/// Runs supervised with no wall-clock cap; a panicking or invalid strategy
/// yields a failed row instead of killing the ablation.
pub fn run_mttkrp_ablation(
    x: &CooTensor<f32>,
    r: usize,
    block_bits: u8,
    reps: usize,
) -> Vec<AblationRow> {
    run_mttkrp_ablation_supervised(x, r, block_bits, reps, &SupervisorConfig::default())
}

/// The strategy labels `run_mttkrp_ablation_supervised` reports, in order.
pub const ABLATION_STRATEGIES: [&str; 7] = [
    "coo/seq",
    "coo/atomic",
    "coo/privatized",
    "coo/row_locked",
    "coo/scheduled",
    "hicoo/atomic",
    "hicoo/scheduled",
];

/// Supervised Mttkrp ablation: every cell runs on a watchdogged worker
/// thread and its output is checksum-validated against the sequential
/// reference. Each row is a single strategy, so there is no fallback
/// chain — a strategy that panics, times out, or produces bad numbers is
/// reported as a failed row (`time_s` infinite, `melem_s` zero) and the
/// remaining rows still run.
pub fn run_mttkrp_ablation_supervised(
    x: &CooTensor<f32>,
    r: usize,
    block_bits: u8,
    reps: usize,
    cfg: &SupervisorConfig,
) -> Vec<AblationRow> {
    run_mttkrp_ablation_supervised_at(x, r, block_bits, reps, None, cfg)
}

/// [`run_mttkrp_ablation_supervised`] pinned to an explicit pool size.
///
/// The supervisor runs each trial on a freshly spawned watchdog thread, so
/// a `with_threads` scope around the whole ablation would not reach the
/// measured kernels (the pool-size override is thread-local). Instead the
/// override is installed *inside* each trial closure, on the watchdog
/// thread itself. `None` keeps whatever pool size the watchdog thread
/// defaults to.
pub fn run_mttkrp_ablation_supervised_at(
    x: &CooTensor<f32>,
    r: usize,
    block_bits: u8,
    reps: usize,
    threads: Option<usize>,
    cfg: &SupervisorConfig,
) -> Vec<AblationRow> {
    use tenbench_core::kernels::mttkrp::MttkrpStrategy;
    use tenbench_core::sched;

    #[derive(Clone, Copy)]
    enum Variant {
        Coo(MttkrpStrategy),
        HicooAtomic,
        HicooSched,
    }
    let variants: [(&str, Variant); 7] = [
        ("coo/seq", Variant::Coo(MttkrpStrategy::Seq)),
        ("coo/atomic", Variant::Coo(MttkrpStrategy::Atomic)),
        ("coo/privatized", Variant::Coo(MttkrpStrategy::Privatized)),
        ("coo/row_locked", Variant::Coo(MttkrpStrategy::RowLocked)),
        ("coo/scheduled", Variant::Coo(MttkrpStrategy::Scheduled)),
        ("hicoo/atomic", Variant::HicooAtomic),
        ("hicoo/scheduled", Variant::HicooSched),
    ];

    let order = x.order();
    let m = x.nnz() as u64;
    let elems = (order as u64) * m * r as u64;
    let xa = Arc::new(x.clone());
    let factors = Arc::new(make_factors(x, r));
    let hx = Arc::new(HicooTensor::from_coo(x, block_bits).expect("valid block bits"));
    // Pre-warm the schedule cache for every mode, under the same pool
    // size the trials will install (schedules are keyed on thread count).
    let warm = || {
        for mode in 0..order {
            let _ = sched::row_schedule(x, mode);
            let _ = sched::mode_schedule(&hx, mode);
        }
    };
    match threads {
        Some(t) => tenbench_core::par::with_threads(t, warm),
        None => warm(),
    }
    // Sequential reference digests, one per mode (the trust anchor every
    // cell is validated against).
    let refs: Vec<Vec<f64>> = match (0..order)
        .map(|mode| mttkrp_reference_digest(x, &factors, mode, cfg.sample))
        .collect()
    {
        Ok(v) => v,
        Err(e) => {
            return variants
                .iter()
                .map(|(name, _)| AblationRow {
                    name: name.to_string(),
                    time_s: f64::INFINITY,
                    melem_s: 0.0,
                    status: RunStatus::Failed(format!("sequential reference failed: {e}")),
                })
                .collect()
        }
    };

    let mut rows = Vec::new();
    for (name, variant) in variants {
        let mut total = 0.0;
        let mut status = RunStatus::Ok;
        for mode in 0..order {
            let xa = xa.clone();
            let factors = factors.clone();
            let hx = hx.clone();
            let trial = Trial::new(name, move || {
                let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
                let run_once = || {
                    match variant {
                        Variant::Coo(s) => mttkrp::mttkrp_with(&xa, &frefs, mode, s),
                        Variant::HicooAtomic => mttkrp::mttkrp_hicoo(&hx, &frefs, mode),
                        Variant::HicooSched => mttkrp::mttkrp_hicoo_sched(&hx, &frefs, mode),
                    }
                    .map_err(|e| e.to_string())
                };
                let body = || {
                    let out = run_once()?;
                    let secs = time_avg(reps, || {
                        std::hint::black_box(run_once().unwrap());
                    });
                    Ok((secs, out))
                };
                match threads {
                    Some(t) => tenbench_core::par::with_threads(t, body),
                    None => body(),
                }
            });
            let reference = &refs[mode];
            // Each cell gets its own trace context: the supervisor relays
            // it onto the watchdog thread, so a traced ablation renders
            // one connected lane per cell and a fault dump names the cell
            // that was executing.
            let cell_ctx = obs::TraceCtx::mint("cell");
            let _cell_guard = obs::ctx::install(cell_ctx);
            obs::ctx::async_begin("cell", cell_ctx);
            let (report, value) = supervise(
                &format!("mttkrp/{name}/mode{mode}"),
                &[trial],
                |(_, out): &(f64, DenseMatrix<f32>)| {
                    validate_matrix(out, reference, cfg.sample, cfg.rel_tol)
                },
                cfg,
            );
            obs::ctx::async_end("cell", cell_ctx);
            match value {
                Some((secs, _)) => {
                    total += secs;
                    // A retry that recovered still taints the row's status.
                    if status == RunStatus::Ok && report.status != RunStatus::Ok {
                        status = report.status;
                    }
                }
                None => {
                    status = report.status;
                    break;
                }
            }
        }
        let (time_s, melem_s) = if status.is_success() {
            let t = total / order as f64;
            (t, elems as f64 / t / 1e6)
        } else {
            (f64::INFINITY, 0.0)
        };
        rows.push(AblationRow {
            name: name.to_string(),
            time_s,
            melem_s,
            status,
        });
    }
    rows
}

/// One row of the SIMD backend ablation: a kernel × format × rank cell
/// measured under one explicit kernel backend.
#[derive(Debug, Clone)]
pub struct SimdAblationRow {
    /// Which kernel.
    pub kernel: Kernel,
    /// `"COO"`, `"HiCOO"`, or `"VbHiCOO"` (the value-blocked layout).
    pub format: &'static str,
    /// Factor rank (0 for the rank-free kernels Tew/Ts/Ttv).
    pub rank: usize,
    /// The backend the cell was forced to.
    pub backend: KernelBackend,
    /// Best-of-reps kernel time in seconds (mode-averaged where
    /// applicable; see [`time_min`]).
    pub time_s: f64,
    /// Achieved GFLOPS from the instrumented counters.
    pub gflops: f64,
    /// Measured arithmetic intensity.
    pub ai_measured: f64,
    /// Achieved GFLOPS as a percentage of the binding roof.
    pub pct_of_roof: f64,
}

/// Measure every kernel under the scalar and SIMD backends on COO, HiCOO,
/// and (where a value-blocked kernel exists: Tew/Ts/Mttkrp) the vb-HiCOO
/// layout. Rank-free kernels contribute one cell pair each; Ttm and Mttkrp
/// contribute one pair per entry of `ranks`. Pre-processing (conversions,
/// fiber partitions, schedules) happens once, untimed, exactly as in
/// [`run_cpu_suite`]; rows for the same cell appear scalar-first then
/// SIMD, so consumers can pair them positionally.
pub fn run_simd_ablation(
    x: &CooTensor<f32>,
    machine: &MachineModel,
    ranks: &[usize],
    block_bits: u8,
    reps: usize,
) -> Vec<SimdAblationRow> {
    use tenbench_core::sched;

    let order = x.order();
    let y = make_partner(x);
    let hx = HicooTensor::from_coo(x, block_bits).expect("valid block bits");
    let hy = HicooTensor::from_coo(&y, block_bits).expect("valid block bits");
    let vx = VbHicooTensor::from_hicoo(&hx);
    let vy = VbHicooTensor::from_hicoo(&hy);
    let roof = machine.roofline();

    // Untimed pre-warm: fiber partitions are taken per mode below; warm
    // the schedule caches the scheduled kernels will hit.
    for mode in 0..order {
        let _ = sched::row_schedule(x, mode);
        let _ = sched::mode_schedule(&hx, mode);
        let _ = sched::vb_mode_schedule(&vx, mode);
    }

    let mut out: Vec<SimdAblationRow> = Vec::new();
    let backends = [KernelBackend::Scalar, KernelBackend::Simd];
    let cell = |kernel: Kernel,
                format: &'static str,
                rank: usize,
                out: &mut Vec<SimdAblationRow>,
                body: &mut dyn FnMut(KernelBackend)| {
        for backend in backends {
            let c = measure_cell_min(reps, || body(backend));
            let modes = if matches!(kernel, Kernel::Ttv | Kernel::Ttm | Kernel::Mttkrp) {
                order as f64
            } else {
                1.0
            };
            let c = CellMeasure {
                secs: c.secs / modes,
                ..c
            };
            let a = c.annotate(&roof);
            out.push(SimdAblationRow {
                kernel,
                format,
                rank,
                backend,
                time_s: c.secs,
                gflops: a.gflops,
                ai_measured: a.oi,
                pct_of_roof: a.pct_of_roof,
            });
        }
    };

    // Rank-free kernels.
    cell(Kernel::Tew, "COO", 0, &mut out, &mut |b| {
        std::hint::black_box(tew::tew_same_pattern_backend(x, &y, EwOp::Add, b).unwrap());
    });
    cell(Kernel::Tew, "HiCOO", 0, &mut out, &mut |b| {
        std::hint::black_box(tew::tew_hicoo_same_pattern_backend(&hx, &hy, EwOp::Add, b).unwrap());
    });
    cell(Kernel::Tew, "VbHiCOO", 0, &mut out, &mut |b| {
        std::hint::black_box(tew::tew_vb_same_pattern_backend(&vx, &vy, EwOp::Add, b).unwrap());
    });
    cell(Kernel::Ts, "COO", 0, &mut out, &mut |b| {
        std::hint::black_box(ts::ts_backend(x, 1.000_1, EwOp::Mul, b).unwrap());
    });
    cell(Kernel::Ts, "HiCOO", 0, &mut out, &mut |b| {
        std::hint::black_box(ts::ts_hicoo_backend(&hx, 1.000_1, EwOp::Mul, b).unwrap());
    });
    cell(Kernel::Ts, "VbHiCOO", 0, &mut out, &mut |b| {
        std::hint::black_box(ts::ts_vb_backend(&vx, 1.000_1, EwOp::Mul, b).unwrap());
    });
    let vecs: Vec<DenseVector<f32>> = (0..order)
        .map(|mode| DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i % 100) as f32 * 0.01))
        .collect();
    cell(Kernel::Ttv, "COO", 0, &mut out, &mut |b| {
        for (mode, v) in vecs.iter().enumerate() {
            std::hint::black_box(ttv::ttv_backend(x, v, mode, b).unwrap());
        }
    });
    cell(Kernel::Ttv, "HiCOO", 0, &mut out, &mut |b| {
        for (mode, v) in vecs.iter().enumerate() {
            std::hint::black_box(ttv::ttv_hicoo_sched_backend(&hx, v, mode, b).unwrap());
        }
    });

    // Ranked kernels: one cell pair per rank.
    for &r in ranks {
        let factors = make_factors(x, r);
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        cell(Kernel::Ttm, "COO", r, &mut out, &mut |b| {
            for mode in 0..order {
                std::hint::black_box(ttm::ttm_backend(x, frefs[mode], mode, b).unwrap());
            }
        });
        cell(Kernel::Ttm, "HiCOO", r, &mut out, &mut |b| {
            for mode in 0..order {
                std::hint::black_box(
                    ttm::ttm_hicoo_sched_backend(&hx, frefs[mode], mode, b).unwrap(),
                );
            }
        });
        cell(Kernel::Mttkrp, "COO", r, &mut out, &mut |b| {
            for mode in 0..order {
                std::hint::black_box(mttkrp::mttkrp_sched_backend(x, &frefs, mode, b).unwrap());
            }
        });
        cell(Kernel::Mttkrp, "HiCOO", r, &mut out, &mut |b| {
            for mode in 0..order {
                std::hint::black_box(
                    mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, b).unwrap(),
                );
            }
        });
        cell(Kernel::Mttkrp, "VbHiCOO", r, &mut out, &mut |b| {
            for mode in 0..order {
                std::hint::black_box(
                    mttkrp::mttkrp_vb_sched_backend(&vx, &frefs, mode, b).unwrap(),
                );
            }
        });
    }
    out
}

/// Run the full simulated GPU suite on one tensor.
pub fn run_gpu_suite(
    x: &CooTensor<f32>,
    dev: &DeviceSpec,
    r: usize,
    block_bits: u8,
) -> Vec<KernelResult> {
    let stats = TensorStats::compute(x, block_bits);
    let machine = MachineModel::from_device(dev);
    let order = x.order();
    let m = x.nnz() as u64;
    let bw = machine.ert_dram_gbs;
    let peak = machine.peak_gflops;

    let y = make_partner(x);
    let hx = HicooTensor::from_coo(x, block_bits).expect("valid block bits");
    let hy = HicooTensor::from_coo(&y, block_bits).expect("valid block bits");
    let factors = make_factors(x, r);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();

    // Simulated launches report modeled FLOPs and DRAM bytes directly, so
    // the annotation uses the simulator's own accounting in place of the
    // CPU counters.
    let roof = machine.roofline();
    let cell_of = |s: &tenbench_gpusim::report::GpuKernelStats| CellMeasure {
        secs: s.time_s,
        flops: s.flops,
        bytes: s.dram_bytes,
        calls: 1,
    };
    let mut out = Vec::new();
    let mut push =
        |kernel: Kernel, format: &'static str, cell: CellMeasure, bound: bounds::KernelBound| {
            let a = cell.annotate(&roof);
            out.push(KernelResult {
                kernel,
                format,
                time_s: cell.secs,
                gflops: a.gflops,
                oi: bound.oi,
                bound_gflops: bound.gflops,
                ai_measured: a.oi,
                bound_by: a.bound_by,
                pct_of_roof: a.pct_of_roof,
            });
        };

    let (_, s) = gpuk::tew_coo_gpu(dev, x, &y, EwOp::Add).unwrap();
    push(
        Kernel::Tew,
        "COO",
        cell_of(&s),
        bounds::tew_bound(m, bw, peak),
    );
    let (_, s) = gpuk::tew_hicoo_gpu(dev, &hx, &hy, EwOp::Add).unwrap();
    push(
        Kernel::Tew,
        "HiCOO",
        cell_of(&s),
        bounds::tew_bound(m, bw, peak),
    );

    let (_, s) = gpuk::ts_coo_gpu(dev, x, 1.000_1, EwOp::Mul).unwrap();
    push(
        Kernel::Ts,
        "COO",
        cell_of(&s),
        bounds::ts_bound(m, bw, peak),
    );
    let (_, s) = gpuk::ts_hicoo_gpu(dev, &hx, 1.000_1, EwOp::Mul).unwrap();
    push(
        Kernel::Ts,
        "HiCOO",
        cell_of(&s),
        bounds::ts_bound(m, bw, peak),
    );

    let mean_mf = stats.mean_fibers() as u64;
    let mut ttv_c = [CellMeasure::default(); 2];
    let mut ttm_c = [CellMeasure::default(); 2];
    let mut mtt_c = [CellMeasure::default(); 2];
    for mode in 0..order {
        let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i % 100) as f32 * 0.01);
        let u = &factors[mode];
        let (_, s) = gpuk::ttv_coo_gpu(dev, x, &v, mode).unwrap();
        ttv_c[0].accumulate(&cell_of(&s));
        let (_, s) = gpuk::ttv_hicoo_gpu(dev, &hx, &v, mode).unwrap();
        ttv_c[1].accumulate(&cell_of(&s));
        let (_, s) = gpuk::ttm_coo_gpu(dev, x, u, mode).unwrap();
        ttm_c[0].accumulate(&cell_of(&s));
        let (_, s) = gpuk::ttm_hicoo_gpu(dev, &hx, u, mode).unwrap();
        ttm_c[1].accumulate(&cell_of(&s));
        let (_, s) = gpuk::mttkrp_coo_gpu(dev, x, &frefs, mode).unwrap();
        mtt_c[0].accumulate(&cell_of(&s));
        let (_, s) = gpuk::mttkrp_hicoo_gpu(dev, &hx, &frefs, mode).unwrap();
        mtt_c[1].accumulate(&cell_of(&s));
    }
    let n = order as f64;
    for c in ttv_c.iter_mut().chain(&mut ttm_c).chain(&mut mtt_c) {
        c.secs /= n;
    }
    push(
        Kernel::Ttv,
        "COO",
        ttv_c[0],
        bounds::ttv_bound(order, m, mean_mf, bw, peak),
    );
    push(
        Kernel::Ttv,
        "HiCOO",
        ttv_c[1],
        bounds::ttv_bound(order, m, mean_mf, bw, peak),
    );
    push(
        Kernel::Ttm,
        "COO",
        ttm_c[0],
        bounds::ttm_bound(order, m, mean_mf, r as u64, bw, peak),
    );
    push(
        Kernel::Ttm,
        "HiCOO",
        ttm_c[1],
        bounds::ttm_bound(order, m, mean_mf, r as u64, bw, peak),
    );
    push(
        Kernel::Mttkrp,
        "COO",
        mtt_c[0],
        bounds::mttkrp_coo_bound(order, m, r as u64, bw, peak),
    );
    push(
        Kernel::Mttkrp,
        "HiCOO",
        mtt_c[1],
        bounds::mttkrp_hicoo_bound(
            order,
            m,
            r as u64,
            stats.hicoo_blocks as u64,
            stats.block_size as u64,
            bw,
            peak,
        ),
    );
    out
}

#[cfg(test)]
mod tests {
    use tenbench_gen::registry::find;

    use super::*;

    fn small_tensor() -> CooTensor<f32> {
        find("s4").unwrap().generate_with(4000, 7)
    }

    fn host() -> MachineModel {
        MachineModel {
            name: "test-host".into(),
            ert_dram_gbs: 20.0,
            peak_gflops: 200.0,
        }
    }

    #[test]
    fn cpu_suite_covers_all_kernels_and_formats() {
        let x = small_tensor();
        let res = run_cpu_suite(&x, &host(), 8, 4, 1);
        assert_eq!(res.len(), 10);
        for r in &res {
            assert!(r.time_s > 0.0, "{:?}", r.kernel);
            assert!(r.gflops > 0.0);
            assert!(r.bound_gflops > 0.0);
            assert!(r.oi > 0.0);
            // The roofline annotation comes from the instrumented
            // counters: every row must carry a measured AI, a binding
            // roof, and a % of roof.
            assert!(r.ai_measured > 0.0, "{:?}/{}", r.kernel, r.format);
            assert!(r.pct_of_roof > 0.0, "{:?}/{}", r.kernel, r.format);
            assert!(
                r.bound_by == "memory" || r.bound_by == "compute",
                "{:?}",
                r.bound_by
            );
        }
        let kernels: Vec<&str> = res.iter().map(|r| r.kernel.name()).collect();
        assert_eq!(kernels.iter().filter(|&&k| k == "Mttkrp").count(), 2);
    }

    #[test]
    fn gpu_suite_covers_all_kernels_and_formats() {
        let x = small_tensor();
        let dev = DeviceSpec::p100();
        let res = run_gpu_suite(&x, &dev, 8, 4);
        assert_eq!(res.len(), 10);
        for r in &res {
            assert!(r.time_s > 0.0);
            assert!(r.gflops > 0.0);
            assert!(r.ai_measured > 0.0);
            assert!(r.pct_of_roof > 0.0);
        }
    }

    #[test]
    fn mttkrp_ablation_covers_all_strategies() {
        let x = small_tensor();
        let rows = run_mttkrp_ablation(&x, 8, 4, 1);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "coo/seq",
                "coo/atomic",
                "coo/privatized",
                "coo/row_locked",
                "coo/scheduled",
                "hicoo/atomic",
                "hicoo/scheduled"
            ]
        );
        for r in &rows {
            assert!(r.time_s > 0.0, "{}", r.name);
            assert!(r.melem_s > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn simd_ablation_pairs_backends_per_cell() {
        let x = small_tensor();
        let rows = run_simd_ablation(&x, &host(), &[4, 8], 4, 1);
        // 8 rank-free cells (tew/ts × 3 layouts, ttv × 2) + per rank: ttm
        // × 2 + mttkrp × 3 — each cell contributing a scalar and a simd
        // row.
        assert_eq!(rows.len(), (8 + 2 * 5) * 2);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].backend, KernelBackend::Scalar);
            assert_eq!(pair[1].backend, KernelBackend::Simd);
            assert_eq!(pair[0].kernel, pair[1].kernel);
            assert_eq!(pair[0].format, pair[1].format);
            assert_eq!(pair[0].rank, pair[1].rank);
            for r in pair {
                assert!(r.time_s > 0.0, "{:?}/{}", r.kernel, r.format);
                assert!(r.gflops > 0.0, "{:?}/{}", r.kernel, r.format);
                assert!(r.pct_of_roof > 0.0, "{:?}/{}", r.kernel, r.format);
            }
        }
        // The vb layout shows up for every kernel that has a vb path.
        for k in [Kernel::Tew, Kernel::Ts, Kernel::Mttkrp] {
            assert!(
                rows.iter().any(|r| r.kernel == k && r.format == "VbHiCOO"),
                "{k:?} missing vb rows"
            );
        }
    }

    #[test]
    fn time_avg_batches_fast_functions() {
        let mut n = 0u64;
        let t = time_avg(2, || {
            n += 1;
        });
        assert!(t >= 0.0);
        assert!(n > 2); // batching kicked in
    }
}
