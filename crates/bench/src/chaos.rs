//! The chaos harness: try to kill a live service, prove nothing is lost.
//!
//! [`run_chaos`] stands up the full serving stack — a [`KernelService`]
//! under Zipf-skewed closed-loop kernel traffic *and* a
//! [`JobService`] running CP-ALS / power-method / TTM-chain decomposition
//! jobs through the supervised step runner — then injects faults into the
//! jobs while they run: step panics, step hangs that trip the watchdog,
//! checkpoint corruption that the resume path must detect, and queue-full
//! submission bursts against both services.
//!
//! The harness then checks the robustness contract the PR series builds
//! toward (ROADMAP item 5):
//!
//! - **Zero lost jobs**: every admitted job reaches a terminal state —
//!   completed with a finite fit or failed with a typed [`JobError`].
//! - **Recovery really happened**: at least one fault was absorbed via
//!   checkpoint resume (the CI floor makes this a hard gate, proving the
//!   injector was live).
//! - **Determinism across resume boundaries**: every completed CP-ALS
//!   job is re-run uninterrupted in-process and must match bitwise —
//!   final fit, final `TNC1` checkpoint (all factor matrices), and every
//!   per-iteration fit sample.
//! - **Monotone fit**: CP-ALS fit residuals never increase across a
//!   resume boundary (a resumed iteration recomputes exactly what the
//!   uninterrupted run would have produced).
//!
//! Recovery counters flow through `tenbench_obs::counters` and are
//! included in the report, so a trace of the run shows the fault volume.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;
use tenbench_gen::KroneckerGenerator;
use tenbench_obs as obs;
use tenbench_serve::{
    closed_loop, overload_probe, ClientTally, FaultInjector, InjectedFault, JobConfig, JobError,
    JobKind, JobOutcome, JobProgress, JobService, JobSpec, JobTicket, KernelService, OverloadProbe,
    ServeConfig, StressConfig,
};

use crate::serve_exec::{SupervisedExecutor, SupervisedStepRunner};
use crate::supervisor::SupervisorConfig;

/// Knobs for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Kernel-traffic phase length (jobs run concurrently and may outlive
    /// it; the run ends when every job reaches a terminal state).
    pub duration: Duration,
    /// Master seed: tensor pool, job parameters, fault schedule.
    pub seed: u64,
    /// Decomposition jobs submitted up front (cycling CP-ALS /
    /// power-method / TTM-chain over the pool).
    pub jobs: usize,
    /// Cubical pool tensor side (shape `dim x dim x dim` — cubical so the
    /// power method is well-posed).
    pub dim: u32,
    /// Nonzeros per pool tensor.
    pub nnz: usize,
    /// Pool size (Zipf popularity ranges over these).
    pub tensors: usize,
    /// Zipf skew of the kernel traffic.
    pub alpha: f64,
    /// Closed-loop kernel client workers.
    pub clients: usize,
    /// CP-ALS decomposition rank.
    pub rank: usize,
    /// CP-ALS / power-method iteration budget per job.
    pub max_iters: usize,
    /// Probability a job iteration draws a fault.
    pub fault_rate: f64,
    /// Watchdog budget per job iteration, in seconds. Injected hangs
    /// sleep for twice this, so every hang trips the watchdog.
    pub max_step_seconds: f64,
    /// Job worker threads.
    pub job_workers: usize,
    /// Fault budget per job before a typed `RetriesExhausted` failure.
    pub max_recoveries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            duration: Duration::from_secs(3),
            seed: 42,
            jobs: 9,
            dim: 24,
            nnz: 2_000,
            tensors: 4,
            alpha: 1.1,
            clients: 2,
            rank: 4,
            max_iters: 6,
            fault_rate: 0.25,
            max_step_seconds: 2.0,
            job_workers: 2,
            max_recoveries: 8,
        }
    }
}

/// Seeded random fault source. Each iteration draws against
/// `fault_rate`; firing faults cycle panic → hang → corruption so a run
/// with three or more faults provably exercises every kind.
pub struct RandomFaults {
    rng: Mutex<StdRng>,
    rate: f64,
    hang_ms: u64,
    fired: AtomicU64,
    panics: AtomicU64,
    hangs: AtomicU64,
    corruptions: AtomicU64,
}

impl RandomFaults {
    /// A fault source with the given per-iteration rate.
    pub fn new(seed: u64, rate: f64, hang_ms: u64) -> Self {
        RandomFaults {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            rate,
            hang_ms,
            fired: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            hangs: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// (panics, hangs, corruptions) injected so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (
            self.panics.load(Ordering::Relaxed),
            self.hangs.load(Ordering::Relaxed),
            self.corruptions.load(Ordering::Relaxed),
        )
    }
}

impl FaultInjector for RandomFaults {
    fn next_fault(&self, _job_id: u64, _iteration: usize) -> Option<InjectedFault> {
        let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
        if rng.random::<f64>() >= self.rate {
            return None;
        }
        let n = self.fired.fetch_add(1, Ordering::Relaxed);
        match n % 3 {
            0 => {
                self.panics.fetch_add(1, Ordering::Relaxed);
                Some(InjectedFault::PanicInStep)
            }
            1 => {
                self.hangs.fetch_add(1, Ordering::Relaxed);
                Some(InjectedFault::HangInStep { ms: self.hang_ms })
            }
            _ => {
                self.corruptions.fetch_add(1, Ordering::Relaxed);
                Some(InjectedFault::CorruptCheckpoint {
                    byte: rng.next_u64() as usize,
                    mask: (rng.next_u64() % 255 + 1) as u8,
                })
            }
        }
    }
}

/// One job's terminal line in the report.
#[derive(Debug, Clone)]
pub struct ChaosJobLine {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Method label.
    pub kind: &'static str,
    /// `"completed"` or `"failed: <typed error>"` — never anything else.
    pub terminal: String,
    /// Iterations completed (0 for failed jobs).
    pub iterations: u64,
    /// Final fit (NaN for failed jobs; completed jobs are gated finite).
    pub fit: f64,
    /// Faults this job absorbed.
    pub recoveries: u32,
    /// Progress samples flagged as resume boundaries.
    pub resume_boundaries: u32,
}

/// Everything one chaos run observed; the CLI formats and gates it.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Jobs admitted (initial wave plus admitted burst jobs).
    pub admitted: u64,
    /// Burst submissions refused with a typed queue-full rejection.
    pub burst_rejected: u64,
    /// Admitted jobs that completed with a finite fit.
    pub completed: u64,
    /// Admitted jobs that failed with a typed error.
    pub failed: u64,
    /// Admitted jobs with no terminal state: the headline gate, always 0.
    pub lost: u64,
    /// Faults absorbed (checkpoint resumes + reinits).
    pub recoveries: u64,
    /// Recoveries that resumed from a valid checkpoint.
    pub resumes: u64,
    /// Recoveries that found every generation damaged and restarted.
    pub reinits: u64,
    /// Corrupted checkpoint generations detected and refused.
    pub corrupt_detected: u64,
    /// Checkpoints written across all jobs.
    pub checkpoints: u64,
    /// Step panics injected.
    pub injected_panics: u64,
    /// Step hangs injected.
    pub injected_hangs: u64,
    /// Checkpoint corruptions injected.
    pub injected_corruptions: u64,
    /// Kernel-traffic client tally from the closed-loop phase.
    pub kernel: ClientTally,
    /// Kernel overload probe (queue-full burst against the service).
    pub kernel_probe: OverloadProbe,
    /// Completed CP-ALS jobs re-run uninterrupted and compared bitwise.
    pub cp_checked: u64,
    /// Reference mismatches (gate: 0).
    pub cp_mismatched: u64,
    /// Resume boundaries observed across all completed jobs.
    pub resume_boundaries: u64,
    /// CP-ALS fit-residual increases across a resume boundary (gate: 0).
    pub residual_violations: u64,
    /// Per-job terminal lines, in submission order.
    pub job_lines: Vec<ChaosJobLine>,
    /// Deltas of the `job.*` / `chaos.*` obs counters over the run.
    pub counters: Vec<(&'static str, u64)>,
}

impl ChaosReport {
    /// Machine-readable JSON object (validated by the caller before disk).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut field = |name: &str, v: String, first: bool| {
            if !first {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{name}\": {v}"));
        };
        field("admitted", self.admitted.to_string(), true);
        field("burst_rejected", self.burst_rejected.to_string(), false);
        field("completed", self.completed.to_string(), false);
        field("failed", self.failed.to_string(), false);
        field("lost", self.lost.to_string(), false);
        field("recoveries", self.recoveries.to_string(), false);
        field("resumes", self.resumes.to_string(), false);
        field("reinits", self.reinits.to_string(), false);
        field("corrupt_detected", self.corrupt_detected.to_string(), false);
        field("checkpoints", self.checkpoints.to_string(), false);
        field("injected_panics", self.injected_panics.to_string(), false);
        field("injected_hangs", self.injected_hangs.to_string(), false);
        field(
            "injected_corruptions",
            self.injected_corruptions.to_string(),
            false,
        );
        field(
            "kernel",
            format!(
                "{{\"issued\": {}, \"ok\": {}, \"rejected_full\": {}, \"rejected_deadline\": {}, \"failed\": {}}}",
                self.kernel.issued,
                self.kernel.ok,
                self.kernel.rejected_full,
                self.kernel.rejected_deadline,
                self.kernel.failed
            ),
            false,
        );
        field(
            "kernel_probe",
            format!(
                "{{\"submitted\": {}, \"rejected_queue_full\": {}, \"completed\": {}, \"failed\": {}, \"lost\": {}}}",
                self.kernel_probe.submitted,
                self.kernel_probe.rejected_queue_full,
                self.kernel_probe.completed,
                self.kernel_probe.failed,
                self.kernel_probe.lost
            ),
            false,
        );
        field("cp_checked", self.cp_checked.to_string(), false);
        field("cp_mismatched", self.cp_mismatched.to_string(), false);
        field(
            "resume_boundaries",
            self.resume_boundaries.to_string(),
            false,
        );
        field(
            "residual_violations",
            self.residual_violations.to_string(),
            false,
        );
        let jobs = self
            .job_lines
            .iter()
            .map(|l| {
                format!(
                    "{{\"job_id\": {}, \"kind\": \"{}\", \"terminal\": \"{}\", \"iterations\": {}, \"fit\": {}, \"recoveries\": {}, \"resume_boundaries\": {}}}",
                    l.job_id,
                    l.kind,
                    obs::json::escape_json(&l.terminal),
                    l.iterations,
                    obs::json::json_f64(l.fit),
                    l.recoveries,
                    l.resume_boundaries
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        field("jobs", format!("[{jobs}]"), false);
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| format!("{{\"name\": \"{n}\", \"delta\": {v}}}"))
            .collect::<Vec<_>>()
            .join(", ");
        field("counters", format!("[{counters}]"), false);
        s.push('}');
        s
    }
}

/// Deterministic job mix for slot `j`: CP-ALS, power-method, TTM-chain
/// round-robin, parameters derived from the master seed.
fn job_spec(cfg: &ChaosConfig, pool: &[Arc<CooTensor<f32>>], j: usize) -> JobSpec {
    let seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(j as u64);
    let kind = match j % 3 {
        0 => JobKind::CpAls {
            rank: cfg.rank,
            max_iters: cfg.max_iters,
            tol: 0.0,
            seed,
        },
        1 => JobKind::PowerMethod {
            max_iters: cfg.max_iters,
            tol: 0.0,
            seed,
        },
        _ => JobKind::TtmChain {
            rank: cfg.rank.clamp(1, 3),
            seed,
        },
    };
    JobSpec {
        kind,
        tensor: pool[j % pool.len()].clone(),
    }
}

/// Collapse a chaotic progress stream to the accepted per-iteration
/// samples. A resume that falls back past a damaged generation re-emits
/// the recomputed iterations (flagged `resumed`), so the raw stream can
/// contain an iteration twice; the engine's state rolled back to the
/// restore point, so the *last* occurrence is the accepted one. Popping
/// every sample at or past the re-emitted iteration replays that
/// rollback, leaving the stream an uninterrupted run would have produced.
fn accepted_progress(raw: &[JobProgress]) -> Vec<JobProgress> {
    let mut out: Vec<JobProgress> = Vec::with_capacity(raw.len());
    for p in raw {
        while out.last().is_some_and(|l| l.iteration >= p.iteration) {
            out.pop();
        }
        out.push(*p);
    }
    out
}

fn terminal_text(r: &Result<JobOutcome, JobError>) -> String {
    match r {
        Ok(_) => "completed".to_string(),
        Err(e) => format!("failed: {e}"),
    }
}

/// Uninterrupted in-process reference for one spec, at the same ambient
/// thread count as the chaos run. Returns `None` if the clean run fails —
/// which the caller counts as a mismatch, since the chaotic run completed.
fn reference_outcome(spec: &JobSpec, cfg: &ChaosConfig) -> Option<JobOutcome> {
    let svc = JobService::start(
        JobConfig {
            workers: 1,
            queue_bound: 1,
            max_step_seconds: f64::INFINITY,
            max_recoveries: 0,
            keep_checkpoints: 2,
            threads: None,
        },
        Arc::new(SupervisedStepRunner),
        None,
    );
    let _ = cfg;
    let out = svc.submit(spec.clone()).ok()?.wait().ok();
    svc.shutdown();
    out
}

/// Run the chaos scenario and collect the evidence. Pure observation — the
/// CLI layer applies the gates so a violated gate renders the full report
/// first.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let _counters = obs::counters::counters_scope();
    let snap0: Vec<(&'static str, u64)> = obs::counters::snapshot();

    // Cubical pool shared by kernel traffic and jobs: the job tensors are
    // the *same* Arcs the kernel service is hammering, so cache reuse and
    // decomposition state coexist.
    let shape = vec![cfg.dim.max(2); 3];
    let pool: Vec<Arc<CooTensor<f32>>> = (0..cfg.tensors.max(1) as u64)
        .map(|i| {
            Arc::new(
                KroneckerGenerator::rmat_like(Shape::new(shape.clone()), cfg.nnz)
                    .generate(cfg.seed.wrapping_add(i)),
            )
        })
        .collect();

    let injector = Arc::new(RandomFaults::new(
        cfg.seed,
        cfg.fault_rate,
        (cfg.max_step_seconds * 2_000.0).max(100.0) as u64,
    ));
    let job_cfg = JobConfig {
        workers: cfg.job_workers.max(1),
        queue_bound: cfg.jobs.max(1),
        max_step_seconds: cfg.max_step_seconds,
        max_recoveries: cfg.max_recoveries,
        keep_checkpoints: 2,
        threads: None,
    };
    let jsvc = JobService::start(
        job_cfg,
        Arc::new(SupervisedStepRunner),
        Some(injector.clone() as Arc<dyn FaultInjector>),
    );

    let ksvc = KernelService::start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        Box::new(SupervisedExecutor::new(SupervisorConfig {
            max_seconds: cfg.max_step_seconds.max(5.0),
            ..SupervisorConfig::default()
        })),
    );

    let mut specs: Vec<JobSpec> = Vec::new();
    let mut tickets: Vec<(usize, JobTicket)> = Vec::new();
    let mut burst_rejected = 0u64;

    let ((kernel, kernel_probe), results) = std::thread::scope(|s| {
        // Kernel traffic + overload probe on a sibling thread while the
        // jobs run and the fault thread (the injector, pulled from inside
        // the job workers) fires.
        let kernel_phase = s.spawn(|| {
            let tally = closed_loop(
                &ksvc,
                &pool,
                &StressConfig {
                    duration: cfg.duration,
                    concurrency: cfg.clients.max(1),
                    zipf_alpha: cfg.alpha,
                    rank: cfg.rank,
                    deadline_ms: 250,
                    seed: cfg.seed,
                },
            );
            let probe = overload_probe(&ksvc, &pool);
            (tally, probe)
        });

        // Initial wave: sized to the queue bound, every one admitted.
        for j in 0..cfg.jobs.max(1) {
            let spec = job_spec(cfg, &pool, j);
            match jsvc.submit(spec.clone()) {
                Ok(t) => {
                    specs.push(spec);
                    tickets.push((specs.len() - 1, t));
                }
                Err(JobError::Rejected { .. }) => burst_rejected += 1,
                Err(_) => {}
            }
        }
        // Queue-full burst: slam the job queue far past its bound with
        // cheap jobs. Typed rejections are the expected, correct answer;
        // anything admitted is tracked and must terminate like the rest.
        for j in 0..cfg.jobs.max(1) * 3 {
            let spec = JobSpec {
                kind: JobKind::CpAls {
                    rank: 2,
                    max_iters: 1,
                    tol: 0.0,
                    seed: cfg.seed.wrapping_add(j as u64),
                },
                tensor: pool[j % pool.len()].clone(),
            };
            match jsvc.submit(spec.clone()) {
                Ok(t) => {
                    specs.push(spec);
                    tickets.push((specs.len() - 1, t));
                }
                Err(JobError::Rejected { .. }) => {
                    burst_rejected += 1;
                    obs::counters::CHAOS_FAULTS.add(1);
                }
                Err(_) => {}
            }
        }

        let results: Vec<(usize, Result<JobOutcome, JobError>)> =
            tickets.drain(..).map(|(idx, t)| (idx, t.wait())).collect();
        let (tally, probe) = kernel_phase.join().expect("kernel phase panicked");
        ((tally, probe), results)
    });

    let job_report = jsvc.shutdown();
    ksvc.shutdown();

    // Gates evidence: terminal accounting, CP-ALS reference comparison,
    // residual monotonicity at resume boundaries.
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut cp_checked = 0u64;
    let mut cp_mismatched = 0u64;
    let mut resume_boundaries = 0u64;
    let mut residual_violations = 0u64;
    let mut job_lines = Vec::with_capacity(results.len());

    for (idx, result) in &results {
        let spec = &specs[*idx];
        let (job_id, iterations, fit, recoveries, boundaries) = match result {
            Ok(out) => {
                completed += 1;
                let boundaries = out.progress.iter().filter(|p| p.resumed).count() as u32;
                resume_boundaries += boundaries as u64;
                if matches!(spec.kind, JobKind::CpAls { .. }) {
                    // Residual = 1 - fit: non-increasing across a resume
                    // boundary means fit never drops when recovery
                    // recomputes an iteration.
                    for w in out.progress.windows(2) {
                        if w[1].resumed && w[1].fit < w[0].fit - 1e-6 {
                            residual_violations += 1;
                        }
                    }
                    cp_checked += 1;
                    let accepted = accepted_progress(&out.progress);
                    match reference_outcome(spec, cfg) {
                        Some(clean)
                            if clean.fit.to_bits() == out.fit.to_bits()
                                && clean.final_checkpoint == out.final_checkpoint
                                && clean.progress.len() == accepted.len()
                                && clean.progress.iter().zip(accepted.iter()).all(|(a, b)| {
                                    a.iteration == b.iteration && a.fit.to_bits() == b.fit.to_bits()
                                }) => {}
                        _ => cp_mismatched += 1,
                    }
                }
                (
                    out.job_id,
                    out.iterations,
                    out.fit,
                    out.recoveries,
                    boundaries,
                )
            }
            Err(_) => {
                failed += 1;
                (0, 0, f64::NAN, 0, 0)
            }
        };
        job_lines.push(ChaosJobLine {
            job_id,
            kind: spec.kind.label(),
            terminal: terminal_text(result),
            iterations,
            fit,
            recoveries,
            resume_boundaries: boundaries,
        });
    }

    let (injected_panics, injected_hangs, injected_corruptions) = injector.counts();
    let snap1 = obs::counters::snapshot();
    let counters: Vec<(&'static str, u64)> = snap1
        .iter()
        .filter(|(name, _)| name.starts_with("job.") || name.starts_with("chaos."))
        .map(|&(name, v1)| {
            let v0 = snap0
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0);
            (name, v1.saturating_sub(v0))
        })
        .collect();

    ChaosReport {
        admitted: job_report.submitted,
        burst_rejected,
        completed,
        failed,
        lost: job_report.submitted.saturating_sub(completed + failed),
        recoveries: job_report.recoveries,
        resumes: job_report.recoveries.saturating_sub(job_report.reinits),
        reinits: job_report.reinits,
        corrupt_detected: job_report.corrupt_detected,
        checkpoints: job_report.checkpoints,
        injected_panics,
        injected_hangs,
        injected_corruptions,
        kernel,
        kernel_probe,
        cp_checked,
        cp_mismatched,
        resume_boundaries,
        residual_violations,
        job_lines,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tier-1 smoke: a short, fault-heavy scenario must lose nothing,
    /// keep CP-ALS bitwise-deterministic, and emit valid report JSON.
    #[test]
    fn chaos_smoke_loses_nothing_and_stays_deterministic() {
        let cfg = ChaosConfig {
            duration: Duration::from_millis(300),
            jobs: 6,
            dim: 12,
            nnz: 400,
            tensors: 2,
            clients: 1,
            rank: 3,
            max_iters: 4,
            fault_rate: 0.35,
            max_step_seconds: 0.5,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        assert!(report.admitted >= cfg.jobs as u64, "initial wave admitted");
        assert_eq!(
            report.lost, 0,
            "every admitted job reached a terminal state"
        );
        assert_eq!(report.completed + report.failed, report.admitted);
        assert!(
            report.burst_rejected >= 1,
            "the queue-full burst must see a typed rejection"
        );
        assert_eq!(
            report.cp_mismatched, 0,
            "completed cp_als jobs must bitwise-match the uninterrupted reference"
        );
        assert_eq!(report.residual_violations, 0);
        for line in &report.job_lines {
            assert!(
                line.terminal == "completed" || line.terminal.starts_with("failed: "),
                "terminal state is typed: {}",
                line.terminal
            );
        }
        obs::json::Value::parse(&report.to_json()).expect("report JSON is schema-valid");
    }

    /// The accepted-progress rollback replay: re-emitted iterations
    /// supersede everything at or past their index.
    #[test]
    fn accepted_progress_replays_rollbacks() {
        let p = |iteration: u64, fit: f64, resumed: bool| JobProgress {
            iteration,
            fit,
            resumed,
        };
        let raw = [
            p(1, 0.1, false),
            p(2, 0.2, false),
            p(3, 0.3, false),
            // Resume fell back past the iteration-3 generation.
            p(3, 0.31, true),
            p(4, 0.4, false),
            // A later reinit replays from scratch.
            p(1, 0.11, true),
            p(2, 0.21, false),
        ];
        let accepted = accepted_progress(&raw);
        let got: Vec<(u64, f64)> = accepted.iter().map(|q| (q.iteration, q.fit)).collect();
        assert_eq!(got, vec![(1, 0.11), (2, 0.21)]);
        let full = accepted_progress(&raw[..5]);
        let got: Vec<(u64, f64)> = full.iter().map(|q| (q.iteration, q.fit)).collect();
        assert_eq!(got, vec![(1, 0.1), (2, 0.2), (3, 0.31), (4, 0.4)]);
    }
}
