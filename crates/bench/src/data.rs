//! Dataset materialization with an on-disk cache.
//!
//! Generating 30 datasets takes noticeably longer than reloading them, so
//! generated tensors are cached in the binary format under
//! `target/tenbench-data/` keyed by dataset id, nonzero count, and seed.

use std::fs;
use std::path::PathBuf;

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::hicoo::HicooTensor;
use tenbench_gen::{registry::find, Dataset};

use crate::suite::make_factors;

/// Factor-matrix rank shared by the kernel benchmarks (the paper's R=16).
pub const BENCH_RANK: usize = 16;

/// HiCOO block bits shared by the kernel benchmarks (B = 128).
pub const BENCH_BLOCK_BITS: u8 = 7;

/// Directory used for cached tensors.
pub fn cache_dir() -> PathBuf {
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    base.join("tenbench-data")
}

/// Materialize a dataset at `scale` times its default bench nonzero count,
/// using the cache when possible. Falls back to regeneration on any cache
/// problem.
pub fn dataset_tensor(d: &Dataset, scale: f64) -> CooTensor<f32> {
    let nnz = ((d.bench_nnz() as f64 * scale) as usize).max(1_000);
    let seed = d.default_seed();
    let dir = cache_dir();
    let path = dir.join(format!("{}-{nnz}-{seed:x}.tnb", d.id));
    if let Ok(file) = fs::File::open(&path) {
        if let Ok(t) = tenbench_io::bin::read_bin::<f32, _>(std::io::BufReader::new(file)) {
            return t;
        }
    }
    let t = d.generate_with(nnz, seed);
    if fs::create_dir_all(&dir).is_ok() {
        if let Ok(file) = fs::File::create(&path) {
            let _ = tenbench_io::bin::write_bin(&t, std::io::BufWriter::new(file));
        }
    }
    t
}

/// A materialized tensor in both formats plus factor matrices, so every
/// benchmark measures the same inputs without duplicating setup code.
pub struct KernelFixture {
    /// The tensor in COO format.
    pub coo: CooTensor<f32>,
    /// The same tensor in HiCOO format at [`BENCH_BLOCK_BITS`].
    pub hicoo: HicooTensor<f32>,
    /// One rank-[`BENCH_RANK`] factor matrix per mode.
    pub factors: Vec<DenseMatrix<f32>>,
}

/// Materialize dataset `id` at `scale` in both formats with factors.
///
/// Panics on an unknown dataset id: benchmarks hard-code ids from the
/// registry, so a miss is a programming error, not an input error.
pub fn hicoo_fixture(id: &str, scale: f64) -> KernelFixture {
    let d = find(id).unwrap_or_else(|| panic!("unknown dataset id {id:?}"));
    let coo = dataset_tensor(d, scale);
    let hicoo = HicooTensor::from_coo(&coo, BENCH_BLOCK_BITS).unwrap();
    let factors = make_factors(&coo, BENCH_RANK);
    KernelFixture {
        coo,
        hicoo,
        factors,
    }
}

/// Borrow a factor slice as the `&[&DenseMatrix]` view the kernels take.
pub fn factor_refs(factors: &[DenseMatrix<f32>]) -> Vec<&DenseMatrix<f32>> {
    factors.iter().collect()
}

/// The default dataset selection for quick runs: one small dataset per
/// family (regular Kronecker, irregular power-law, 4th-order, surrogate
/// real).
pub fn quick_ids() -> Vec<&'static str> {
    vec!["r1", "r10", "s1", "s4", "s7", "s13"]
}

#[cfg(test)]
mod tests {
    use tenbench_gen::registry::find;

    use super::*;

    #[test]
    fn cache_round_trip_is_stable() {
        let d = find("s4").unwrap();
        let a = dataset_tensor(d, 0.05);
        let b = dataset_tensor(d, 0.05); // second call hits the cache
        assert_eq!(a.to_map(), b.to_map());
        assert_eq!(a.nnz(), (d.bench_nnz() as f64 * 0.05) as usize);
    }

    #[test]
    fn fixture_formats_agree() {
        let fx = hicoo_fixture("s4", 0.05);
        assert_eq!(fx.coo.nnz(), fx.hicoo.nnz());
        assert_eq!(fx.factors.len(), fx.coo.order());
        for (mode, f) in fx.factors.iter().enumerate() {
            assert_eq!(f.rows(), fx.coo.shape().dim(mode) as usize);
            assert_eq!(f.cols(), BENCH_RANK);
        }
        assert_eq!(factor_refs(&fx.factors).len(), fx.factors.len());
    }

    #[test]
    fn quick_ids_resolve() {
        for id in quick_ids() {
            assert!(find(id).is_some(), "{id}");
        }
    }
}
