//! Supervised kernel execution: watchdog timeouts, panic isolation,
//! bounded retries, and automatic strategy fallback.
//!
//! A benchmark sweep over many (tensor, kernel, format, strategy) cells
//! should never be killed by one bad cell. Every trial here runs on a
//! dedicated worker thread under [`std::panic::catch_unwind`] with a
//! wall-clock watchdog; the supervisor turns panics, timeouts, kernel
//! errors, and invalid outputs into structured [`RunReport`]s instead of
//! crashes, and can fall back through a chain of alternative strategies
//! (e.g. `scheduled -> atomic -> privatized -> seq` for Mttkrp) so the
//! sweep still produces a trustworthy number for the cell.
//!
//! Output validation is part of supervision: a kernel that finishes fast
//! but writes NaNs (or the wrong numbers — a real hazard for the atomics
//! and scheduling machinery this suite benchmarks) is recorded as
//! `InvalidOutput`, not success. Mttkrp outputs are checked against the
//! sequential reference on a deterministic sample of rows.
//!
//! The state machine per cell (see DESIGN.md §7):
//!
//! ```text
//! for strategy in chain {            // chain has length 1 if fallback off
//!     for attempt in 0..=max_retries {
//!         run on worker thread under catch_unwind, watchdog max_seconds
//!         Ok + valid output  -> report Ok (first attempt) or Recovered
//!         Ok + invalid       -> next strategy   (deterministic failure)
//!         panic              -> next strategy   (deterministic failure)
//!         timeout / error    -> retry, then next strategy
//!     }
//! }
//! all exhausted -> terminal status from the first attempt's failure
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::mttkrp::{self, MttkrpStrategy};
use tenbench_core::simd::{self, KernelBackend};
use tenbench_obs as obs;

/// Tuning knobs for supervised execution.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Wall-clock cap per attempt in seconds (the whole attempt, including
    /// any internal repetitions). Non-finite or non-positive means no cap.
    pub max_seconds: f64,
    /// Extra attempts per strategy after a timeout or kernel error
    /// (transient failures). Panics and invalid outputs are treated as
    /// deterministic and skip straight to the next strategy.
    pub max_retries: usize,
    /// Whether to fall through to later strategies in the chain after the
    /// requested one fails. With `false` only the first trial is run.
    pub fallback: bool,
    /// Number of output rows sampled for checksum comparison.
    pub sample: usize,
    /// Relative tolerance for checksum comparison against the sequential
    /// reference (parallel reduction orders legitimately differ in the
    /// last bits).
    pub rel_tol: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_seconds: f64::INFINITY,
            max_retries: 1,
            fallback: true,
            sample: 64,
            rel_tol: 1e-4,
        }
    }
}

impl SupervisorConfig {
    /// Config with a wall-clock cap and defaults elsewhere.
    pub fn with_max_seconds(max_seconds: f64) -> Self {
        SupervisorConfig {
            max_seconds,
            ..Default::default()
        }
    }
}

/// What happened on one attempt of one strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// The kernel finished and its output passed validation.
    Ok {
        /// Wall-clock seconds for the attempt.
        time_s: f64,
    },
    /// The kernel panicked (caught; the sweep continues).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The watchdog fired before the kernel finished. The worker thread is
    /// detached and may still burn CPU until the kernel returns on its own.
    TimedOut {
        /// The cap that was exceeded.
        limit_s: f64,
    },
    /// The kernel finished but its output failed validation (NaN/Inf, or a
    /// checksum mismatch against the sequential reference).
    InvalidOutput {
        /// Why validation rejected the output.
        reason: String,
    },
    /// The kernel returned an error.
    Error {
        /// The error message.
        message: String,
    },
}

impl AttemptOutcome {
    fn kind(&self) -> &'static str {
        match self {
            AttemptOutcome::Ok { .. } => "ok",
            AttemptOutcome::Panicked { .. } => "panicked",
            AttemptOutcome::TimedOut { .. } => "timed_out",
            AttemptOutcome::InvalidOutput { .. } => "invalid_output",
            AttemptOutcome::Error { .. } => "error",
        }
    }

    fn detail(&self) -> Option<String> {
        match self {
            AttemptOutcome::Ok { .. } => None,
            AttemptOutcome::Panicked { message } => Some(message.clone()),
            AttemptOutcome::TimedOut { limit_s } => Some(format!("exceeded {limit_s} s")),
            AttemptOutcome::InvalidOutput { reason } => Some(reason.clone()),
            AttemptOutcome::Error { message } => Some(message.clone()),
        }
    }
}

/// One attempt: which strategy ran and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Strategy label (e.g. `"scheduled"`).
    pub strategy: String,
    /// Kernel backend the attempt ran with (`"simd"`/`"scalar"`), when the
    /// trial pinned one. `None` for trials that run whatever the session
    /// default resolves to.
    pub backend: Option<String>,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// Final status of a supervised cell.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// First strategy, first attempt succeeded.
    Ok,
    /// A retry or fallback strategy succeeded after the requested one
    /// failed.
    Recovered {
        /// The strategy that failed first.
        from: String,
    },
    /// Every attempt hit the watchdog (classified from the first failure).
    TimedOut,
    /// The kernel panicked and no fallback recovered.
    Panicked,
    /// The kernel produced NaN/Inf or checksum-mismatched output and no
    /// fallback recovered.
    InvalidOutput,
    /// The cell could not run at all (load/setup error, or the kernel
    /// returned an error on every attempt).
    Failed(String),
}

impl RunStatus {
    /// Machine-readable label, used in JSON and tables.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Recovered { .. } => "recovered",
            RunStatus::TimedOut => "timed_out",
            RunStatus::Panicked => "panicked",
            RunStatus::InvalidOutput => "invalid_output",
            RunStatus::Failed(_) => "failed",
        }
    }

    /// `true` for `Ok` and `Recovered` — the cell produced a trusted number.
    pub fn is_success(&self) -> bool {
        matches!(self, RunStatus::Ok | RunStatus::Recovered { .. })
    }
}

impl std::fmt::Display for RunStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunStatus::Recovered { from } => write!(f, "recovered(from {from})"),
            RunStatus::Failed(msg) => write!(f, "failed: {msg}"),
            other => f.write_str(other.label()),
        }
    }
}

/// The structured record for one supervised cell.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Cell label, e.g. `"mttkrp/coo/scheduled/mode0"`.
    pub cell: String,
    /// Final status.
    pub status: RunStatus,
    /// Every attempt in order.
    pub attempts: Vec<Attempt>,
    /// Strategy that produced the accepted result, if any.
    pub strategy: Option<String>,
    /// Kernel backend of the accepted attempt (`"simd"`/`"scalar"`), when
    /// the accepted trial pinned one.
    pub backend: Option<String>,
    /// Wall-clock seconds of the accepted attempt, if any. This is the
    /// guarded closure's time only — validation is timed separately in
    /// [`RunReport::validate_s`] so it never pollutes the kernel number.
    pub time_s: Option<f64>,
    /// Seconds the supervisor spent validating the accepted output.
    pub validate_s: Option<f64>,
    /// Checksum digest of the accepted output, if the validator computed
    /// one (sum of sampled row sums for matrices).
    pub checksum: Option<f64>,
}

impl RunReport {
    /// Report for a cell that could not even start (e.g. its input file was
    /// corrupt).
    pub fn failed(cell: &str, message: impl Into<String>) -> Self {
        RunReport {
            cell: cell.to_string(),
            status: RunStatus::Failed(message.into()),
            attempts: Vec::new(),
            strategy: None,
            backend: None,
            time_s: None,
            validate_s: None,
            checksum: None,
        }
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"cell\": \"{}\", \"status\": \"{}\"",
            escape_json(&self.cell),
            self.status.label()
        );
        if let RunStatus::Recovered { from } = &self.status {
            s.push_str(&format!(", \"recovered_from\": \"{}\"", escape_json(from)));
        }
        if let RunStatus::Failed(msg) = &self.status {
            s.push_str(&format!(", \"error\": \"{}\"", escape_json(msg)));
        }
        if let Some(st) = &self.strategy {
            s.push_str(&format!(", \"strategy\": \"{}\"", escape_json(st)));
        }
        if let Some(b) = &self.backend {
            s.push_str(&format!(", \"backend\": \"{}\"", escape_json(b)));
        }
        if let Some(t) = self.time_s {
            s.push_str(&format!(", \"time_s\": {}", obs::json::json_f64(t)));
        }
        if let Some(t) = self.validate_s {
            s.push_str(&format!(", \"validate_s\": {}", obs::json::json_f64(t)));
        }
        if let Some(c) = self.checksum {
            s.push_str(&format!(", \"checksum\": {}", obs::json::json_f64(c)));
        }
        s.push_str(", \"attempts\": [");
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"strategy\": \"{}\", \"outcome\": \"{}\"",
                escape_json(&a.strategy),
                a.outcome.kind()
            ));
            if let Some(b) = &a.backend {
                s.push_str(&format!(", \"backend\": \"{}\"", escape_json(b)));
            }
            if let AttemptOutcome::Ok { time_s } = a.outcome {
                s.push_str(&format!(", \"time_s\": {}", obs::json::json_f64(time_s)));
            }
            if let Some(d) = a.outcome.detail() {
                s.push_str(&format!(", \"detail\": \"{}\"", escape_json(&d)));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!("{}: {}", self.cell, self.status);
        if let (Some(strat), Some(t)) = (&self.strategy, self.time_s) {
            s.push_str(&format!(" via {strat} in {t:.3e} s"));
        }
        if self.attempts.len() > 1 {
            s.push_str(&format!(" ({} attempts)", self.attempts.len()));
        }
        s
    }
}

/// A full sweep's worth of cell reports.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-cell reports in sweep order.
    pub reports: Vec<RunReport>,
    /// Observability capture for the sweep (counter totals, span
    /// aggregates, pool telemetry), when the sweep ran traced.
    pub metrics: Option<obs::report::MetricsReport>,
}

impl SweepReport {
    /// Append one cell report.
    pub fn push(&mut self, r: RunReport) {
        self.reports.push(r);
    }

    /// Number of cells with the given status label.
    pub fn count(&self, label: &str) -> usize {
        self.reports
            .iter()
            .filter(|r| r.status.label() == label)
            .count()
    }

    /// `true` when every cell produced a trusted number.
    pub fn all_ok(&self) -> bool {
        self.reports.iter().all(|r| r.status.is_success())
    }

    /// Render as a JSON document with a summary header.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"summary\": {");
        for (i, label) in [
            "ok",
            "recovered",
            "timed_out",
            "panicked",
            "invalid_output",
            "failed",
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{label}\": {}", self.count(label)));
        }
        s.push_str("},\n  \"cells\": [\n");
        for (i, r) in self.reports.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&r.to_json());
            if i + 1 < self.reports.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]");
        if let Some(metrics) = &self.metrics {
            s.push_str(",\n  \"metrics\": ");
            s.push_str(&metrics.to_json());
        }
        s.push_str("\n}\n");
        s
    }
}

/// One runnable strategy in a fallback chain. The closure owns (or shares
/// via `Arc`) everything it needs, runs the kernel once — including any
/// internal timing repetitions — and returns the output or an error
/// message. It must not mutate state shared outside the closure: after a
/// watchdog timeout the worker thread is detached and may still be
/// running.
pub struct Trial<T> {
    /// Strategy label for reports.
    pub strategy: String,
    /// Kernel backend this trial pins, when it pins one. Only a report
    /// label — the closure itself decides what backend to pass to the
    /// kernel.
    pub backend: Option<KernelBackend>,
    /// The work. `Fn` (not `FnOnce`) so retries can re-run it.
    pub run: Arc<dyn Fn() -> Result<T, String> + Send + Sync>,
}

impl<T> Trial<T> {
    /// Build a trial from a label and closure.
    pub fn new(
        strategy: impl Into<String>,
        run: impl Fn() -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        Trial {
            strategy: strategy.into(),
            backend: None,
            run: Arc::new(run),
        }
    }

    /// Build a trial that pins a kernel backend (recorded per attempt and
    /// in the accepted report).
    pub fn with_backend(
        strategy: impl Into<String>,
        backend: KernelBackend,
        run: impl Fn() -> Result<T, String> + Send + Sync + 'static,
    ) -> Self {
        Trial {
            strategy: strategy.into(),
            backend: Some(backend),
            run: Arc::new(run),
        }
    }
}

impl<T> Clone for Trial<T> {
    fn clone(&self) -> Self {
        Trial {
            strategy: self.strategy.clone(),
            backend: self.backend,
            run: self.run.clone(),
        }
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

enum Guarded<T> {
    Done(Result<T, String>, f64),
    Panicked(String),
    TimedOut,
}

/// Run one closure on a worker thread under `catch_unwind` with a
/// wall-clock watchdog. On timeout the worker is detached, not killed —
/// Rust offers no safe thread cancellation — so a hung kernel keeps its
/// CPU until it returns, but the supervisor (and the sweep) moves on.
fn run_guarded<T: Send + 'static>(
    run: Arc<dyn Fn() -> Result<T, String> + Send + Sync>,
    max_seconds: f64,
) -> Guarded<T> {
    let (tx, rx) = mpsc::channel();
    // The watchdog worker is a fresh thread, and thread-locals do not
    // inherit across spawns: relay the caller's trace context explicitly
    // so the attempt's spans and flight events charge to the request.
    let ctx = obs::ctx::current();
    let spawned = std::thread::Builder::new()
        .name("tenbench-supervised".into())
        .spawn(move || {
            let _ctx_guard = obs::ctx::install_opt(ctx);
            let t0 = Instant::now();
            let result = catch_unwind(AssertUnwindSafe(|| run()));
            let dt = t0.elapsed().as_secs_f64();
            // The receiver is gone iff the watchdog already fired.
            let _ = tx.send((result, dt));
        });
    if let Err(e) = spawned {
        return Guarded::Done(Err(format!("could not spawn worker thread: {e}")), 0.0);
    }
    let received = if max_seconds.is_finite() && max_seconds > 0.0 {
        match rx.recv_timeout(Duration::from_secs_f64(max_seconds)) {
            Ok(v) => v,
            Err(mpsc::RecvTimeoutError::Timeout) => return Guarded::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Guarded::Panicked("worker thread died without reporting".into())
            }
        }
    } else {
        match rx.recv() {
            Ok(v) => v,
            Err(_) => return Guarded::Panicked("worker thread died without reporting".into()),
        }
    };
    match received {
        (Ok(r), dt) => Guarded::Done(r, dt),
        (Err(p), _) => Guarded::Panicked(panic_message(p)),
    }
}

/// Run a fallback chain of trials under supervision.
///
/// `validate` inspects a finished output and either accepts it (optionally
/// returning a checksum digest to record) or rejects it with a reason,
/// which counts as `InvalidOutput` for that strategy. Returns the report
/// and, on success, the accepted output.
pub fn supervise<T: Send + 'static>(
    cell: &str,
    trials: &[Trial<T>],
    validate: impl Fn(&T) -> Result<Option<f64>, String>,
    cfg: &SupervisorConfig,
) -> (RunReport, Option<T>) {
    let mut attempts: Vec<Attempt> = Vec::new();
    for (ti, trial) in trials.iter().enumerate() {
        if ti > 0 && !cfg.fallback {
            break;
        }
        for _retry in 0..=cfg.max_retries {
            // Every attempt after the first — retry or fallback — counts
            // as a supervisor recovery action.
            if !attempts.is_empty() {
                obs::counters::SUPERVISOR_RETRIES.add(1);
                let kind = if ti > 0 {
                    obs::flight::FlightKind::Fallback
                } else {
                    obs::flight::FlightKind::Retry
                };
                obs::flight::note(kind, attempts.len() as u64);
            }
            obs::flight::note(obs::flight::FlightKind::ExecBegin, ti as u64);
            let guarded = {
                let _span = obs::span!("supervisor.attempt");
                run_guarded(trial.run.clone(), cfg.max_seconds)
            };
            // Validation is timed on its own: the attempt's `time_s` is
            // the guarded closure alone, so checksum digests never leak
            // into the reported kernel time.
            let timed_validate = |value: &T| {
                let _span = obs::span!("supervisor.validate");
                obs::counters::VALIDATIONS.add(1);
                let t0 = Instant::now();
                let r = validate(value);
                (r, t0.elapsed().as_secs_f64())
            };
            let outcome = match guarded {
                Guarded::Done(Ok(value), dt) => match timed_validate(&value) {
                    (Ok(checksum), validate_s) => {
                        obs::flight::note(
                            obs::flight::FlightKind::ExecOk,
                            (dt * 1e6) as u64, // microseconds
                        );
                        let first_try = attempts.is_empty();
                        let from = attempts
                            .first()
                            .map(|a| a.strategy.clone())
                            .unwrap_or_default();
                        attempts.push(Attempt {
                            strategy: trial.strategy.clone(),
                            backend: trial.backend.map(|b| b.name().to_string()),
                            outcome: AttemptOutcome::Ok { time_s: dt },
                        });
                        let report = RunReport {
                            cell: cell.to_string(),
                            status: if first_try {
                                RunStatus::Ok
                            } else {
                                RunStatus::Recovered { from }
                            },
                            attempts,
                            strategy: Some(trial.strategy.clone()),
                            backend: trial.backend.map(|b| b.name().to_string()),
                            time_s: Some(dt),
                            validate_s: Some(validate_s),
                            checksum,
                        };
                        return (report, Some(value));
                    }
                    (Err(reason), _) => {
                        obs::flight::dump(
                            "invalid_output",
                            obs::flight::FlightKind::InvalidOutput,
                            obs::ctx::current_id(),
                            &format!(
                                "{cell}: strategy {} produced invalid output: {reason}",
                                trial.strategy
                            ),
                        );
                        AttemptOutcome::InvalidOutput { reason }
                    }
                },
                Guarded::Done(Err(message), _) => AttemptOutcome::Error { message },
                Guarded::Panicked(message) => {
                    obs::flight::dump(
                        "panic",
                        obs::flight::FlightKind::Panic,
                        obs::ctx::current_id(),
                        &format!("{cell}: strategy {} panicked: {message}", trial.strategy),
                    );
                    AttemptOutcome::Panicked { message }
                }
                Guarded::TimedOut => {
                    obs::flight::dump(
                        "timeout",
                        obs::flight::FlightKind::Timeout,
                        obs::ctx::current_id(),
                        &format!(
                            "{cell}: strategy {} exceeded the {:.1}s watchdog",
                            trial.strategy, cfg.max_seconds
                        ),
                    );
                    AttemptOutcome::TimedOut {
                        limit_s: cfg.max_seconds,
                    }
                }
            };
            // Panics and invalid outputs are deterministic: retrying the
            // same strategy would fail the same way, so move on.
            let deterministic = matches!(
                outcome,
                AttemptOutcome::Panicked { .. } | AttemptOutcome::InvalidOutput { .. }
            );
            attempts.push(Attempt {
                strategy: trial.strategy.clone(),
                backend: trial.backend.map(|b| b.name().to_string()),
                outcome,
            });
            if deterministic {
                break;
            }
        }
    }
    // Everything failed: classify from the first attempt (what the user
    // asked for), with the full attempt log preserved for diagnosis.
    let status = match attempts.first().map(|a| &a.outcome) {
        Some(AttemptOutcome::TimedOut { .. }) => RunStatus::TimedOut,
        Some(AttemptOutcome::Panicked { .. }) => RunStatus::Panicked,
        Some(AttemptOutcome::InvalidOutput { .. }) => RunStatus::InvalidOutput,
        Some(AttemptOutcome::Error { message }) => RunStatus::Failed(message.clone()),
        _ => RunStatus::Failed("no strategies to try".into()),
    };
    (
        RunReport {
            cell: cell.to_string(),
            status,
            attempts,
            strategy: None,
            backend: None,
            time_s: None,
            validate_s: None,
            checksum: None,
        },
        None,
    )
}

/// Deterministic sample of row sums: `sample` rows at a fixed stride, each
/// summed in `f64`. Two matrices computed by different (correct) parallel
/// strategies agree on this digest to within reduction-order noise.
pub fn matrix_row_digest(m: &DenseMatrix<f32>, sample: usize) -> Vec<f64> {
    let rows = m.rows();
    if rows == 0 || sample == 0 {
        return Vec::new();
    }
    let n = sample.min(rows);
    let step = rows / n;
    (0..n)
        .map(|k| m.row(k * step).iter().map(|&v| v as f64).sum())
        .collect()
}

/// Validate a kernel output matrix: finite everywhere (on the full data,
/// not just the sample) and row digests within `rel_tol` of the reference.
/// On success returns the digest sum as the recorded checksum.
pub fn validate_matrix(
    out: &DenseMatrix<f32>,
    reference: &[f64],
    sample: usize,
    rel_tol: f64,
) -> Result<Option<f64>, String> {
    let bad = out.data().iter().filter(|v| !v.is_finite()).count();
    if bad > 0 {
        return Err(format!("{bad} non-finite values in output"));
    }
    let digest = matrix_row_digest(out, sample);
    if digest.len() != reference.len() {
        return Err(format!(
            "digest length {} != reference {}",
            digest.len(),
            reference.len()
        ));
    }
    for (i, (&got, &want)) in digest.iter().zip(reference).enumerate() {
        let scale = want.abs().max(1.0);
        if (got - want).abs() > rel_tol * scale {
            return Err(format!(
                "checksum mismatch at sampled row {i}: got {got:.6e}, reference {want:.6e}"
            ));
        }
    }
    Ok(Some(digest.iter().sum()))
}

/// The COO Mttkrp fallback chain: the requested strategy first, then the
/// remainder of `scheduled -> atomic -> privatized -> seq` (so `seq`, the
/// trusted reference implementation, is the terminal fallback unless it
/// was the one requested).
pub fn mttkrp_chain(requested: MttkrpStrategy) -> Vec<MttkrpStrategy> {
    use MttkrpStrategy::*;
    let mut chain = vec![requested];
    for s in [Scheduled, Atomic, Privatized, Seq] {
        if !chain.contains(&s) {
            chain.push(s);
        }
    }
    chain
}

fn strategy_label(s: MttkrpStrategy) -> &'static str {
    match s {
        MttkrpStrategy::Seq => "seq",
        MttkrpStrategy::Atomic => "atomic",
        MttkrpStrategy::Privatized => "privatized",
        MttkrpStrategy::RowLocked => "row_locked",
        MttkrpStrategy::Scheduled => "scheduled",
    }
}

/// Expand a strategy chain into (strategy, backend) steps. When the active
/// backend is SIMD, the requested strategy is retried with the scalar
/// backend before the chain moves on to other strategies — a failure in
/// the vector path should not cost the requested strategy — and the later
/// strategies run scalar (by the time the chain reaches them the vector
/// path is already suspect).
fn backend_steps<S: Copy>(chain: Vec<S>, active: KernelBackend) -> Vec<(S, KernelBackend)> {
    let mut steps = Vec::with_capacity(chain.len() + 1);
    for (i, strat) in chain.into_iter().enumerate() {
        if i == 0 {
            steps.push((strat, active));
            if active == KernelBackend::Simd {
                steps.push((strat, KernelBackend::Scalar));
            }
        } else {
            steps.push((strat, KernelBackend::Scalar));
        }
    }
    steps
}

/// Build the COO Mttkrp trial chain for one mode. Inputs are shared via
/// `Arc` so detached (timed-out) workers cannot outlive their data.
pub fn mttkrp_coo_trials(
    x: &Arc<CooTensor<f32>>,
    factors: &Arc<Vec<DenseMatrix<f32>>>,
    mode: usize,
    requested: MttkrpStrategy,
    fallback: bool,
) -> Vec<Trial<DenseMatrix<f32>>> {
    mttkrp_coo_trials_with_backend(
        x,
        factors,
        mode,
        requested,
        fallback,
        simd::current_backend(),
    )
}

/// [`mttkrp_coo_trials`] with an explicit active backend (tests pin it).
pub fn mttkrp_coo_trials_with_backend(
    x: &Arc<CooTensor<f32>>,
    factors: &Arc<Vec<DenseMatrix<f32>>>,
    mode: usize,
    requested: MttkrpStrategy,
    fallback: bool,
    active: KernelBackend,
) -> Vec<Trial<DenseMatrix<f32>>> {
    let chain = if fallback {
        mttkrp_chain(requested)
    } else {
        vec![requested]
    };
    backend_steps(chain, active)
        .into_iter()
        .map(|(strat, backend)| {
            let x = x.clone();
            let factors = factors.clone();
            Trial::with_backend(strategy_label(strat), backend, move || {
                let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
                mttkrp::mttkrp_with_backend(&x, &frefs, mode, strat, backend)
                    .map_err(|e| e.to_string())
            })
        })
        .collect()
}

/// Build the HiCOO Mttkrp trial chain for one mode: `scheduled -> atomic
/// -> seq`, rotated so the requested strategy runs first (`privatized` and
/// `row_locked` map to the atomic HiCOO kernel).
pub fn mttkrp_hicoo_trials(
    hx: &Arc<HicooTensor<f32>>,
    factors: &Arc<Vec<DenseMatrix<f32>>>,
    mode: usize,
    requested: MttkrpStrategy,
    fallback: bool,
) -> Vec<Trial<DenseMatrix<f32>>> {
    mttkrp_hicoo_trials_with_backend(
        hx,
        factors,
        mode,
        requested,
        fallback,
        simd::current_backend(),
    )
}

/// [`mttkrp_hicoo_trials`] with an explicit active backend (tests pin it).
pub fn mttkrp_hicoo_trials_with_backend(
    hx: &Arc<HicooTensor<f32>>,
    factors: &Arc<Vec<DenseMatrix<f32>>>,
    mode: usize,
    requested: MttkrpStrategy,
    fallback: bool,
    active: KernelBackend,
) -> Vec<Trial<DenseMatrix<f32>>> {
    let requested = match requested {
        MttkrpStrategy::Scheduled => "scheduled",
        MttkrpStrategy::Seq => "seq",
        _ => "atomic",
    };
    let mut chain = vec![requested];
    for s in ["scheduled", "atomic", "seq"] {
        if !chain.contains(&s) {
            chain.push(s);
        }
    }
    if !fallback {
        chain.truncate(1);
    }
    backend_steps(chain, active)
        .into_iter()
        .map(|(name, backend)| {
            let hx = hx.clone();
            let factors = factors.clone();
            Trial::with_backend(name, backend, move || {
                let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
                match name {
                    "scheduled" => mttkrp::mttkrp_hicoo_sched_backend(&hx, &frefs, mode, backend),
                    "seq" => mttkrp::mttkrp_hicoo_seq_backend(&hx, &frefs, mode, backend),
                    _ => mttkrp::mttkrp_hicoo_backend(&hx, &frefs, mode, backend),
                }
                .map_err(|e| e.to_string())
            })
        })
        .collect()
}

/// Sequential-reference row digest for Mttkrp, computed unguarded (the
/// sequential kernel is the trust anchor).
pub fn mttkrp_reference_digest(
    x: &CooTensor<f32>,
    factors: &[DenseMatrix<f32>],
    mode: usize,
    sample: usize,
) -> Result<Vec<f64>, String> {
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let reference = mttkrp::mttkrp_seq(x, &frefs, mode).map_err(|e| e.to_string())?;
    Ok(matrix_row_digest(&reference, sample))
}

/// Run one supervised Mttkrp cell (either format) with checksum validation
/// against the sequential reference. Returns the report and the accepted
/// output matrix.
#[allow(clippy::too_many_arguments)]
pub fn supervised_mttkrp(
    cell: &str,
    x: &Arc<CooTensor<f32>>,
    factors: &Arc<Vec<DenseMatrix<f32>>>,
    mode: usize,
    hicoo: Option<&Arc<HicooTensor<f32>>>,
    requested: MttkrpStrategy,
    cfg: &SupervisorConfig,
) -> (RunReport, Option<DenseMatrix<f32>>) {
    let reference = match mttkrp_reference_digest(x, factors, mode, cfg.sample) {
        Ok(r) => r,
        Err(e) => {
            return (
                RunReport::failed(cell, format!("sequential reference failed: {e}")),
                None,
            )
        }
    };
    let trials = match hicoo {
        Some(hx) => mttkrp_hicoo_trials(hx, factors, mode, requested, cfg.fallback),
        None => mttkrp_coo_trials(x, factors, mode, requested, cfg.fallback),
    };
    supervise(
        cell,
        &trials,
        |out| validate_matrix(out, &reference, cfg.sample, cfg.rel_tol),
        cfg,
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A shared counter for tests and demos that need a trial to fail a fixed
/// number of times before succeeding.
#[derive(Debug, Default)]
pub struct FlakyCounter(AtomicUsize);

impl FlakyCounter {
    /// New counter at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(FlakyCounter(AtomicUsize::new(0)))
    }

    /// Increment and return the pre-increment count.
    pub fn bump(&self) -> usize {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenbench_core::shape::Shape;

    fn cfg_fast() -> SupervisorConfig {
        SupervisorConfig {
            max_seconds: 0.25,
            ..Default::default()
        }
    }

    fn accept<T>(_: &T) -> Result<Option<f64>, String> {
        Ok(None)
    }

    #[test]
    fn first_try_success_is_ok() {
        let trials = vec![Trial::new("a", || Ok(42))];
        let (r, v) = supervise("cell", &trials, accept, &SupervisorConfig::default());
        assert_eq!(r.status, RunStatus::Ok);
        assert_eq!(v, Some(42));
        assert_eq!(r.strategy.as_deref(), Some("a"));
        assert_eq!(r.attempts.len(), 1);
        assert!(r.time_s.is_some());
        // Validation is timed separately from the attempt itself.
        assert!(r.validate_s.is_some());
    }

    #[test]
    fn panic_falls_back_to_next_strategy() {
        let trials = vec![
            Trial::new("bad", || -> Result<i32, String> { panic!("injected") }),
            Trial::new("good", || Ok(7)),
        ];
        let (r, v) = supervise("cell", &trials, accept, &SupervisorConfig::default());
        assert_eq!(r.status, RunStatus::Recovered { from: "bad".into() });
        assert_eq!(v, Some(7));
        // Panic is deterministic: exactly one attempt on "bad", no retry.
        assert_eq!(r.attempts.len(), 2);
        assert!(matches!(
            r.attempts[0].outcome,
            AttemptOutcome::Panicked { .. }
        ));
    }

    #[test]
    fn timeout_is_detected_and_retried() {
        let trials = vec![Trial::new("slow", || -> Result<i32, String> {
            std::thread::sleep(Duration::from_secs(2));
            Ok(1)
        })];
        let t0 = Instant::now();
        let (r, v) = supervise("cell", &trials, accept, &cfg_fast());
        assert_eq!(r.status, RunStatus::TimedOut);
        assert!(v.is_none());
        // 1 + max_retries attempts, each capped at 0.25 s.
        assert_eq!(r.attempts.len(), 2);
        assert!(t0.elapsed().as_secs_f64() < 1.5);
    }

    #[test]
    fn timeout_recovers_via_fallback() {
        let trials = vec![
            Trial::new("slow", || -> Result<i32, String> {
                std::thread::sleep(Duration::from_secs(2));
                Ok(1)
            }),
            Trial::new("fast", || Ok(2)),
        ];
        let cfg = SupervisorConfig {
            max_seconds: 0.2,
            max_retries: 0,
            ..Default::default()
        };
        let (r, v) = supervise("cell", &trials, accept, &cfg);
        assert_eq!(
            r.status,
            RunStatus::Recovered {
                from: "slow".into()
            }
        );
        assert_eq!(v, Some(2));
    }

    #[test]
    fn transient_error_retries_same_strategy() {
        let counter = FlakyCounter::new();
        let c = counter.clone();
        let trials = vec![Trial::new("flaky", move || {
            if c.bump() == 0 {
                Err("transient".to_string())
            } else {
                Ok(5)
            }
        })];
        let (r, v) = supervise("cell", &trials, accept, &SupervisorConfig::default());
        assert_eq!(
            r.status,
            RunStatus::Recovered {
                from: "flaky".into()
            }
        );
        assert_eq!(v, Some(5));
        assert_eq!(r.attempts.len(), 2);
    }

    #[test]
    fn invalid_output_falls_back() {
        let trials = vec![
            Trial::new("wrong", || Ok(-1)),
            Trial::new("right", || Ok(1)),
        ];
        let validate = |v: &i32| {
            if *v > 0 {
                Ok(Some(*v as f64))
            } else {
                Err("negative output".to_string())
            }
        };
        let (r, v) = supervise("cell", &trials, validate, &SupervisorConfig::default());
        assert_eq!(
            r.status,
            RunStatus::Recovered {
                from: "wrong".into()
            }
        );
        assert_eq!(v, Some(1));
        assert_eq!(r.checksum, Some(1.0));
        assert!(matches!(
            r.attempts[0].outcome,
            AttemptOutcome::InvalidOutput { .. }
        ));
    }

    #[test]
    fn fallback_off_stops_after_first_strategy() {
        let trials = vec![
            Trial::new("bad", || -> Result<i32, String> { panic!("injected") }),
            Trial::new("good", || Ok(7)),
        ];
        let cfg = SupervisorConfig {
            fallback: false,
            ..Default::default()
        };
        let (r, v) = supervise("cell", &trials, accept, &cfg);
        assert_eq!(r.status, RunStatus::Panicked);
        assert!(v.is_none());
        assert_eq!(r.attempts.len(), 1);
    }

    #[test]
    fn persistent_error_becomes_failed() {
        let trials = vec![Trial::new("err", || -> Result<i32, String> {
            Err("disk on fire".to_string())
        })];
        let cfg = SupervisorConfig {
            fallback: false,
            ..Default::default()
        };
        let (r, _) = supervise("cell", &trials, accept, &cfg);
        assert!(matches!(r.status, RunStatus::Failed(ref m) if m.contains("disk on fire")));
    }

    #[test]
    fn json_report_has_expected_fields() {
        let trials = vec![
            Trial::new("bad", || -> Result<i32, String> {
                panic!("with \"quotes\"")
            }),
            Trial::new("good", || Ok(7)),
        ];
        let (r, _) = supervise("cell-1", &trials, accept, &SupervisorConfig::default());
        let j = r.to_json();
        assert!(j.contains("\"cell\": \"cell-1\""), "{j}");
        assert!(j.contains("\"status\": \"recovered\""), "{j}");
        assert!(j.contains("\"recovered_from\": \"bad\""), "{j}");
        assert!(j.contains("\"validate_s\""), "{j}");
        assert!(j.contains("\\\"quotes\\\""), "{j}");

        let mut sweep = SweepReport::default();
        sweep.push(r);
        sweep.push(RunReport::failed("cell-2", "corrupt input"));
        assert_eq!(sweep.count("recovered"), 1);
        assert_eq!(sweep.count("failed"), 1);
        assert!(!sweep.all_ok());
        sweep.metrics = Some(obs::report::MetricsReport {
            counters: vec![("kernel.flops".into(), 42)],
            ..Default::default()
        });
        let j = sweep.to_json();
        assert!(j.contains("\"summary\""), "{j}");
        assert!(j.contains("\"error\": \"corrupt input\""), "{j}");
        assert!(j.contains("\"metrics\""), "{j}");
        obs::json::Value::parse(&j).expect("sweep JSON with metrics parses");
    }

    fn small_tensor() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![8, 8, 8]),
            (0..64u32)
                .map(|i| {
                    (
                        vec![i % 8, (i / 8) % 8, (i * 3) % 8],
                        (i as f32) * 0.5 + 1.0,
                    )
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn supervised_mttkrp_matches_reference_in_both_formats() {
        let x = Arc::new(small_tensor());
        let factors = Arc::new(crate::suite::make_factors(&x, 4));
        let hx = Arc::new(HicooTensor::from_coo(&x, 2).unwrap());
        let cfg = SupervisorConfig::default();
        for mode in 0..3 {
            let (r, out) = supervised_mttkrp(
                &format!("coo/mode{mode}"),
                &x,
                &factors,
                mode,
                None,
                MttkrpStrategy::Scheduled,
                &cfg,
            );
            assert_eq!(r.status, RunStatus::Ok, "{}", r.summary());
            assert!(out.is_some());
            assert!(r.checksum.is_some());

            let (r, out) = supervised_mttkrp(
                &format!("hicoo/mode{mode}"),
                &x,
                &factors,
                mode,
                Some(&hx),
                MttkrpStrategy::Scheduled,
                &cfg,
            );
            assert_eq!(r.status, RunStatus::Ok, "{}", r.summary());
            assert!(out.is_some());
        }
    }

    #[test]
    fn validate_matrix_rejects_nan_and_mismatch() {
        let x = small_tensor();
        let factors = crate::suite::make_factors(&x, 4);
        let reference = mttkrp_reference_digest(&x, &factors, 0, 16).unwrap();
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        let good = mttkrp::mttkrp_seq(&x, &frefs, 0).unwrap();
        assert!(validate_matrix(&good, &reference, 16, 1e-4).is_ok());

        let mut poisoned = good.clone();
        poisoned.data_mut()[0] = f32::NAN;
        assert!(validate_matrix(&poisoned, &reference, 16, 1e-4).is_err());

        let mut wrong = good.clone();
        wrong.data_mut()[0] += 100.0;
        assert!(validate_matrix(&wrong, &reference, 16, 1e-4).is_err());
    }

    #[test]
    fn simd_failure_falls_back_to_scalar_backend_first() {
        // A chain the builders produce under an active SIMD backend: the
        // requested strategy twice (simd, then scalar), then the next
        // strategy scalar. The simd attempt panics; the scalar retry of
        // the SAME strategy must win before any cross-strategy fallback.
        let trials = vec![
            Trial::with_backend(
                "scheduled",
                KernelBackend::Simd,
                || -> Result<i32, String> { panic!("lane fault") },
            ),
            Trial::with_backend("scheduled", KernelBackend::Scalar, || Ok(11)),
            Trial::with_backend("atomic", KernelBackend::Scalar, || Ok(22)),
        ];
        let (r, v) = supervise("cell", &trials, accept, &SupervisorConfig::default());
        assert_eq!(
            r.status,
            RunStatus::Recovered {
                from: "scheduled".into()
            }
        );
        assert_eq!(v, Some(11));
        assert_eq!(r.strategy.as_deref(), Some("scheduled"));
        assert_eq!(r.backend.as_deref(), Some("scalar"));
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts[0].backend.as_deref(), Some("simd"));
        assert_eq!(r.attempts[1].backend.as_deref(), Some("scalar"));
        let j = r.to_json();
        assert!(j.contains("\"backend\": \"scalar\""), "{j}");
        assert!(j.contains("\"backend\": \"simd\""), "{j}");
    }

    #[test]
    fn trial_chains_insert_scalar_backend_retry_under_simd() {
        let x = Arc::new(small_tensor());
        let factors = Arc::new(crate::suite::make_factors(&x, 4));
        let hx = Arc::new(HicooTensor::from_coo(&x, 2).unwrap());

        let trials = mttkrp_coo_trials_with_backend(
            &x,
            &factors,
            0,
            MttkrpStrategy::Scheduled,
            true,
            KernelBackend::Simd,
        );
        let shape: Vec<(&str, Option<KernelBackend>)> = trials
            .iter()
            .map(|t| (t.strategy.as_str(), t.backend))
            .collect();
        assert_eq!(shape[0], ("scheduled", Some(KernelBackend::Simd)));
        assert_eq!(shape[1], ("scheduled", Some(KernelBackend::Scalar)));
        assert!(shape[2..]
            .iter()
            .all(|(_, b)| *b == Some(KernelBackend::Scalar)));

        // Under a scalar active backend there is no backend retry.
        let trials = mttkrp_hicoo_trials_with_backend(
            &hx,
            &factors,
            0,
            MttkrpStrategy::Scheduled,
            true,
            KernelBackend::Scalar,
        );
        let labels: Vec<&str> = trials.iter().map(|t| t.strategy.as_str()).collect();
        assert_eq!(labels, vec!["scheduled", "atomic", "seq"]);
        assert!(trials
            .iter()
            .all(|t| t.backend == Some(KernelBackend::Scalar)));

        // Every trial in the simd hicoo chain actually runs.
        for t in mttkrp_hicoo_trials_with_backend(
            &hx,
            &factors,
            0,
            MttkrpStrategy::Scheduled,
            true,
            KernelBackend::Simd,
        ) {
            assert!((t.run)().is_ok(), "{} should run", t.strategy);
        }
    }

    #[test]
    fn mttkrp_chain_starts_with_requested_and_ends_with_seq() {
        use MttkrpStrategy::*;
        assert_eq!(
            mttkrp_chain(Scheduled),
            vec![Scheduled, Atomic, Privatized, Seq]
        );
        assert_eq!(
            mttkrp_chain(Atomic),
            vec![Atomic, Scheduled, Privatized, Seq]
        );
        assert_eq!(mttkrp_chain(Seq), vec![Seq, Scheduled, Atomic, Privatized]);
        let rl = mttkrp_chain(RowLocked);
        assert_eq!(rl[0], RowLocked);
        assert_eq!(*rl.last().unwrap(), Seq);
    }
}
