//! Glue between the dependency-free `tenbench-obs` crate and the rest of
//! the harness: capture lifecycle (spans + counters + pool telemetry in
//! one switch) and the conversion from the rayon shim's [`PoolStats`] to
//! the report's [`PoolSnapshot`].
//!
//! `tenbench-obs` cannot depend on the pool (the pool instruments itself
//! *with* obs), so the join happens here, in the one crate that sees both
//! sides.

use tenbench_obs as obs;
use tenbench_obs::report::{MetricsReport, PoolSnapshot, WorkerSnap};

/// Convert the rayon shim's telemetry snapshot into the report form
/// (spawned workers first, then the aggregate caller lane).
pub fn pool_snapshot() -> PoolSnapshot {
    let s = rayon::pool_stats();
    let to_snap = |w: &rayon::WorkerStats| WorkerSnap {
        worker: w.worker,
        busy_ns: w.busy_ns,
        park_ns: w.park_ns,
        regions: w.regions,
        chunks: w.chunks,
    };
    let mut workers: Vec<WorkerSnap> = s.workers.iter().map(to_snap).collect();
    workers.push(to_snap(&s.caller));
    PoolSnapshot {
        workers,
        regions: s.regions,
        chunks_total: s.chunks_total,
        chunks_stolen: s.chunks_stolen,
    }
}

/// An in-flight observability capture: spans, counters, and pool
/// telemetry all recording. End it with [`Capture::finish`].
pub struct Capture {
    telemetry_was_on: bool,
}

impl Capture {
    /// Start recording: clears previous pool telemetry and counter state.
    pub fn begin() -> Capture {
        let telemetry_was_on = rayon::set_pool_telemetry(true);
        rayon::reset_pool_stats();
        obs::counters::POOL_WORKERS.set(rayon::current_num_threads() as u64);
        obs::start_trace();
        Capture { telemetry_was_on }
    }

    /// Stop recording and return the drained trace plus the merged
    /// metrics report (counters + span aggregates + pool snapshot).
    pub fn finish(self) -> (obs::Trace, MetricsReport) {
        let trace = obs::stop_trace();
        let mut report = MetricsReport::from_trace(&trace);
        report.pool = Some(pool_snapshot());
        rayon::set_pool_telemetry(self.telemetry_was_on);
        (trace, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn capture_collects_spans_counters_and_pool_telemetry() {
        let cap = Capture::begin();
        {
            let _outer = obs::span!("test.outer");
            let v: Vec<usize> = (0..50_000usize).into_par_iter().map(|i| i * 2).collect();
            std::hint::black_box(v);
            obs::counters::FLOPS.add(123);
        }
        let (trace, report) = cap.finish();
        assert!(trace
            .span_aggregates()
            .iter()
            .any(|s| s.name == "test.outer"));
        assert!(report
            .counters
            .iter()
            .any(|(n, v)| n == "kernel.flops" && *v >= 123));
        let pool = report.pool.as_ref().expect("pool snapshot attached");
        assert!(pool.regions >= 1);
        // The caller lane is always present, as the final entry.
        assert_eq!(pool.workers.last().unwrap().worker, usize::MAX);
        let json = report.to_json();
        assert!(json.contains("\"pool\""), "{json}");
        tenbench_obs::json::Value::parse(&json).expect("metrics JSON parses");
    }
}
