//! The supervised execution backend for the serving layer.
//!
//! `tenbench-serve` deliberately does not depend on this crate (the
//! dependency points the other way), so it executes through the
//! [`tenbench_serve::Executor`] trait. This module plugs the supervisor —
//! watchdog timeouts, panic isolation, strategy fallback, and checksum
//! validation — in behind that trait: every batch the service executes
//! gets the same protections as a harness sweep cell.

use std::sync::Arc;

use tenbench_core::kernels::mttkrp::MttkrpStrategy;
use tenbench_core::kernels::Kernel;
use tenbench_serve::{
    execute_direct, BatchJob, ExecOutcome, Executor, FormatKind, StepRunner, StepVerdict,
};

use crate::supervisor::{supervise, supervised_mttkrp, RunStatus, SupervisorConfig, Trial};

/// Runs serve batches through the supervisor. Mttkrp batches go through
/// [`supervised_mttkrp`] (strategy fallback plus checksum validation
/// against the sequential reference); the other kernels run their direct
/// dispatch under the watchdog with a finite-digest validation.
pub struct SupervisedExecutor {
    /// Supervision knobs applied to every batch.
    pub cfg: SupervisorConfig,
}

impl SupervisedExecutor {
    /// An executor with the given supervisor configuration.
    pub fn new(cfg: SupervisorConfig) -> Self {
        SupervisedExecutor { cfg }
    }
}

impl Default for SupervisedExecutor {
    fn default() -> Self {
        SupervisedExecutor::new(SupervisorConfig::default())
    }
}

impl Executor for SupervisedExecutor {
    fn execute(&self, job: &BatchJob) -> Result<ExecOutcome, String> {
        let cell = format!(
            "serve/{}/{}/mode{}",
            job.kernel.name(),
            job.format.as_str(),
            job.mode
        );
        match job.kernel {
            Kernel::Mttkrp => {
                let hicoo = match job.format {
                    FormatKind::Hicoo => Some(&job.hicoo),
                    FormatKind::Coo => None,
                };
                let (report, out) = supervised_mttkrp(
                    &cell,
                    &job.coo,
                    &job.factors,
                    job.mode,
                    hicoo,
                    MttkrpStrategy::Scheduled,
                    &self.cfg,
                );
                match out {
                    Some(_) => Ok(ExecOutcome {
                        digest: report.checksum.unwrap_or(0.0),
                        strategy: report.strategy.unwrap_or_else(|| "scheduled".to_string()),
                    }),
                    None => Err(status_message(&report.status)),
                }
            }
            _ => {
                let inner = Arc::new(job.clone());
                let trials = [Trial::new(job.kernel.name(), move || {
                    execute_direct(&inner)
                })];
                let (report, out) = supervise(
                    &cell,
                    &trials,
                    |o: &ExecOutcome| {
                        if o.digest.is_finite() {
                            Ok(Some(o.digest))
                        } else {
                            Err(format!("non-finite digest {}", o.digest))
                        }
                    },
                    &self.cfg,
                );
                match out {
                    Some(o) => Ok(o),
                    None => Err(status_message(&report.status)),
                }
            }
        }
    }
}

fn status_message(status: &RunStatus) -> String {
    format!("supervisor: {status}")
}

/// Runs decomposition-job iterations through the PR-2 supervisor: one
/// watchdogged, panic-isolated attempt per step, with retry and strategy
/// fallback disabled — the job engine owns recovery (checkpoint resume),
/// so the supervisor here is pure containment.
pub struct SupervisedStepRunner;

impl StepRunner for SupervisedStepRunner {
    fn run_step(
        &self,
        label: &str,
        step: Arc<dyn Fn() -> Result<(), String> + Send + Sync>,
        max_seconds: f64,
    ) -> StepVerdict {
        let cfg = SupervisorConfig {
            max_seconds,
            max_retries: 0,
            fallback: false,
            ..SupervisorConfig::default()
        };
        let trials = [Trial {
            strategy: label.to_string(),
            backend: None,
            run: step,
        }];
        let cell = format!("job/{label}");
        let (report, out) = supervise(&cell, &trials, |_: &()| Ok(None), &cfg);
        match (out, report.status) {
            (Some(()), _) => StepVerdict::Done,
            (None, RunStatus::TimedOut) => StepVerdict::TimedOut,
            (None, RunStatus::Panicked) => {
                let detail = report
                    .attempts
                    .last()
                    .and_then(|a| match &a.outcome {
                        crate::supervisor::AttemptOutcome::Panicked { message } => {
                            Some(message.clone())
                        }
                        _ => None,
                    })
                    .unwrap_or_else(|| "panic".to_string());
                StepVerdict::Panicked(detail)
            }
            (None, status) => StepVerdict::Failed(status_message(&status)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenbench_core::coo::CooTensor;
    use tenbench_core::shape::Shape;
    use tenbench_serve::{KernelService, Request, ServeConfig};

    #[test]
    fn supervised_executor_serves_all_kernels() {
        let svc = KernelService::start(
            ServeConfig {
                workers: 2,
                block_bits: 4,
                ..ServeConfig::default()
            },
            Box::new(SupervisedExecutor::default()),
        );
        let x = Arc::new(
            CooTensor::from_entries(
                Shape::new(vec![16, 16, 16]),
                (0..256u32)
                    .map(|i| {
                        (
                            vec![(i * 7) % 16, (i * 13) % 16, (i * 5) % 16],
                            (i % 31) as f32 * 0.25 + 0.5,
                        )
                    })
                    .collect(),
            )
            .unwrap(),
        );
        let mut tickets = Vec::new();
        for kernel in Kernel::ALL {
            for format in [FormatKind::Coo, FormatKind::Hicoo] {
                tickets.push(
                    svc.submit(Request {
                        kernel,
                        format,
                        mode: 1,
                        rank: 4,
                        tensor: x.clone(),
                        deadline: None,
                    })
                    .expect("admitted"),
                );
            }
        }
        for t in tickets {
            let r = t.wait().expect("supervised request served");
            assert!(r.digest.is_finite());
            assert!(!r.strategy.is_empty());
        }
        let report = svc.shutdown();
        assert_eq!(report.failed, 0);
        assert_eq!(report.completed, 10);
    }
}
