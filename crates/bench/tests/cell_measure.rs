//! Pins the call accounting of [`tenbench_bench::suite::measure_cell`]:
//! per-call figures must divide the counter deltas by the *true* number of
//! calls the cell made — the calibration warmup plus `reps × batch` timed
//! calls — not by `reps`. A closure that charges a fixed cost per call
//! makes any mismatch visible as a wrong per-call quotient.
//!
//! This lives in its own integration-test binary because the obs counters
//! are process-wide; sharing a process with other counter-charging tests
//! would pollute the deltas.

use std::time::Duration;

use tenbench_bench::suite::measure_cell;
use tenbench_obs::counters;

const FLOPS_PER_CALL: u64 = 1000;
const BYTES_PER_CALL: u64 = 64;

fn charge() {
    counters::FLOPS.add(FLOPS_PER_CALL);
    counters::BYTES.add(BYTES_PER_CALL);
    counters::KERNEL_CALLS.add(1);
}

#[test]
fn slow_cell_counts_warmup_plus_reps() {
    let reps = 3;
    // Slower than the 1 ms calibration threshold, so the inner batch is 1
    // and the cell makes exactly `reps + 1` calls (warmup included).
    let cell = measure_cell(reps, || {
        std::thread::sleep(Duration::from_millis(2));
        charge();
    });
    assert_eq!(cell.calls, reps as u64 + 1, "calls = warmup + reps");
    assert_eq!(cell.flops, cell.calls * FLOPS_PER_CALL);
    assert_eq!(cell.bytes, cell.calls * BYTES_PER_CALL);
    // The per-call figure the roofline annotation uses.
    assert_eq!(cell.flops / cell.calls.max(1), FLOPS_PER_CALL);
}

#[test]
fn fast_cell_counts_every_batched_call() {
    let reps = 2;
    // Much faster than 1 ms: time_avg batches the timed loop, so the call
    // count exceeds warmup + reps. The counters must still agree with the
    // per-call charge exactly — that is only true when every batched call
    // is counted.
    let cell = measure_cell(reps, charge);
    assert!(
        cell.calls > reps as u64 + 1,
        "expected inner batching, got {} calls",
        cell.calls
    );
    assert_eq!(cell.flops, cell.calls * FLOPS_PER_CALL);
    assert_eq!(cell.bytes, cell.calls * BYTES_PER_CALL);
    assert_eq!(cell.flops / cell.calls.max(1), FLOPS_PER_CALL);
}
