//! Degenerate-tensor battery: every kernel on both formats must handle an
//! empty (nnz = 0) tensor and a singleton (nnz = 1) tensor without
//! panicking and without producing non-finite values, and the statistics
//! and Roofline paths that summarize them must stay finite too. A serving
//! layer cannot pick its inputs, so "no nonzeros" is an input class, not
//! an error.

use std::sync::Arc;

use tenbench_bench::suite::{make_factors, make_partner};
use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp, Kernel};
use tenbench_core::shape::Shape;

const RANK: usize = 4;
const BLOCK_BITS: u8 = 3;

fn empty() -> CooTensor<f32> {
    CooTensor::empty(Shape::new(vec![8, 8, 8]))
}

fn singleton() -> CooTensor<f32> {
    CooTensor::from_entries(Shape::new(vec![8, 8, 8]), vec![(vec![3, 5, 2], 2.5)]).unwrap()
}

fn assert_finite(label: &str, vals: &[f32]) {
    for (i, v) in vals.iter().enumerate() {
        assert!(v.is_finite(), "{label}: non-finite value {v} at {i}");
    }
}

/// Run all five kernels on both formats for one degenerate tensor.
fn exercise(name: &str, x: &CooTensor<f32>) {
    let hx = HicooTensor::from_coo(x, BLOCK_BITS)
        .unwrap_or_else(|e| panic!("{name}: hicoo conversion failed: {e}"));
    let partner = make_partner(x);
    let hpartner = HicooTensor::from_coo(&partner, BLOCK_BITS).unwrap();
    let factors = make_factors(x, RANK);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();

    for mode in 0..x.order() {
        let label = |k: Kernel, f: &str| format!("{name}/{}/{f}/mode{mode}", k.name());

        let y = tew::tew_same_pattern(x, &partner, EwOp::Add).unwrap();
        assert_eq!(y.nnz(), x.nnz());
        assert_finite(&label(Kernel::Tew, "coo"), y.vals());
        let y = tew::tew_hicoo_same_pattern(&hx, &hpartner, EwOp::Add).unwrap();
        assert_finite(&label(Kernel::Tew, "hicoo"), y.vals());

        let y = ts::ts(x, 1.5, EwOp::Mul).unwrap();
        assert_finite(&label(Kernel::Ts, "coo"), y.vals());
        let y = ts::ts_hicoo(&hx, 1.5, EwOp::Mul).unwrap();
        assert_finite(&label(Kernel::Ts, "hicoo"), y.vals());

        let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| i as f32 * 0.5);
        let y = ttv::ttv(x, &v, mode).unwrap();
        assert_finite(&label(Kernel::Ttv, "coo"), y.vals());

        let y = ttm::ttm(x, frefs[mode], mode).unwrap();
        assert_finite(&label(Kernel::Ttm, "coo"), y.vals());
        let y = ttm::ttm_hicoo_sched(&hx, frefs[mode], mode).unwrap();
        assert_finite(&label(Kernel::Ttm, "hicoo"), y.vals());

        let y = mttkrp::mttkrp_atomic(x, &frefs, mode).unwrap();
        assert_finite(&label(Kernel::Mttkrp, "coo"), y.data());
        let y = mttkrp::mttkrp_hicoo_sched(&hx, &frefs, mode).unwrap();
        assert_finite(&label(Kernel::Mttkrp, "hicoo"), y.data());
    }
}

#[test]
fn empty_tensor_runs_every_kernel_on_both_formats() {
    exercise("empty", &empty());
}

#[test]
fn singleton_tensor_runs_every_kernel_on_both_formats() {
    exercise("singleton", &singleton());
}

#[test]
fn empty_tensor_statistics_stay_finite() {
    let x = empty();
    let hx = HicooTensor::from_coo(&x, BLOCK_BITS).unwrap();
    assert_eq!(hx.num_blocks(), 0);
    // The mean over zero blocks is defined as 0, not 0/0.
    assert!(hx.mean_nnz_per_block().is_finite());
    let stats = tenbench_gen::TensorStats::compute(&x, BLOCK_BITS);
    assert!(stats.density.is_finite());
    assert!(stats.mean_nnz_per_block.is_finite());
}

#[test]
fn roofline_annotation_of_a_zero_work_cell_stays_finite() {
    // A shed or empty cell reports zero flops and zero bytes; the model
    // must annotate it with finite figures (OI defined as 0), because
    // these numbers flow into hand-rolled JSON.
    let model = tenbench_roofline::Roofline::from_platform(&tenbench_roofline::PLATFORMS[0]);
    let z = model.annotate(0, 0, 0.0);
    assert!(z.oi.is_finite(), "oi = {}", z.oi);
    assert!(z.bound_gflops.is_finite());
    assert!(z.pct_of_roof.is_finite());
    let z = model.annotate(100, 0, 0.0);
    assert!(z.oi.is_finite(), "oi = {}", z.oi);
}

#[test]
fn degenerate_tensors_serve_through_the_service() {
    use tenbench_serve::{DirectExecutor, FormatKind, KernelService, Request, ServeConfig};
    let svc = KernelService::start(
        ServeConfig {
            workers: 1,
            block_bits: BLOCK_BITS,
            ..ServeConfig::default()
        },
        Box::new(DirectExecutor),
    );
    for x in [Arc::new(empty()), Arc::new(singleton())] {
        for kernel in Kernel::ALL {
            for format in [FormatKind::Coo, FormatKind::Hicoo] {
                let r = svc
                    .submit(Request {
                        kernel,
                        format,
                        mode: 0,
                        rank: RANK,
                        tensor: x.clone(),
                        deadline: None,
                    })
                    .expect("admitted")
                    .wait()
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}/{} on nnz={}: {e}",
                            kernel.name(),
                            format.as_str(),
                            x.nnz()
                        )
                    });
                assert!(r.digest.is_finite());
            }
        }
    }
    let report = svc.shutdown();
    assert_eq!(report.failed, 0);
}
