//! Observability integration over the real pool and kernels: span
//! structure must be identical at 1 and N pool threads, a traced suite
//! run must export a schema-valid chrome trace with pool telemetry, and
//! every suite row must carry Roofline annotations derived from the
//! instrumented counters.
//!
//! Capture state (spans, counters, pool telemetry) is process-wide, so
//! tests serialize through [`obs_lock`]; cargo runs this binary's tests
//! on parallel threads.

use std::sync::{Mutex, MutexGuard};

use tenbench_bench::metrics::Capture;
use tenbench_bench::suite::{run_cpu_suite, MachineModel};
use tenbench_core::coo::CooTensor;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::par::with_threads;
use tenbench_core::shape::Shape;
use tenbench_obs as obs;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn make_tensor(n: u32) -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![32, 32, 32]),
        (0..n)
            .map(|i| {
                let j = i.wrapping_mul(2654435761);
                (
                    vec![j % 32, (j / 32) % 32, (j / 1024) % 32],
                    (i % 97) as f32 * 0.5 + 1.0,
                )
            })
            .collect(),
    )
    .unwrap()
}

fn machine() -> MachineModel {
    MachineModel {
        name: "test".into(),
        ert_dram_gbs: 50.0,
        peak_gflops: 500.0,
    }
}

/// The instrumented conversion path (Morton sort + block build under a
/// `convert.hicoo` span) records its spans at phase level on the calling
/// thread, so the structure must not change with the pool width — only
/// the timings and pool telemetry may.
#[test]
fn conversion_span_structure_is_identical_at_1_and_4_threads() {
    let _g = obs_lock();
    let x = make_tensor(4000);
    let capture_structure = |threads: usize| {
        obs::start_trace();
        with_threads(threads, || {
            let h = HicooTensor::from_coo(&x, 4).unwrap();
            std::hint::black_box(h);
        });
        obs::stop_trace().span_structure()
    };
    let at1 = capture_structure(1);
    let at4 = capture_structure(4);
    assert_eq!(
        at1, at4,
        "phase-level span structure must be thread-count invariant"
    );
    assert!(
        at1.keys().any(|k| k.starts_with("convert.hicoo")),
        "conversion span missing: {at1:?}"
    );
}

/// A traced suite run end-to-end: chrome trace validates, pool telemetry
/// is attached, kernel counters are non-zero, and nested spans from the
/// kernels appear under their phases.
#[test]
fn traced_suite_run_exports_valid_chrome_trace_with_pool_telemetry() {
    let _g = obs_lock();
    let x = make_tensor(3000);
    let cap = Capture::begin();
    let rows = with_threads(2, || run_cpu_suite(&x, &machine(), 8, 4, 2));
    let (trace, report) = cap.finish();

    assert!(!rows.is_empty());
    for r in &rows {
        assert!(r.time_s > 0.0);
        assert!(r.gflops > 0.0, "{:?}: gflops from counters", r.kernel);
        assert!(r.ai_measured > 0.0, "{:?}: measured AI", r.kernel);
        assert!(r.pct_of_roof > 0.0, "{:?}: pct of roof", r.kernel);
        assert!(r.bound_by == "memory" || r.bound_by == "compute");
    }

    let json = trace.to_chrome_json();
    let summary = obs::json::validate_chrome_trace(&json).expect("trace validates");
    assert!(summary.duration_events > 0);

    let aggs = trace.span_aggregates();
    for expected in ["mttkrp.atomic", "ttv.coo", "convert.hicoo", "radix.sort"] {
        assert!(
            aggs.iter().any(|s| s.name == expected),
            "span {expected:?} missing from traced suite run"
        );
    }
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(counter("kernel.flops") > 0);
    assert!(counter("kernel.bytes") > 0);
    assert!(counter("kernel.calls") > 0);
    assert!(counter("radix.keys_sorted") > 0);

    let pool = report.pool.as_ref().expect("pool telemetry attached");
    assert!(pool.regions > 0, "parallel regions recorded");
    assert!(pool.chunks_total > 0);
    assert_eq!(pool.workers.last().unwrap().worker, usize::MAX);
}

/// Spans opened inside pool worker closures land on the worker's own
/// lane and still close properly when the region joins, including for
/// nested regions.
#[test]
fn spans_inside_nested_pool_regions_close_cleanly() {
    use rayon::prelude::*;
    let _g = obs_lock();
    obs::start_trace();
    {
        let _outer = obs::span!("nested.outer");
        (0..4usize).into_par_iter().with_min_len(1).for_each(|_| {
            let _worker = obs::span!("nested.region");
            (0..64usize).into_par_iter().with_min_len(16).for_each(|i| {
                std::hint::black_box(i * 3);
            });
        });
    }
    let trace = obs::stop_trace();
    let json = trace.to_chrome_json();
    obs::json::validate_chrome_trace(&json).expect("nested-region trace validates");
    let aggs = trace.span_aggregates();
    let outer = aggs.iter().find(|s| s.name == "nested.outer").unwrap();
    let region = aggs.iter().find(|s| s.name == "nested.region").unwrap();
    assert_eq!(outer.count, 1);
    assert_eq!(region.count, 4);
}
