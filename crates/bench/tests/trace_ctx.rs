//! Causal trace-context propagation across thread boundaries.
//!
//! `TraceCtx` lives in a thread-local, and neither the supervisor's
//! watchdog worker nor the pool's helper threads inherit thread-locals —
//! both must relay the submitter's context explicitly. These tests pin
//! that relay: the id minted at submission must be observed *inside* the
//! guarded closure (watchdog thread) and inside pool worker chunks, and
//! must survive supervisor retries, strategy demotion through the
//! fallback chain, and kernel-backend fallback — at 1 and 4 pool threads.
//!
//! The flight recorder's dump sink is process-global state, so the tests
//! that touch it serialize through a lock.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use tenbench_bench::supervisor::{supervise, RunStatus, SupervisorConfig, Trial};
use tenbench_core::simd::KernelBackend;
use tenbench_obs as obs;

fn ctx_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quiet_cfg() -> SupervisorConfig {
    SupervisorConfig {
        max_seconds: 30.0,
        max_retries: 1,
        fallback: true,
        ..SupervisorConfig::default()
    }
}

/// The id installed on the submitting thread is the id the guarded
/// closure observes on the watchdog thread, for every retry and for
/// every strategy in the fallback chain.
#[test]
fn ctx_survives_watchdog_retry_and_strategy_demotion() {
    let _g = ctx_lock();
    for threads in [1usize, 4] {
        let ctx = obs::TraceCtx::mint("request");
        let _guard = obs::ctx::install(ctx);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        // First strategy: panics (deterministic failure -> demotion).
        let s1 = seen.clone();
        let panicky = Trial::new("panicky", move || -> Result<u64, String> {
            s1.lock().unwrap().push(obs::ctx::current_id());
            panic!("deterministic failure");
        });
        // Second strategy: fails transiently once (retry), then succeeds.
        let s2 = seen.clone();
        let flaky_count = Arc::new(AtomicUsize::new(0));
        let flaky = Trial::new("flaky", move || -> Result<u64, String> {
            s2.lock().unwrap().push(obs::ctx::current_id());
            if flaky_count.fetch_add(1, Ordering::Relaxed) == 0 {
                Err("transient".into())
            } else {
                Ok(tenbench_core::par::with_threads(threads, || {
                    // Pool helpers also relay the ctx (tested directly
                    // below); here the value just proves the closure ran
                    // under the pool width being exercised.
                    obs::ctx::current_id()
                }))
            }
        });

        let (report, value) = supervise(
            "test/demotion",
            &[panicky, flaky],
            |_v: &u64| Ok(None),
            &quiet_cfg(),
        );
        assert!(
            matches!(report.status, RunStatus::Recovered { .. }),
            "panic then transient error then success must report Recovered: {:?}",
            report.status
        );
        assert_eq!(value, Some(ctx.id), "inner closure saw the minted id");
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 3, "panic + transient failure + success");
        for &id in seen.iter() {
            assert_eq!(
                id, ctx.id,
                "every watchdog attempt at {threads} threads observes the submitter's ctx"
            );
        }
    }
}

/// Backend fallback: a chain of trials pinned to different kernel
/// backends (SIMD first, scalar as the terminal fallback) keeps one
/// causal identity across the demotion.
#[test]
fn ctx_survives_backend_fallback() {
    let _g = ctx_lock();
    let ctx = obs::TraceCtx::mint("request");
    let _guard = obs::ctx::install(ctx);
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let s1 = seen.clone();
    let simd = Trial::with_backend(
        "simd",
        KernelBackend::Simd,
        move || -> Result<(), String> {
            s1.lock().unwrap().push(obs::ctx::current_id());
            Err("backend unsupported here".into())
        },
    );
    let s2 = seen.clone();
    let scalar = Trial::with_backend("scalar", KernelBackend::Scalar, move || {
        s2.lock().unwrap().push(obs::ctx::current_id());
        Ok(())
    });

    let cfg = SupervisorConfig {
        max_retries: 0,
        ..quiet_cfg()
    };
    let (report, value) = supervise("test/backend", &[simd, scalar], |_: &()| Ok(None), &cfg);
    assert!(matches!(report.status, RunStatus::Recovered { .. }));
    assert_eq!(report.backend.as_deref(), Some("scalar"));
    assert_eq!(value, Some(()));
    for &id in seen.lock().unwrap().iter() {
        assert_eq!(id, ctx.id, "both backends charged to the same request");
    }
}

/// Pool worker threads execute chunks under the submitter's ctx: every
/// chunk of a parallel region observes the minted id, at 1 and 4 threads.
#[test]
fn ctx_reaches_pool_worker_chunks() {
    let _g = ctx_lock();
    for threads in [1usize, 4] {
        let ctx = obs::TraceCtx::mint("region");
        let _guard = obs::ctx::install(ctx);
        let ids: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
        tenbench_core::par::with_threads(threads, || {
            use rayon::prelude::*;
            (0..64usize).into_par_iter().with_min_len(4).for_each(|_| {
                ids.lock().unwrap().insert(obs::ctx::current_id());
            });
        });
        let ids = ids.lock().unwrap();
        assert_eq!(
            *ids,
            HashSet::from([ctx.id]),
            "every chunk at {threads} threads ran under the submitter's ctx"
        );
    }
    // And with no ctx installed, workers see none either (id 0).
    let ids: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    tenbench_core::par::with_threads(2, || {
        use rayon::prelude::*;
        (0..16usize).into_par_iter().with_min_len(2).for_each(|_| {
            ids.lock().unwrap().insert(obs::ctx::current_id());
        });
    });
    assert_eq!(*ids.lock().unwrap(), HashSet::from([0]));
}

/// A supervisor-recorded panic snapshots the flight recorder: the dump
/// lands in the configured directory, validates, and names the faulting
/// context that was installed when the panic happened.
#[test]
fn panic_under_supervision_writes_a_validating_flight_dump() {
    let _g = ctx_lock();
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tenbench-flight-test-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    obs::flight::set_dump_dir(Some(dir.clone())).expect("dump dir created");

    let ctx = obs::TraceCtx::mint("request");
    let _guard = obs::ctx::install(ctx);
    let boom = Trial::new("boom", || -> Result<(), String> { panic!("kaboom") });
    let cfg = SupervisorConfig {
        max_retries: 0,
        fallback: false,
        ..quiet_cfg()
    };
    let (report, value) = supervise("test/dump", &[boom], |_: &()| Ok(None), &cfg);
    assert!(matches!(report.status, RunStatus::Panicked));
    assert!(value.is_none());

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir readable")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("flight-") && name.ends_with("-panic.json")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one panic dump: {dumps:?}");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    let summary = obs::flight::validate_flight_dump(&text).expect("dump validates");
    assert_eq!(summary.reason, "panic");
    assert_eq!(summary.ctx, ctx.id, "dump names the faulting request");
    assert!(summary.detail.contains("kaboom"));
    assert!(
        summary.ctx_events >= 1,
        "the fault event itself is charged to the ctx"
    );

    obs::flight::set_dump_dir(None).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
