//! The acceptance demo for supervised execution: a benchmark sweep where
//! one cell's kernel panics, one cell exceeds its wall-clock budget, and
//! one input file is corrupted on disk. The sweep must run to completion,
//! the `RunReport`s must record `Recovered` / `TimedOut` / `Failed` for
//! exactly those cells, and every other cell must be `Ok` with a checksum
//! matching the sequential reference.

use std::sync::Arc;
use std::time::Duration;

use tenbench_bench::suite::make_factors;
use tenbench_bench::supervisor::{
    mttkrp_reference_digest, supervise, supervised_mttkrp, validate_matrix, RunReport, RunStatus,
    SupervisorConfig, SweepReport, Trial,
};
use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::mttkrp::{self, MttkrpStrategy};
use tenbench_core::shape::Shape;
use tenbench_core::simd::KernelBackend;

fn make_tensor(seed: u32) -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![12, 12, 12]),
        (0..150u32)
            .map(|i| {
                let j = i.wrapping_mul(seed * 2 + 7);
                (
                    vec![j % 12, (j / 12) % 12, (j / 144) % 12],
                    (i as f32) * 0.25 + 1.0,
                )
            })
            .collect(),
    )
    .unwrap()
}

/// Fault injection on the backend axis: the SIMD-backend attempt of the
/// requested strategy dies, and the supervisor must fall back to the
/// *scalar backend of the same strategy* — not skip to the next strategy —
/// with a reference-matching checksum, recording which backend ran in the
/// report and in every attempt.
#[test]
fn simd_fault_recovers_on_scalar_backend_before_changing_strategy() {
    let x = Arc::new(make_tensor(3));
    let factors = Arc::new(make_factors(&x, 4));
    let hx = Arc::new(HicooTensor::from_coo(&x, 2).unwrap());
    let cfg = SupervisorConfig {
        max_retries: 0,
        ..Default::default()
    };
    let reference = mttkrp_reference_digest(&x, &factors, 0, cfg.sample).unwrap();

    // The chain `mttkrp_hicoo_trials_with_backend` would build under an
    // active SIMD backend, with the SIMD step replaced by an injected
    // fault.
    let (fa, ha) = (factors.clone(), hx.clone());
    let trials = vec![
        Trial::with_backend(
            "scheduled",
            KernelBackend::Simd,
            || -> Result<DenseMatrix<f32>, String> { panic!("injected SIMD fault") },
        ),
        Trial::with_backend("scheduled", KernelBackend::Scalar, move || {
            let frefs: Vec<&DenseMatrix<f32>> = fa.iter().collect();
            mttkrp::mttkrp_hicoo_sched_backend(&ha, &frefs, 0, KernelBackend::Scalar)
                .map_err(|e| e.to_string())
        }),
        Trial::new("atomic", || -> Result<DenseMatrix<f32>, String> {
            panic!("strategy fallback must not be reached")
        }),
    ];
    let (report, out) = supervise(
        "mttkrp/hicoo/backend-fault",
        &trials,
        |m| validate_matrix(m, &reference, cfg.sample, cfg.rel_tol),
        &cfg,
    );
    assert!(out.is_some(), "{}", report.summary());
    assert!(
        matches!(&report.status, RunStatus::Recovered { from } if from == "scheduled"),
        "{:?}",
        report.status
    );
    assert_eq!(report.strategy.as_deref(), Some("scheduled"));
    assert_eq!(report.backend.as_deref(), Some("scalar"));
    assert!(report.checksum.is_some());
    assert_eq!(report.attempts.len(), 2);
    assert_eq!(report.attempts[0].backend.as_deref(), Some("simd"));
    assert_eq!(report.attempts[1].backend.as_deref(), Some("scalar"));
    let json = report.to_json();
    assert!(json.contains("\"backend\": \"scalar\""), "{json}");
    assert!(json.contains("\"backend\": \"simd\""), "{json}");
}

#[test]
fn sweep_survives_panic_timeout_and_corruption() {
    let dir = std::env::temp_dir().join("tenbench-supervised-sweep");
    std::fs::create_dir_all(&dir).unwrap();

    // Three input files: two healthy TNB2 tensors and one with a flipped
    // payload bit.
    let paths = [
        dir.join("a.tnb"),
        dir.join("b.tnb"),
        dir.join("corrupt.tnb"),
    ];
    for (i, path) in paths.iter().take(2).enumerate() {
        let f = std::fs::File::create(path).unwrap();
        tenbench_io::bin::write_bin(&make_tensor(i as u32), std::io::BufWriter::new(f)).unwrap();
    }
    let mut bytes = std::fs::read(&paths[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&paths[2], &bytes).unwrap();

    let cfg = SupervisorConfig {
        max_seconds: 0.3,
        max_retries: 0,
        ..Default::default()
    };
    let mut sweep = SweepReport::default();

    for path in &paths {
        let cell_base = path.file_name().unwrap().to_string_lossy().into_owned();
        let x = match tenbench_io::bin::read_bin::<f32, _>(std::fs::File::open(path).unwrap()) {
            Ok(t) => Arc::new(t),
            Err(e) => {
                // The hardened reader rejected the file: the cell is
                // recorded as Failed and the sweep moves on.
                sweep.push(RunReport::failed(&cell_base, e.to_string()));
                continue;
            }
        };
        let factors = Arc::new(make_factors(&x, 4));
        let hx = Arc::new(HicooTensor::from_coo(&x, 2).unwrap());
        let reference = mttkrp_reference_digest(&x, &factors, 0, cfg.sample).unwrap();

        // Cell 1: injected panic in the first strategy; the atomic
        // fallback must recover with a reference-matching checksum.
        {
            let xa = x.clone();
            let fa = factors.clone();
            let trials = vec![
                Trial::new("injected_panic", || -> Result<DenseMatrix<f32>, String> {
                    panic!("injected fault for the sweep demo")
                }),
                Trial::new("atomic", move || {
                    let frefs: Vec<&DenseMatrix<f32>> = fa.iter().collect();
                    mttkrp::mttkrp_with(&xa, &frefs, 0, MttkrpStrategy::Atomic)
                        .map_err(|e| e.to_string())
                }),
            ];
            let (report, out) = supervise(
                &format!("{cell_base}/panic-cell"),
                &trials,
                |m| validate_matrix(m, &reference, cfg.sample, cfg.rel_tol),
                &cfg,
            );
            assert!(out.is_some(), "{}", report.summary());
            sweep.push(report);
        }

        // Cell 2: a kernel that hangs past the watchdog, with no fallback.
        {
            let trials = vec![Trial::new(
                "hung",
                || -> Result<DenseMatrix<f32>, String> {
                    std::thread::sleep(Duration::from_secs(5));
                    Ok(DenseMatrix::zeros(1, 1))
                },
            )];
            let (report, out) = supervise(
                &format!("{cell_base}/timeout-cell"),
                &trials,
                |_| Ok(None),
                &cfg,
            );
            assert!(out.is_none());
            sweep.push(report);
        }

        // Remaining cells: healthy supervised Mttkrp in both formats.
        for (fmt, hicoo) in [("coo", None), ("hicoo", Some(&hx))] {
            let (report, out) = supervised_mttkrp(
                &format!("{cell_base}/mttkrp-{fmt}"),
                &x,
                &factors,
                0,
                hicoo,
                MttkrpStrategy::Scheduled,
                &cfg,
            );
            assert!(out.is_some(), "{}", report.summary());
            sweep.push(report);
        }
    }

    // The sweep completed (we got here) with exactly the injected
    // failures: one corrupt file, and per healthy file one recovery and
    // one timeout.
    assert_eq!(sweep.reports.len(), 1 + 2 * 4);
    assert_eq!(sweep.count("failed"), 1);
    assert_eq!(sweep.count("recovered"), 2);
    assert_eq!(sweep.count("timed_out"), 2);
    assert_eq!(sweep.count("ok"), 4);
    assert_eq!(sweep.count("panicked"), 0);
    assert_eq!(sweep.count("invalid_output"), 0);

    for r in &sweep.reports {
        match &r.status {
            RunStatus::Ok => {
                assert!(
                    r.checksum.is_some(),
                    "ok cell without reference checksum: {}",
                    r.cell
                );
            }
            RunStatus::Recovered { from } => {
                assert_eq!(from, "injected_panic", "{}", r.cell);
                assert_eq!(r.strategy.as_deref(), Some("atomic"), "{}", r.cell);
                assert!(r.checksum.is_some(), "{}", r.cell);
            }
            RunStatus::TimedOut => assert!(r.cell.contains("timeout-cell"), "{}", r.cell),
            RunStatus::Failed(msg) => {
                assert!(r.cell.contains("corrupt"), "{}", r.cell);
                assert!(msg.contains("corrupt"), "unexpected failure detail: {msg}");
            }
            other => panic!("unexpected status {other:?} for {}", r.cell),
        }
    }

    // The aggregated JSON is well-formed enough to grep in CI artifacts.
    let json = sweep.to_json();
    assert!(json.contains("\"timed_out\": 2"), "{json}");
    assert!(json.contains("\"recovered\": 2"), "{json}");
    assert!(json.contains("\"failed\": 1"), "{json}");
    assert!(!sweep.all_ok());
}
