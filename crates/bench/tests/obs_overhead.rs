//! The tracing-overhead acceptance gate: a fully traced suite run must
//! cost < 5% wall time over an untraced run.
//!
//! This is the only test in its binary on purpose: cargo runs test
//! binaries sequentially, so nothing else competes for cores or toggles
//! the global capture state while the timing comparison runs. Untraced
//! and traced runs are interleaved and the best of three is kept on both
//! sides, which cancels one-off scheduling noise in either direction.

use std::time::Instant;

use tenbench_bench::metrics::Capture;
use tenbench_bench::suite::{run_cpu_suite, MachineModel};
use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;

fn make_tensor(n: u32) -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![64, 64, 64]),
        (0..n)
            .map(|i| {
                let j = i.wrapping_mul(2654435761);
                (
                    vec![j % 64, (j / 64) % 64, (j / 4096) % 64],
                    (i % 113) as f32 * 0.25 + 1.0,
                )
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn full_trace_costs_under_five_percent() {
    let x = make_tensor(30_000);
    let machine = MachineModel {
        name: "overhead".into(),
        ert_dram_gbs: 50.0,
        peak_gflops: 500.0,
    };
    let workload = || {
        std::hint::black_box(run_cpu_suite(&x, &machine, 8, 5, 2));
    };
    // Warm caches and the lazy pool once before timing anything.
    workload();

    let mut untraced = f64::INFINITY;
    let mut traced = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        workload();
        untraced = untraced.min(t0.elapsed().as_secs_f64());

        let cap = Capture::begin();
        let t0 = Instant::now();
        workload();
        traced = traced.min(t0.elapsed().as_secs_f64());
        let (trace, _) = cap.finish();
        assert_eq!(trace.dropped_events, 0, "capture must not drop events");
    }

    let ratio = traced / untraced;
    assert!(
        ratio < 1.05,
        "traced suite run is {:.2}% slower than untraced (budget: 5%): \
         untraced {untraced:.4}s, traced {traced:.4}s",
        (ratio - 1.0) * 100.0
    );
}
