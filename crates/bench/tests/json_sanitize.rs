//! Non-finite float regression: every hand-rolled JSON emitter in the
//! suite must map NaN/Infinity to `null` (the documented policy in
//! `tenbench_obs::json`) so the artifacts always parse. Before the fix,
//! `format!("{}", f64::NAN)` wrote the bare token `NaN` into reports —
//! invalid JSON that broke every downstream consumer of `BENCH_*.json`.

use tenbench_bench::supervisor::{Attempt, AttemptOutcome, RunReport, RunStatus};
use tenbench_obs::json::{json_f64, json_f64_fixed, Value};

/// A report whose every float slot is poisoned with a non-finite value —
/// exactly what a shed, failed, or zero-duration cell can produce.
fn poisoned_report() -> RunReport {
    RunReport {
        cell: "mttkrp/coo/scheduled/mode0".to_string(),
        status: RunStatus::Ok,
        attempts: vec![
            Attempt {
                strategy: "scheduled".to_string(),
                backend: Some("simd".to_string()),
                outcome: AttemptOutcome::Ok { time_s: f64::NAN },
            },
            Attempt {
                strategy: "atomic".to_string(),
                backend: None,
                outcome: AttemptOutcome::Ok {
                    time_s: f64::INFINITY,
                },
            },
        ],
        strategy: Some("scheduled".to_string()),
        backend: Some("simd".to_string()),
        time_s: Some(f64::NAN),
        validate_s: Some(f64::NEG_INFINITY),
        checksum: Some(f64::INFINITY),
    }
}

#[test]
fn run_report_with_non_finite_floats_still_emits_valid_json() {
    let json = poisoned_report().to_json();
    let v =
        Value::parse(&json).unwrap_or_else(|e| panic!("report JSON failed to parse: {e}\n{json}"));
    // The poisoned slots must surface as null, not as bare NaN/inf tokens.
    assert!(matches!(v.get("time_s"), Some(Value::Null)), "{json}");
    assert!(matches!(v.get("checksum"), Some(Value::Null)), "{json}");
}

#[test]
fn healthy_floats_round_trip_exactly() {
    for x in [
        0.0,
        -0.0,
        1.5,
        -2.25e-17,
        std::f64::consts::PI,
        1e300,
        5e-324,
    ] {
        let s = json_f64(x);
        let v = Value::parse(&s).unwrap();
        assert_eq!(v.as_f64(), Some(x), "{x} -> {s}");
    }
    assert_eq!(json_f64(f64::NAN), "null");
    assert_eq!(json_f64(f64::INFINITY), "null");
    assert_eq!(json_f64_fixed(f64::NAN, 3), "null");
    assert_eq!(json_f64_fixed(2.0 / 3.0, 3), "0.667");
}

#[test]
fn serve_report_json_parses_even_for_a_zero_work_service() {
    use tenbench_serve::{DirectExecutor, KernelService, ServeConfig};
    // A service that never ran a request has all-zero tallies; duration and
    // ratios must still be emitted as valid JSON.
    let svc = KernelService::start(ServeConfig::default(), Box::new(DirectExecutor));
    let report = svc.shutdown();
    let json = report.to_json();
    let v = Value::parse(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
    assert_eq!(v.get("completed").and_then(|c| c.as_f64()), Some(0.0));
}
