//! Criterion benchmarks behind Figures 4–5: the five CPU kernels over COO
//! and HiCOO on a representative irregular power-law tensor (`s4`) and a
//! regular Kronecker tensor (`s1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::{factor_refs, hicoo_fixture, BENCH_BLOCK_BITS, BENCH_RANK};
use tenbench_bench::suite::make_partner;
use tenbench_core::dense::DenseVector;
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_core::kernels::{mttkrp, tew, ts, ttm, ttv, EwOp, Kernel};
use tenbench_core::par::Schedule;

fn bench_dataset(c: &mut Criterion, id: &str) {
    let fx = hicoo_fixture(id, 0.25);
    let x = &fx.coo;
    let hx = &fx.hicoo;
    let y = make_partner(x);
    let hy = HicooTensor::from_coo(&y, BENCH_BLOCK_BITS).unwrap();
    let frefs = factor_refs(&fx.factors);
    let m = x.nnz() as u64;
    let order = x.order();
    let mode = order - 1;
    let mut xm = x.clone();
    let fp = xm.fibers(mode).unwrap();
    let g = GHicooTensor::from_coo_for_mode(x, BENCH_BLOCK_BITS, mode).unwrap();
    let gfp = g.fibers(mode).unwrap();
    let v = DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32);
    let u = &fx.factors[mode];

    let mut group = c.benchmark_group(format!("cpu/{id}"));
    group.throughput(Throughput::Elements(m));
    group.bench_function(BenchmarkId::new("Tew", "COO"), |b| {
        b.iter(|| tew::tew_same_pattern(x, &y, EwOp::Add).unwrap())
    });
    group.bench_function(BenchmarkId::new("Tew", "HiCOO"), |b| {
        b.iter(|| tew::tew_hicoo_same_pattern(hx, &hy, EwOp::Add).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ts", "COO"), |b| {
        b.iter(|| ts::ts(x, 1.01, EwOp::Mul).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ts", "HiCOO"), |b| {
        b.iter(|| ts::ts_hicoo(hx, 1.01, EwOp::Mul).unwrap())
    });
    group.throughput(Throughput::Elements(Kernel::Ttv.flops(order, m, 0)));
    group.bench_function(BenchmarkId::new("Ttv", "COO"), |b| {
        b.iter(|| ttv::ttv_prepared(&xm, &fp, &v, Schedule::default()).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ttv", "HiCOO"), |b| {
        b.iter(|| ttv::ttv_ghicoo(&g, &gfp, &v, Schedule::default()).unwrap())
    });
    group.throughput(Throughput::Elements(Kernel::Ttm.flops(
        order,
        m,
        BENCH_RANK as u64,
    )));
    group.bench_function(BenchmarkId::new("Ttm", "COO"), |b| {
        b.iter(|| ttm::ttm_prepared(&xm, &fp, u, Schedule::default()).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ttm", "HiCOO"), |b| {
        b.iter(|| ttm::ttm_ghicoo(&g, &gfp, u, Schedule::default()).unwrap())
    });
    group.throughput(Throughput::Elements(Kernel::Mttkrp.flops(
        order,
        m,
        BENCH_RANK as u64,
    )));
    group.bench_function(BenchmarkId::new("Mttkrp", "COO"), |b| {
        b.iter(|| mttkrp::mttkrp_atomic(x, &frefs, mode).unwrap())
    });
    group.bench_function(BenchmarkId::new("Mttkrp", "HiCOO"), |b| {
        b.iter(|| mttkrp::mttkrp_hicoo(hx, &frefs, mode).unwrap())
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_dataset(c, "s4");
    bench_dataset(c, "s1");
}

criterion_group! {
    name = cpu_kernels;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(cpu_kernels);
