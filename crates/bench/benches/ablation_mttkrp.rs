//! Ablation A2: Mttkrp parallelization strategy. The paper's reference is
//! nonzero-parallel with atomics ("the data race may influence its
//! performance differently depending on non-zero distributions"); this
//! bench compares it with the lock-avoiding alternatives the paper
//! deliberately leaves out of the reference implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_bench::suite::make_factors;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::kernels::mttkrp::{mttkrp_with, MttkrpStrategy};
use tenbench_gen::registry::find;

fn benches(c: &mut Criterion) {
    // s4 (irregular): a power-law mode concentrates updates on few rows —
    // the adversarial case for atomics. s1 (regular) spreads them out.
    for id in ["s4", "s1"] {
        let x = dataset_tensor(find(id).unwrap(), 0.25);
        let factors = make_factors(&x, 16);
        let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
        let m = x.nnz() as u64;
        let mut group = c.benchmark_group(format!("ablation/mttkrp/{id}"));
        group.throughput(Throughput::Elements(3 * m * 16));
        for (name, strat) in [
            ("seq", MttkrpStrategy::Seq),
            ("atomic", MttkrpStrategy::Atomic),
            ("privatized", MttkrpStrategy::Privatized),
            ("row_locked", MttkrpStrategy::RowLocked),
        ] {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| mttkrp_with(&x, &frefs, 0, strat).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = ablation_mttkrp;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_mttkrp);
