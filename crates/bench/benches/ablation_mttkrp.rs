//! Ablation A2: Mttkrp parallelization strategy. The paper's reference is
//! nonzero-parallel with atomics ("the data race may influence its
//! performance differently depending on non-zero distributions"); this
//! bench compares it with the lock-avoiding alternatives the paper
//! deliberately leaves out of the reference implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::{factor_refs, hicoo_fixture, BENCH_RANK};
use tenbench_core::kernels::mttkrp::{
    mttkrp_hicoo, mttkrp_hicoo_sched, mttkrp_with, MttkrpStrategy,
};

fn benches(c: &mut Criterion) {
    // s4 (irregular): a power-law mode concentrates updates on few rows —
    // the adversarial case for atomics. s1 (regular) spreads them out.
    for id in ["s4", "s1"] {
        let fx = hicoo_fixture(id, 0.25);
        let frefs = factor_refs(&fx.factors);
        let m = fx.coo.nnz() as u64;
        let mut group = c.benchmark_group(format!("ablation/mttkrp/{id}"));
        group.throughput(Throughput::Elements(3 * m * BENCH_RANK as u64));
        for (name, strat) in [
            ("seq", MttkrpStrategy::Seq),
            ("atomic", MttkrpStrategy::Atomic),
            ("privatized", MttkrpStrategy::Privatized),
            ("row_locked", MttkrpStrategy::RowLocked),
            ("scheduled", MttkrpStrategy::Scheduled),
        ] {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| mttkrp_with(&fx.coo, &frefs, 0, strat).unwrap())
            });
        }
        group.bench_function(BenchmarkId::from_parameter("hicoo_atomic"), |b| {
            b.iter(|| mttkrp_hicoo(&fx.hicoo, &frefs, 0).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("hicoo_scheduled"), |b| {
            b.iter(|| mttkrp_hicoo_sched(&fx.hicoo, &frefs, 0).unwrap())
        });
        group.finish();
    }
}

criterion_group! {
    name = ablation_mttkrp;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_mttkrp);
