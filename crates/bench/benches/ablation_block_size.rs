//! Ablation A1: HiCOO block size sweep (the paper fixes B = 128 "to fit
//! into the last-level cache in all platforms"; this bench shows what that
//! choice costs/buys for Mttkrp and Ttv).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_bench::suite::make_factors;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_core::kernels::{mttkrp, ttv};
use tenbench_core::par::Schedule;
use tenbench_gen::registry::find;

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.25);
    let factors = make_factors(&x, 16);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let mode = x.order() - 1;
    let v = DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32);
    let m = x.nnz() as u64;

    let mut group = c.benchmark_group("ablation/block_size");
    group.throughput(Throughput::Elements(m));
    for bits in [3u8, 4, 5, 6, 7, 8] {
        let hx = HicooTensor::from_coo(&x, bits).unwrap();
        group.bench_function(
            BenchmarkId::new("mttkrp_hicoo", format!("B{}", 1u32 << bits)),
            |b| b.iter(|| mttkrp::mttkrp_hicoo(&hx, &frefs, mode).unwrap()),
        );
        let g = GHicooTensor::from_coo_for_mode(&x, bits, mode).unwrap();
        let gfp = g.fibers(mode).unwrap();
        group.bench_function(
            BenchmarkId::new("ttv_hicoo", format!("B{}", 1u32 << bits)),
            |b| b.iter(|| ttv::ttv_ghicoo(&g, &gfp, &v, Schedule::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = ablation_block_size;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_block_size);
