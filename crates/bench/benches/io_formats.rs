//! Tensor I/O throughput: FROSTT `.tns` text vs the binary format, read
//! and write (the dataset-materialization cost the harness cache hides).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_core::coo::CooTensor;
use tenbench_gen::registry::find;
use tenbench_io::{bin, tns};

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.25);
    let mut text = Vec::new();
    tns::write_tns(&x, &mut text).unwrap();
    let mut blob = Vec::new();
    bin::write_bin(&x, &mut blob).unwrap();

    let mut group = c.benchmark_group("io/s4");
    group.throughput(Throughput::Elements(x.nnz() as u64));
    group.bench_function(BenchmarkId::new("write", "tns"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(text.len());
            tns::write_tns(&x, &mut out).unwrap();
            out
        })
    });
    group.bench_function(BenchmarkId::new("write", "bin"), |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(blob.len());
            bin::write_bin(&x, &mut out).unwrap();
            out
        })
    });
    group.bench_function(BenchmarkId::new("read", "tns"), |b| {
        b.iter(|| -> CooTensor<f32> {
            tns::read_tns_with_shape(text.as_slice(), x.shape().clone()).unwrap()
        })
    });
    group.bench_function(BenchmarkId::new("read", "bin"), |b| {
        b.iter(|| -> CooTensor<f32> { bin::read_bin(blob.as_slice()).unwrap() })
    });
    group.finish();
}

criterion_group! {
    name = io_formats;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(io_formats);
