//! Format construction costs: lexicographic sort, Morton sort, COO→HiCOO,
//! COO→gHiCOO, COO→CSF — the pre-processing the paper trades for kernel
//! time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_core::csf::CsfTensor;
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_gen::registry::find;

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.25);
    let m = x.nnz() as u64;
    let mut group = c.benchmark_group("conversions/s4");
    group.throughput(Throughput::Elements(m));
    group.bench_function(BenchmarkId::new("sort", "lexicographic"), |b| {
        b.iter(|| {
            let mut t = x.clone();
            t.sort_lexicographic(&[2, 0, 1]);
            t
        })
    });
    group.bench_function(BenchmarkId::new("sort", "morton"), |b| {
        b.iter(|| {
            let mut t = x.clone();
            t.sort_morton(7);
            t
        })
    });
    group.bench_function(BenchmarkId::new("convert", "hicoo"), |b| {
        b.iter(|| HicooTensor::from_coo(&x, 7).unwrap())
    });
    group.bench_function(BenchmarkId::new("convert", "ghicoo"), |b| {
        b.iter(|| GHicooTensor::from_coo_for_mode(&x, 7, 2).unwrap())
    });
    group.bench_function(BenchmarkId::new("convert", "csf"), |b| {
        b.iter(|| CsfTensor::from_coo(&x, None).unwrap())
    });
    group.bench_function(BenchmarkId::new("fibers", "mode2"), |b| {
        let mut t = x.clone();
        t.sort_mode_last(2);
        b.iter(|| t.fibers_sorted(2).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = conversions;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(conversions);
