//! Ablation A3: loop scheduling. The paper uses "OpenMP ... with different
//! scheduling strategies" per kernel; Ttv/Ttm fibers have skewed lengths on
//! power-law tensors, which is where dynamic scheduling earns its keep.
//! Alongside the grain sweep, this bench compares the HiCOO conversion-path
//! Ttv/Ttm (atomic-free but serialized through a COO round trip) against the
//! conflict-free complement-scheduled variants that assemble outputs directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::{hicoo_fixture, BENCH_RANK};
use tenbench_core::dense::DenseVector;
use tenbench_core::kernels::{ttm, ttv, Kernel};
use tenbench_core::par::Schedule;
use tenbench_core::sched::{complement_schedule, mode_schedule};

fn bench_grain_sweep(c: &mut Criterion) {
    let fx = hicoo_fixture("s4", 0.25);
    // Mode 0 fibers of a power-law tensor are heavily skewed.
    let mode = 0;
    let mut xm = fx.coo.clone();
    let fp = xm.fibers(mode).unwrap();
    let v = DenseVector::constant(fx.coo.shape().dim(mode) as usize, 1.0f32);
    let m = fx.coo.nnz() as u64;

    let mut group = c.benchmark_group("ablation/sched/ttv");
    group.throughput(Throughput::Elements(2 * m));
    let schedules: Vec<(&str, Schedule)> = vec![
        ("static", Schedule::Static),
        ("dynamic_g1", Schedule::Dynamic { grain: 1 }),
        ("dynamic_g64", Schedule::Dynamic { grain: 64 }),
        ("dynamic_g1024", Schedule::Dynamic { grain: 1024 }),
    ];
    for (name, sched) in schedules {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| ttv::ttv_prepared(&xm, &fp, &v, sched).unwrap())
        });
    }
    group.finish();
}

fn bench_hicoo_scheduled(c: &mut Criterion) {
    let fx = hicoo_fixture("s4", 0.25);
    let mode = 0;
    let order = fx.coo.order();
    let m = fx.coo.nnz() as u64;
    let v = DenseVector::constant(fx.coo.shape().dim(mode) as usize, 1.0f32);
    let u = &fx.factors[mode];

    // Build the cached schedules outside the timed region, matching how the
    // suite treats schedule construction as untimed pre-processing.
    let _ = complement_schedule(&fx.hicoo, mode);
    let _ = mode_schedule(&fx.hicoo, mode);

    let mut group = c.benchmark_group("ablation/sched/hicoo");
    group.throughput(Throughput::Elements(Kernel::Ttv.flops(order, m, 0)));
    group.bench_function(BenchmarkId::new("Ttv", "convert"), |b| {
        b.iter(|| ttv::ttv_hicoo(&fx.hicoo, &v, mode).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ttv", "scheduled"), |b| {
        b.iter(|| ttv::ttv_hicoo_sched(&fx.hicoo, &v, mode).unwrap())
    });
    group.throughput(Throughput::Elements(Kernel::Ttm.flops(
        order,
        m,
        BENCH_RANK as u64,
    )));
    group.bench_function(BenchmarkId::new("Ttm", "convert"), |b| {
        b.iter(|| ttm::ttm_hicoo(&fx.hicoo, u, mode).unwrap())
    });
    group.bench_function(BenchmarkId::new("Ttm", "scheduled"), |b| {
        b.iter(|| ttm::ttm_hicoo_sched(&fx.hicoo, u, mode).unwrap())
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_grain_sweep(c);
    bench_hicoo_scheduled(c);
}

criterion_group! {
    name = ablation_sched;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_sched);
