//! Ablation A3: loop scheduling. The paper uses "OpenMP ... with different
//! scheduling strategies" per kernel; Ttv/Ttm fibers have skewed lengths on
//! power-law tensors, which is where dynamic scheduling earns its keep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_core::dense::DenseVector;
use tenbench_core::kernels::ttv;
use tenbench_core::par::Schedule;
use tenbench_gen::registry::find;

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.25);
    // Mode 0 fibers of a power-law tensor are heavily skewed.
    let mode = 0;
    let mut xm = x.clone();
    let fp = xm.fibers(mode).unwrap();
    let v = DenseVector::constant(x.shape().dim(mode) as usize, 1.0f32);
    let m = x.nnz() as u64;

    let mut group = c.benchmark_group("ablation/sched/ttv");
    group.throughput(Throughput::Elements(2 * m));
    let schedules: Vec<(&str, Schedule)> = vec![
        ("static", Schedule::Static),
        ("dynamic_g1", Schedule::Dynamic { grain: 1 }),
        ("dynamic_g64", Schedule::Dynamic { grain: 64 }),
        ("dynamic_g1024", Schedule::Dynamic { grain: 1024 }),
    ];
    for (name, sched) in schedules {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| ttv::ttv_prepared(&xm, &fp, &v, sched).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation_sched;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_sched);
