//! Criterion benchmark behind Figure 3: the ERT micro-kernels (triad
//! bandwidth at cache-resident and DRAM-resident working sets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;

fn triad(a: &mut [f32], b: &[f32], c: &[f32]) {
    let chunk = (a.len() / rayon::current_num_threads().max(1)).max(1024);
    a.par_chunks_mut(chunk)
        .zip(b.par_chunks(chunk))
        .zip(c.par_chunks(chunk))
        .for_each(|((ac, bc), cc)| {
            for i in 0..ac.len() {
                ac[i] = bc[i] * 2.0 + cc[i];
            }
        });
}

fn benches(cr: &mut Criterion) {
    let mut group = cr.benchmark_group("ert/triad");
    for ws_kib in [64usize, 1024, 16 * 1024, 128 * 1024] {
        let n = ws_kib * 1024 / (3 * 4);
        let mut a = vec![0.0f32; n];
        let b = vec![1.5f32; n];
        let c = vec![0.5f32; n];
        group.throughput(Throughput::Bytes((n * 12) as u64));
        group.bench_function(BenchmarkId::from_parameter(format!("{ws_kib}KiB")), |bch| {
            bch.iter(|| triad(&mut a, &b, &c))
        });
    }
    group.finish();
}

criterion_group! {
    name = fig3;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig3);
