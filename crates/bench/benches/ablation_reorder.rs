//! Ablation A4: mode reordering. The paper notes the irregular operand
//! gathers of Ttv/Mttkrp can gain locality "from reordering techniques";
//! this bench measures the frequency-permutation heuristic against the
//! natural and randomly-shuffled labelings on a power-law tensor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseVector;
use tenbench_core::kernels::ttv;
use tenbench_core::par::Schedule;
use tenbench_core::reorder::{
    apply_mode_permutation, frequency_permutation, permute_vector, random_permutation,
};
use tenbench_gen::registry::find;

fn variant(x: &CooTensor<f32>, mode: usize, which: &str) -> (CooTensor<f32>, Vec<u32>) {
    let dim = x.shape().dim(mode);
    let perm: Vec<u32> = match which {
        "natural" => (0..dim).collect(),
        "frequency" => frequency_permutation(x, mode).unwrap(),
        _ => random_permutation(dim, 42),
    };
    let mut xr = x.clone();
    apply_mode_permutation(&mut xr, mode, &perm).unwrap();
    (xr, perm)
}

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.25);
    let mode = 0; // power-law sparse mode: skewed operand reuse
    let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i % 97) as f32 * 0.01);
    let m = x.nnz() as u64;

    let mut group = c.benchmark_group("ablation/reorder/ttv");
    group.throughput(Throughput::Elements(2 * m));
    for which in ["natural", "frequency", "random"] {
        let (xr, perm) = variant(&x, mode, which);
        let vr = permute_vector(&v, &perm).unwrap();
        let mut xm = xr.clone();
        let fp = xm.fibers(mode).unwrap();
        group.bench_function(BenchmarkId::from_parameter(which), |b| {
            b.iter(|| ttv::ttv_prepared(&xm, &fp, &vr, Schedule::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation_reorder;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation_reorder);
