//! Simulator throughput behind Figures 6–7: how long the trace-driven GPU
//! model itself takes per kernel launch (the modeled kernel times are
//! reported by the harness, not by this bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_bench::data::dataset_tensor;
use tenbench_bench::suite::{make_factors, make_partner};
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::EwOp;
use tenbench_gen::registry::find;
use tenbench_gpusim::device::DeviceSpec;
use tenbench_gpusim::kernels as gpuk;

fn benches(c: &mut Criterion) {
    let x = dataset_tensor(find("s4").unwrap(), 0.1);
    let y = make_partner(&x);
    let hx = HicooTensor::from_coo(&x, 7).unwrap();
    let factors = make_factors(&x, 16);
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let v = DenseVector::constant(x.shape().dim(2) as usize, 1.0f32);
    let dev = DeviceSpec::p100();
    let m = x.nnz() as u64;

    let mut group = c.benchmark_group("gpusim/s4");
    group.throughput(Throughput::Elements(m));
    group.bench_function(BenchmarkId::new("sim", "tew_coo"), |b| {
        b.iter(|| gpuk::tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap())
    });
    group.bench_function(BenchmarkId::new("sim", "ttv_coo"), |b| {
        b.iter(|| gpuk::ttv_coo_gpu(&dev, &x, &v, 2).unwrap())
    });
    group.bench_function(BenchmarkId::new("sim", "mttkrp_coo"), |b| {
        b.iter(|| gpuk::mttkrp_coo_gpu(&dev, &x, &frefs, 0).unwrap())
    });
    group.bench_function(BenchmarkId::new("sim", "mttkrp_hicoo"), |b| {
        b.iter(|| gpuk::mttkrp_hicoo_gpu(&dev, &hx, &frefs, 0).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = gpu_model;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(gpu_model);
