//! Synthetic tensor generation throughput (Tables 2–3 materialization):
//! stochastic Kronecker vs biased power law.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tenbench_core::shape::Shape;
use tenbench_gen::{KroneckerGenerator, PowerLawGenerator};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for nnz in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements(nnz as u64));
        group.bench_function(BenchmarkId::new("kronecker", nnz), |b| {
            let g = KroneckerGenerator::rmat_like(Shape::cubical(3, 1 << 17), nnz);
            b.iter(|| g.generate(42))
        });
        group.bench_function(BenchmarkId::new("powerlaw", nnz), |b| {
            let g = PowerLawGenerator::with_threshold(
                Shape::new(vec![1 << 17, 1 << 17, 126]),
                1.4,
                nnz,
                1000,
            );
            b.iter(|| g.generate(42))
        });
    }
    group.finish();
}

criterion_group! {
    name = generators;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(generators);
