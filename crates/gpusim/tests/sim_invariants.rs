//! Simulator-wide invariants: conservation laws the trace machinery must
//! satisfy on real kernel launches, and the qualitative device relations
//! the paper's GPU observations rest on.

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::{DenseMatrix, DenseVector};
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::EwOp;
use tenbench_core::shape::Shape;
use tenbench_gen::registry::find;
use tenbench_gpusim::device::DeviceSpec;
use tenbench_gpusim::kernels as gpuk;
use tenbench_gpusim::GpuKernelStats;

fn tensor(nnz: usize) -> CooTensor<f32> {
    find("s4").unwrap().generate_with(nnz, 31)
}

fn all_stats(dev: &DeviceSpec, x: &CooTensor<f32>) -> Vec<GpuKernelStats> {
    let y = {
        let mut y = x.clone();
        y.vals_mut().iter_mut().for_each(|v| *v *= 2.0);
        y
    };
    let hx = HicooTensor::from_coo(x, 5).unwrap();
    let factors: Vec<DenseMatrix<f32>> = (0..x.order())
        .map(|m| DenseMatrix::constant(x.shape().dim(m) as usize, 16, 0.5))
        .collect();
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let v = DenseVector::constant(x.shape().dim(2) as usize, 1.0f32);
    vec![
        gpuk::tew_coo_gpu(dev, x, &y, EwOp::Add).unwrap().1,
        gpuk::ts_coo_gpu(dev, x, 1.5, EwOp::Mul).unwrap().1,
        gpuk::ttv_coo_gpu(dev, x, &v, 2).unwrap().1,
        gpuk::ttm_coo_gpu(dev, x, &factors[2], 2).unwrap().1,
        gpuk::mttkrp_coo_gpu(dev, x, &frefs, 0).unwrap().1,
        gpuk::mttkrp_hicoo_gpu(dev, &hx, &frefs, 0).unwrap().1,
    ]
}

#[test]
fn conservation_laws_hold_for_every_kernel() {
    let dev = DeviceSpec::p100();
    let x = tensor(8_000);
    for s in all_stats(&dev, &x) {
        // Hits plus misses equal sector touches.
        assert_eq!(s.l2_hits + s.l2_misses, s.sectors, "{}", s.kernel);
        // DRAM traffic is exactly the miss sectors.
        assert_eq!(s.dram_bytes, s.l2_misses * 32, "{}", s.kernel);
        // Modeled time is the max of its components.
        let b = s.breakdown;
        let expect = b.dram_s.max(b.l2_s).max(b.atomic_s).max(b.sched_s);
        assert_eq!(s.time_s, expect, "{}", s.kernel);
        // No kernel is free, and every one does some memory work.
        assert!(s.time_s > 0.0 && s.sectors > 0, "{}", s.kernel);
        // Atomics appear only in Mttkrp.
        if s.kernel != "Mttkrp" {
            assert_eq!(s.atomics, 0, "{}", s.kernel);
        } else {
            assert!(s.atomics > 0);
            assert!(s.atomic_conflict_depth > 0);
        }
    }
}

#[test]
fn traffic_scales_with_nnz() {
    let dev = DeviceSpec::p100();
    let small = all_stats(&dev, &tensor(4_000));
    let large = all_stats(&dev, &tensor(16_000));
    for (s, l) in small.iter().zip(&large) {
        assert!(
            l.dram_bytes > s.dram_bytes,
            "{}: {} !> {}",
            s.kernel,
            l.dram_bytes,
            s.dram_bytes
        );
        assert!(l.flops > s.flops, "{}", s.kernel);
    }
}

#[test]
fn v100_never_loses_to_p100_on_the_same_launch() {
    let x = tensor(10_000);
    let p = all_stats(&DeviceSpec::p100(), &x);
    let v = all_stats(&DeviceSpec::v100(), &x);
    for (sp, sv) in p.iter().zip(&v) {
        assert!(
            sv.time_s <= sp.time_s * 1.01,
            "{} {}: V100 {} vs P100 {}",
            sp.kernel,
            sp.format,
            sv.time_s,
            sp.time_s
        );
    }
}

#[test]
fn streaming_kernels_sit_on_the_dram_roofline() {
    // Large streaming Tew: modeled bandwidth must be within a few percent
    // of the device's DRAM bandwidth (it is the bottleneck by design).
    let dev = DeviceSpec::v100();
    let x = tensor(200_000);
    let y = {
        let mut y = x.clone();
        y.vals_mut().iter_mut().for_each(|v| *v *= 2.0);
        y
    };
    let (_, s) = gpuk::tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
    assert_eq!(s.bottleneck(), "dram");
    let bw = s.dram_bytes as f64 / s.time_s / 1e9;
    assert!((bw / dev.dram_bw_gbs - 1.0).abs() < 0.02, "bw {bw}");
}

#[test]
fn hicoo_mttkrp_imbalance_shows_in_the_schedule() {
    // On a power-law tensor the HiCOO launch must be schedule-bound while
    // the COO launch is not slowed by imbalance.
    let dev = DeviceSpec::p100();
    let x = tensor(60_000);
    let hx = HicooTensor::from_coo(&x, 7).unwrap();
    let factors: Vec<DenseMatrix<f32>> = (0..3)
        .map(|m| DenseMatrix::constant(x.shape().dim(m) as usize, 16, 0.5))
        .collect();
    let frefs: Vec<&DenseMatrix<f32>> = factors.iter().collect();
    let (_, coo) = gpuk::mttkrp_coo_gpu(&dev, &x, &frefs, 0).unwrap();
    let (_, hic) = gpuk::mttkrp_hicoo_gpu(&dev, &hx, &frefs, 0).unwrap();
    assert!(
        hic.time_s > 2.0 * coo.time_s,
        "{} vs {}",
        hic.time_s,
        coo.time_s
    );
    assert_eq!(hic.bottleneck(), "sched");
}

#[test]
fn tiny_launches_do_not_explode() {
    // Degenerate inputs: one nonzero, one fiber.
    let dev = DeviceSpec::p100();
    let x =
        CooTensor::from_entries(Shape::new(vec![4, 4, 4]), vec![(vec![1, 2, 3], 5.0f32)]).unwrap();
    let y = x.clone();
    let (out, s) = gpuk::tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
    assert_eq!(out.vals()[0], 10.0);
    assert!(s.time_s > 0.0 && s.time_s < 1e-3);
    let v = DenseVector::constant(4, 2.0f32);
    let (tv, _) = gpuk::ttv_coo_gpu(&dev, &x, &v, 2).unwrap();
    assert_eq!(tv.nnz(), 1);
    assert_eq!(tv.vals()[0], 10.0);
}
