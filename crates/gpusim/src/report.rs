//! Kernel launch statistics reported by every simulated GPU kernel.

use crate::device::DeviceSpec;
use crate::mem::MemoryTracker;
use crate::timing::{model_time, TimeBreakdown};

/// The result of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct GpuKernelStats {
    /// Kernel name ("Tew", "Ts", "Ttv", "Ttm", "Mttkrp").
    pub kernel: &'static str,
    /// Format ("COO" or "HiCOO").
    pub format: &'static str,
    /// Device the launch was modeled on.
    pub device: &'static str,
    /// Thread blocks launched.
    pub grid_blocks: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Lane-level global loads.
    pub loads: u64,
    /// Lane-level global stores.
    pub stores: u64,
    /// Lane-level global atomics.
    pub atomics: u64,
    /// Sectors that reached the L2 after coalescing and L1 filtering.
    pub sectors: u64,
    /// Sectors served by the per-block L1.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM transactions).
    pub l2_misses: u64,
    /// Bytes that reached DRAM.
    pub dram_bytes: u64,
    /// Sum of per-warp worst atomic conflict depths.
    pub atomic_conflict_depth: u64,
    /// Table 1 floating-point work.
    pub flops: u64,
    /// Per-resource time components.
    pub breakdown: TimeBreakdown,
    /// Modeled kernel time in seconds.
    pub time_s: f64,
}

impl GpuKernelStats {
    /// Assemble from a finished trace.
    pub(crate) fn from_tracker(
        kernel: &'static str,
        format: &'static str,
        dev: &DeviceSpec,
        tracker: &MemoryTracker,
        grid_blocks: usize,
        block_threads: usize,
        flops: u64,
    ) -> Self {
        let breakdown = model_time(dev, tracker, block_threads);
        GpuKernelStats {
            kernel,
            format,
            device: dev.name,
            grid_blocks,
            block_threads,
            loads: tracker.loads,
            stores: tracker.stores,
            atomics: tracker.atomics,
            sectors: tracker.sectors,
            l1_hits: tracker.l1_hits,
            l2_hits: tracker.l2_hits,
            l2_misses: tracker.l2_misses,
            dram_bytes: tracker.dram_bytes(),
            atomic_conflict_depth: tracker.atomic_conflict_depth,
            flops,
            breakdown,
            time_s: breakdown.total(),
        }
    }

    /// Modeled GFLOPS (Table 1 work over modeled time).
    pub fn gflops(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            self.flops as f64 / self.time_s / 1e9
        }
    }

    /// L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// The bottleneck resource name.
    pub fn bottleneck(&self) -> &'static str {
        self.breakdown.bottleneck()
    }
}

#[cfg(test)]
mod tests {
    use crate::timing::TimeBreakdown;

    use super::*;

    fn stats(time_s: f64, flops: u64, l2_hits: u64, l2_misses: u64) -> GpuKernelStats {
        GpuKernelStats {
            kernel: "Tew",
            format: "COO",
            device: "P100",
            grid_blocks: 1,
            block_threads: 256,
            loads: 0,
            stores: 0,
            atomics: 0,
            sectors: l2_hits + l2_misses,
            l1_hits: 0,
            l2_hits,
            l2_misses,
            dram_bytes: l2_misses * 32,
            atomic_conflict_depth: 0,
            flops,
            breakdown: TimeBreakdown {
                dram_s: time_s,
                l2_s: 0.0,
                atomic_s: 0.0,
                sched_s: 0.0,
            },
            time_s,
        }
    }

    #[test]
    fn gflops_divides_work_by_time() {
        let s = stats(1e-3, 2_000_000, 0, 10);
        assert!((s.gflops() - 2.0).abs() < 1e-12);
        // Degenerate zero time reports zero instead of infinity.
        assert_eq!(stats(0.0, 100, 0, 1).gflops(), 0.0);
    }

    #[test]
    fn hit_rate_handles_empty_traffic() {
        assert_eq!(stats(1.0, 1, 0, 0).l2_hit_rate(), 0.0);
        assert_eq!(stats(1.0, 1, 3, 1).l2_hit_rate(), 0.75);
    }

    #[test]
    fn bottleneck_delegates_to_breakdown() {
        assert_eq!(stats(1.0, 1, 0, 1).bottleneck(), "dram");
    }
}
