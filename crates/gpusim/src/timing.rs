//! The timing model: the kernel's modeled time is the bottleneck of four
//! resources — DRAM bandwidth, L2 bandwidth, the atomic unit, and SM issue
//! (the latter via a list-scheduled makespan, which is where load imbalance
//! across thread blocks shows up).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::device::DeviceSpec;
use crate::mem::MemoryTracker;

/// Per-resource time components in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// DRAM bandwidth time.
    pub dram_s: f64,
    /// L2 bandwidth time.
    pub l2_s: f64,
    /// Atomic unit time (throughput and same-address serialization).
    pub atomic_s: f64,
    /// SM issue makespan (includes load imbalance).
    pub sched_s: f64,
}

impl TimeBreakdown {
    /// The bottleneck resource's time — the modeled kernel time.
    pub fn total(&self) -> f64 {
        self.dram_s
            .max(self.l2_s)
            .max(self.atomic_s)
            .max(self.sched_s)
    }

    /// Name of the bottleneck resource.
    pub fn bottleneck(&self) -> &'static str {
        let t = self.total();
        if t == self.dram_s {
            "dram"
        } else if t == self.l2_s {
            "l2"
        } else if t == self.atomic_s {
            "atomic"
        } else {
            "sched"
        }
    }
}

/// Compute the modeled time of a launch whose trace is in `tracker`, with
/// thread blocks of `block_threads` threads.
pub fn model_time(
    dev: &DeviceSpec,
    tracker: &MemoryTracker,
    block_threads: usize,
) -> TimeBreakdown {
    let dram_s = tracker.dram_bytes() as f64 / (dev.dram_bw_gbs * 1e9);
    let l2_s = tracker.l2_bytes() as f64 / (dev.l2_bw_gbs * 1e9);

    let atomic_ops = tracker.atomics as f64;
    let atomic_s = (atomic_ops / (dev.atomic_gops * 1e9))
        .max(tracker.atomic_conflict_depth as f64 / (dev.atomic_serial_gops * 1e9));

    // Issue-side makespan: greedy in-order list scheduling of blocks onto
    // the device's concurrent block slots (the hardware's block dispatcher
    // is effectively this). Each slot issues at ipc / slots_per_sm
    // instructions per cycle.
    let slots = dev.block_slots(block_threads).max(1);
    let slots_per_sm = (slots as f64 / dev.sms as f64).max(1.0);
    // A slot shares its SM's issue bandwidth with the blocks actually
    // resident there: small launches leave slots empty and issue faster.
    let blocks = tracker.per_block().len();
    let resident_per_sm = ((blocks as f64 / dev.sms as f64).ceil()).clamp(1.0, slots_per_sm);
    let rate_per_slot = dev.ipc_per_sm / resident_per_sm; // instructions / cycle
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..slots).map(|s| Reverse((0u64, s))).collect();
    let mut makespan = 0u64;
    for b in tracker.per_block() {
        let cycles = b.instr
            + b.sectors as f64 * dev.sector_issue_cycles
            + b.l1_sectors as f64 * dev.l1_issue_cycles
            + b.atomic_replays * dev.atomic_replay_cycles;
        // Fixed-point microcycles to keep the heap integral.
        let cost = (cycles * 1024.0) as u64;
        let Reverse((load, slot)) = heap.pop().expect("slots >= 1");
        let new_load = load + cost;
        makespan = makespan.max(new_load);
        heap.push(Reverse((new_load, slot)));
    }
    let makespan_cycles = makespan as f64 / 1024.0;
    let sched_s = makespan_cycles / (rate_per_slot * dev.clock_ghz * 1e9);

    TimeBreakdown {
        dram_s,
        l2_s,
        atomic_s,
        sched_s,
    }
}

#[cfg(test)]
mod tests {
    use crate::mem::AccessKind;

    use super::*;

    #[test]
    fn streaming_load_is_dram_bound() {
        let dev = DeviceSpec::p100();
        // 64 MiB of cold streaming loads (beyond L2).
        let mut t = MemoryTracker::new(&dev, 1024);
        let n = (64u64 << 20) / 4;
        for w in 0..n / 32 {
            t.begin_block((w as usize / 8) % 1024);
            t.access_contig(AccessKind::Load, 0, w * 32, 32, 4);
        }
        let tb = model_time(&dev, &t, 256);
        assert_eq!(tb.bottleneck(), "dram");
        // 64 MiB at 571 GB/s ~ 118 us.
        let expect = (64u64 << 20) as f64 / (571.0 * 1e9);
        assert!((tb.dram_s / expect - 1.0).abs() < 0.05, "{}", tb.dram_s);
    }

    #[test]
    fn cache_resident_load_beats_dram_time() {
        let dev = DeviceSpec::p100();
        let mut t = MemoryTracker::new(&dev, 64);
        // 1 MiB working set streamed 8 times: only the first pass misses.
        let n = (1u64 << 20) / 4;
        for pass in 0..8 {
            for w in 0..n / 32 {
                t.begin_block(((pass * n / 32 + w) % 64) as usize);
                t.access_contig(AccessKind::Load, 0, w * 32, 32, 4);
            }
        }
        assert!(t.l2_hits > 6 * t.l2_misses);
        let tb = model_time(&dev, &t, 256);
        // Effective bandwidth (total bytes / time) exceeds DRAM bandwidth.
        let eff = (8u64 * (1 << 20)) as f64 / tb.total() / 1e9;
        assert!(eff > dev.dram_bw_gbs, "effective {eff} GB/s");
    }

    #[test]
    fn hot_address_atomics_are_atomic_bound() {
        let dev = DeviceSpec::p100();
        let mut t = MemoryTracker::new(&dev, 16);
        let addrs = vec![0u64; 32];
        for i in 0..10_000 {
            t.begin_block(i % 16);
            t.atomic_gather(&addrs, 4);
        }
        let tb = model_time(&dev, &t, 256);
        assert!(tb.atomic_s > tb.dram_s);
    }

    #[test]
    fn imbalance_inflates_the_makespan() {
        let dev = DeviceSpec::p100();
        let blocks = dev.block_slots(256) * 4;
        // Balanced: every block does 1000 instructions.
        let mut bal = MemoryTracker::new(&dev, blocks);
        for b in 0..blocks {
            bal.begin_block(b);
            bal.instr(1000.0);
        }
        // Imbalanced: same total work, all in 1% of the blocks.
        let mut imb = MemoryTracker::new(&dev, blocks);
        let heavy = (blocks / 100).max(1);
        for b in 0..heavy {
            imb.begin_block(b);
            imb.instr(1000.0 * blocks as f64 / heavy as f64);
        }
        let t_bal = model_time(&dev, &bal, 256).sched_s;
        let t_imb = model_time(&dev, &imb, 256).sched_s;
        assert!(t_imb > 5.0 * t_bal, "bal {t_bal} imb {t_imb}");
    }

    #[test]
    fn v100_outruns_p100_on_the_same_trace() {
        let p = DeviceSpec::p100();
        let v = DeviceSpec::v100();
        let mk = |dev: &DeviceSpec| {
            let mut t = MemoryTracker::new(dev, 256);
            for w in 0..100_000u64 {
                t.begin_block((w % 256) as usize);
                t.access_contig(AccessKind::Load, 0, w * 32, 32, 4);
            }
            model_time(dev, &t, 256).total()
        };
        assert!(mk(&v) < mk(&p));
    }
}
