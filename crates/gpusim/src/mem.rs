//! The simulated memory system: virtual address space, warp-level
//! coalescing, a set-associative sector cache standing in for the GPU L2,
//! and atomic-conflict tracking.

use crate::device::DeviceSpec;

/// Bump allocator handing out non-overlapping virtual buffers, so every
/// tensor array gets distinct addresses in the trace.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// A fresh, empty address space.
    pub fn new() -> Self {
        AddressSpace { next: 0 }
    }

    /// Allocate `bytes` with 256-byte alignment (CUDA's allocation
    /// guarantee), returning the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = (self.next + 255) & !255;
        self.next = base + bytes.max(1);
        base
    }
}

/// Kind of a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Global load.
    Load,
    /// Global store.
    Store,
    /// Global atomic read-modify-write.
    Atomic,
}

/// Set-associative LRU cache over fixed-size sectors — the L2 model.
#[derive(Debug)]
pub struct CacheModel {
    sets: Vec<Vec<(u64, u64)>>, // (tag, stamp)
    ways: usize,
    set_mask: u64,
    stamp: u64,
}

impl CacheModel {
    /// Build a cache of `capacity` bytes with `sector` bytes per line and
    /// `ways` associativity. The set count is rounded down to a power of
    /// two.
    pub fn new(capacity: usize, sector: usize, ways: usize) -> Self {
        let lines = (capacity / sector).max(ways);
        let sets = (lines / ways).next_power_of_two() / 2;
        let sets = sets.max(1);
        CacheModel {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
        }
    }

    /// Forget everything cached (used to flush the per-block L1 model at
    /// thread-block switches). Keeps the allocation.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Access one sector id (address / sector size); returns `true` on hit.
    pub fn access(&mut self, sector_id: u64) -> bool {
        self.stamp += 1;
        let set = &mut self.sets[(sector_id & self.set_mask) as usize];
        if let Some(entry) = set.iter_mut().find(|(tag, _)| *tag == sector_id) {
            entry.1 = self.stamp;
            return true;
        }
        if set.len() < self.ways {
            set.push((sector_id, self.stamp));
        } else {
            // Evict the least recently used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("ways >= 1");
            set[lru] = (sector_id, self.stamp);
        }
        false
    }
}

/// Per-thread-block accumulated cost, used by the scheduler makespan.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockCost {
    /// Issued warp instructions.
    pub instr: f64,
    /// L2 sectors touched (L1 misses).
    pub sectors: u64,
    /// Sectors served by the per-block L1.
    pub l1_sectors: u64,
    /// Serialized atomic replays (sum of per-warp max same-address
    /// multiplicity minus one).
    pub atomic_replays: f64,
}

/// Streams warp-level memory accesses through the coalescer and cache,
/// accumulating global and per-block counters.
#[derive(Debug)]
pub struct MemoryTracker {
    sector_bytes: u64,
    cache: CacheModel,
    /// Per-block L1 model (`None` when the device disables it).
    l1: Option<CacheModel>,
    /// Lane-level loads.
    pub loads: u64,
    /// Lane-level stores.
    pub stores: u64,
    /// Lane-level atomics.
    pub atomics: u64,
    /// Warp memory sectors that reached the L2 (after L1 filtering).
    pub sectors: u64,
    /// Sectors served by the per-block L1.
    pub l1_hits: u64,
    /// L2 hits (sector granularity).
    pub l2_hits: u64,
    /// L2 misses (sector granularity) — these go to DRAM.
    pub l2_misses: u64,
    /// Sum over warp atomics of the worst same-address multiplicity.
    pub atomic_conflict_depth: u64,
    per_block: Vec<BlockCost>,
    current: usize,
}

impl MemoryTracker {
    /// Build a tracker for a launch of `num_blocks` thread blocks on `dev`.
    pub fn new(dev: &DeviceSpec, num_blocks: usize) -> Self {
        MemoryTracker {
            sector_bytes: dev.sector_bytes as u64,
            cache: CacheModel::new(dev.l2_bytes, dev.sector_bytes, dev.l2_ways),
            l1: (dev.l1_bytes > 0)
                .then(|| CacheModel::new(dev.l1_bytes, dev.sector_bytes, dev.l1_ways)),
            loads: 0,
            stores: 0,
            atomics: 0,
            sectors: 0,
            l1_hits: 0,
            l2_hits: 0,
            l2_misses: 0,
            atomic_conflict_depth: 0,
            per_block: vec![BlockCost::default(); num_blocks.max(1)],
            current: 0,
        }
    }

    /// Switch the per-block accumulator to thread block `b`; a genuine
    /// switch flushes the (block-private) L1 model.
    pub fn begin_block(&mut self, b: usize) {
        if b != self.current {
            if let Some(l1) = &mut self.l1 {
                l1.clear();
            }
        }
        self.current = b;
    }

    fn count_kind(&mut self, kind: AccessKind, lanes: u64) {
        match kind {
            AccessKind::Load => self.loads += lanes,
            AccessKind::Store => self.stores += lanes,
            AccessKind::Atomic => self.atomics += lanes,
        }
    }

    /// Route one sector through the hierarchy. Atomics bypass the L1 (they
    /// resolve at the L2 on these architectures).
    fn touch_sector(&mut self, s: u64, through_l1: bool) {
        if through_l1 {
            if let Some(l1) = &mut self.l1 {
                if l1.access(s) {
                    self.l1_hits += 1;
                    self.per_block[self.current].l1_sectors += 1;
                    return;
                }
            }
        }
        self.sectors += 1;
        self.per_block[self.current].sectors += 1;
        if self.cache.access(s) {
            self.l2_hits += 1;
        } else {
            self.l2_misses += 1;
        }
    }

    fn touch_sector_range(&mut self, first: u64, last: u64, through_l1: bool) {
        for s in first..=last {
            self.touch_sector(s, through_l1);
        }
    }

    /// One warp instruction where `lanes` consecutive lanes access
    /// consecutive elements of `elem_bytes` starting at element `start` of
    /// the buffer at `base` — the fully-coalesced case.
    pub fn access_contig(
        &mut self,
        kind: AccessKind,
        base: u64,
        start: u64,
        lanes: u64,
        elem_bytes: u64,
    ) {
        if lanes == 0 {
            return;
        }
        self.count_kind(kind, lanes);
        self.per_block[self.current].instr += 1.0;
        let lo = base + start * elem_bytes;
        let hi = base + (start + lanes) * elem_bytes - 1;
        let through_l1 = kind != AccessKind::Atomic;
        self.touch_sector_range(lo / self.sector_bytes, hi / self.sector_bytes, through_l1);
    }

    /// One warp instruction with arbitrary per-lane byte addresses (gathers
    /// and scatters). Sectors are deduplicated, as the hardware coalescer
    /// does.
    pub fn access_gather(&mut self, kind: AccessKind, addrs: &[u64], elem_bytes: u64) {
        if addrs.is_empty() {
            return;
        }
        debug_assert!(addrs.len() <= 32, "a warp has at most 32 lanes");
        self.count_kind(kind, addrs.len() as u64);
        self.per_block[self.current].instr += 1.0;
        let mut sectors = [0u64; 64];
        let mut n = 0usize;
        for &a in addrs {
            let s0 = a / self.sector_bytes;
            let s1 = (a + elem_bytes - 1) / self.sector_bytes;
            for s in s0..=s1 {
                sectors[n] = s;
                n += 1;
            }
        }
        let sectors = &mut sectors[..n];
        sectors.sort_unstable();
        let through_l1 = kind != AccessKind::Atomic;
        let mut prev = u64::MAX;
        for i in 0..sectors.len() {
            let s = sectors[i];
            if s != prev {
                prev = s;
                self.touch_sector(s, through_l1);
            }
        }
    }

    /// One warp atomic with per-lane target addresses: lanes aiming at the
    /// same address serialize. Records the worst per-address multiplicity
    /// as the serialization depth, then traces the memory side like a
    /// gather.
    pub fn atomic_gather(&mut self, addrs: &[u64], elem_bytes: u64) {
        if addrs.is_empty() {
            return;
        }
        let mut sorted = [0u64; 32];
        sorted[..addrs.len()].copy_from_slice(addrs);
        let sorted = &mut sorted[..addrs.len()];
        sorted.sort_unstable();
        let mut worst = 1u64;
        let mut run = 1u64;
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                run += 1;
                worst = worst.max(run);
            } else {
                run = 1;
            }
        }
        self.atomic_conflict_depth += worst;
        self.per_block[self.current].atomic_replays += (worst - 1) as f64;
        self.access_gather(AccessKind::Atomic, addrs, elem_bytes);
    }

    /// Count `n` issued non-memory warp instructions (the arithmetic of the
    /// kernel body) against the current block.
    pub fn instr(&mut self, n: f64) {
        self.per_block[self.current].instr += n;
    }

    /// Bytes that reached DRAM (L2 misses at sector granularity).
    pub fn dram_bytes(&self) -> u64 {
        self.l2_misses * self.sector_bytes
    }

    /// Bytes served by the L2 (all sector touches).
    pub fn l2_bytes(&self) -> u64 {
        self.sectors * self.sector_bytes
    }

    /// The per-block cost table.
    pub fn per_block(&self) -> &[BlockCost] {
        &self.per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(blocks: usize) -> MemoryTracker {
        MemoryTracker::new(&DeviceSpec::p100(), blocks)
    }

    #[test]
    fn address_space_is_disjoint_and_aligned() {
        let mut s = AddressSpace::new();
        let a = s.alloc(100);
        let b = s.alloc(8);
        assert_eq!(a % 256, 0);
        assert_eq!(b % 256, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn contiguous_warp_load_touches_four_sectors() {
        // 32 lanes x 4 bytes = 128 bytes = 4 sectors of 32 bytes.
        let mut t = tracker(1);
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        assert_eq!(t.loads, 32);
        assert_eq!(t.sectors, 4);
        assert_eq!(t.l2_misses, 4);
    }

    #[test]
    fn strided_gather_touches_one_sector_per_lane() {
        let mut t = tracker(1);
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        t.access_gather(AccessKind::Load, &addrs, 4);
        assert_eq!(t.sectors, 32);
    }

    #[test]
    fn same_sector_gather_coalesces() {
        let mut t = tracker(1);
        let addrs: Vec<u64> = (0..32).map(|i| (i % 8) * 4).collect();
        t.access_gather(AccessKind::Load, &addrs, 4);
        assert_eq!(t.sectors, 1);
    }

    #[test]
    fn cache_hits_on_reuse_and_misses_beyond_capacity() {
        let mut c = CacheModel::new(1024, 32, 4); // 32 lines
        for s in 0..16u64 {
            assert!(!c.access(s));
        }
        for s in 0..16u64 {
            assert!(c.access(s), "sector {s} should hit");
        }
        // Stream far beyond capacity, then the original sectors are gone.
        for s in 1000..1200u64 {
            c.access(s);
        }
        assert!(!c.access(0));
    }

    #[test]
    fn atomic_conflicts_record_worst_depth() {
        let mut t = tracker(1);
        // 32 lanes all hammering one address: depth 32.
        let addrs = vec![64u64; 32];
        t.atomic_gather(&addrs, 4);
        assert_eq!(t.atomic_conflict_depth, 32);
        assert_eq!(t.atomics, 32);
        // Distinct addresses: depth 1, no replays.
        let mut t2 = tracker(1);
        let addrs2: Vec<u64> = (0..32).map(|i| i * 64).collect();
        t2.atomic_gather(&addrs2, 4);
        assert_eq!(t2.atomic_conflict_depth, 1);
        assert_eq!(t2.per_block()[0].atomic_replays, 0.0);
    }

    #[test]
    fn per_block_accounting_follows_begin_block() {
        let mut t = tracker(2);
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        t.begin_block(1);
        t.access_contig(AccessKind::Store, 4096, 0, 32, 4);
        t.instr(5.0);
        assert_eq!(t.per_block()[0].sectors, 4);
        assert_eq!(t.per_block()[1].sectors, 4);
        assert_eq!(t.per_block()[1].instr, 6.0);
    }

    #[test]
    fn dram_bytes_reflect_misses_only() {
        let mut t = tracker(1);
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        // Second pass within the same block is absorbed by the L1.
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        assert_eq!(t.l2_misses, 4);
        assert_eq!(t.l1_hits, 4);
        assert_eq!(t.l2_hits, 0);
        assert_eq!(t.dram_bytes(), 128);
        assert_eq!(t.l2_bytes(), 128);
    }

    #[test]
    fn block_switch_flushes_the_l1_but_not_the_l2() {
        let mut t = tracker(2);
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        t.begin_block(1);
        t.access_contig(AccessKind::Load, 0, 0, 32, 4);
        // The new block misses its (fresh) L1 but hits the shared L2.
        assert_eq!(t.l1_hits, 0);
        assert_eq!(t.l2_hits, 4);
        assert_eq!(t.l2_misses, 4);
    }

    #[test]
    fn atomics_bypass_the_l1() {
        let mut t = tracker(1);
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        t.atomic_gather(&addrs, 4);
        t.atomic_gather(&addrs, 4); // repeats still reach the L2
        assert_eq!(t.l1_hits, 0);
        assert_eq!(t.l2_hits, 4);
    }
}
