//! GPU device parameters.
//!
//! The published micro-architectural numbers (SM counts, clocks, cache
//! sizes) come from the vendor datasheets; the obtainable-bandwidth and
//! atomic-throughput figures are modeled at the fractions measured by
//! public micro-benchmark studies of these parts (see DESIGN.md §2). The
//! qualitative relations the paper's observations rest on — V100 has a
//! larger L2, higher bandwidth, and much better atomics than P100 — are
//! what matters to the simulation.

/// Parameters of one simulated GPU.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Device name.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sms: u32,
    /// Lanes per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM (bounds block concurrency).
    pub max_threads_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak single-precision GFLOPS.
    pub peak_sp_gflops: f64,
    /// Obtainable global-memory bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: usize,
    /// L2 sector (transaction) size in bytes.
    pub sector_bytes: usize,
    /// L2 associativity used by the cache model.
    pub l2_ways: usize,
    /// Aggregate L2 bandwidth in GB/s.
    pub l2_bw_gbs: f64,
    /// Per-thread-block L1/texture cache capacity in bytes (0 disables the
    /// L1 level). Modeled private per block and flushed at block switch,
    /// which under-approximates sharing but never over-credits reuse.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Issue cycles a warp pays per sector served from the L1.
    pub l1_issue_cycles: f64,
    /// Aggregate global atomic throughput in Gop/s (independent addresses).
    pub atomic_gops: f64,
    /// Serialized same-address atomic throughput in Gop/s (one hot address).
    pub atomic_serial_gops: f64,
    /// Issued instructions per cycle per SM (warp instructions).
    pub ipc_per_sm: f64,
    /// Extra issue cycles a warp pays per L2 sector it touches.
    pub sector_issue_cycles: f64,
    /// Serialization cycles per conflicting atomic lane.
    pub atomic_replay_cycles: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla P100 (Pascal, DGX-1P).
    pub fn p100() -> Self {
        DeviceSpec {
            name: "P100",
            sms: 56,
            warp_size: 32,
            max_threads_per_sm: 2048,
            clock_ghz: 1.48,
            peak_sp_gflops: 10_600.0,
            dram_bw_gbs: 571.0,
            l2_bytes: 4 << 20,
            sector_bytes: 32,
            l2_ways: 16,
            l2_bw_gbs: 1_600.0,
            l1_bytes: 24 << 10,
            l1_ways: 8,
            l1_issue_cycles: 1.0,
            atomic_gops: 18.0,
            atomic_serial_gops: 0.35,
            ipc_per_sm: 2.0,
            sector_issue_cycles: 2.0,
            atomic_replay_cycles: 30.0,
        }
    }

    /// NVIDIA Tesla V100 (Volta, DGX-1V). Twice the P100's L2 per byte of
    /// traffic that matters here (6 MB vs 4 MB), higher bandwidth, and the
    /// substantially improved atomic unit the paper credits for Mttkrp
    /// exceeding its roofline on DGX-1V.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            sms: 80,
            warp_size: 32,
            max_threads_per_sm: 2048,
            clock_ghz: 1.53,
            peak_sp_gflops: 14_900.0,
            dram_bw_gbs: 792.0,
            l2_bytes: 6 << 20,
            sector_bytes: 32,
            l2_ways: 16,
            l2_bw_gbs: 2_500.0,
            // Volta unified its big L1/shared array; the much larger L1 is
            // one of its headline improvements over Pascal.
            l1_bytes: 96 << 10,
            l1_ways: 8,
            l1_issue_cycles: 0.8,
            atomic_gops: 64.0,
            atomic_serial_gops: 1.2,
            ipc_per_sm: 2.0,
            sector_issue_cycles: 1.5,
            atomic_replay_cycles: 12.0,
        }
    }

    /// Concurrent thread-block slots across the device for blocks of
    /// `block_threads` threads.
    pub fn block_slots(&self, block_threads: usize) -> usize {
        let per_sm = (self.max_threads_per_sm as usize / block_threads.max(1)).max(1);
        // Hardware also caps resident blocks per SM (32 on these parts).
        let per_sm = per_sm.min(32);
        per_sm * self.sms as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_dominates_p100_where_the_paper_says() {
        let p = DeviceSpec::p100();
        let v = DeviceSpec::v100();
        assert!(v.l2_bytes > p.l2_bytes);
        assert!(v.dram_bw_gbs > p.dram_bw_gbs);
        assert!(v.atomic_gops > 2.0 * p.atomic_gops);
        assert!(v.peak_sp_gflops > p.peak_sp_gflops);
    }

    #[test]
    fn block_slots_respect_thread_budget() {
        let p = DeviceSpec::p100();
        assert_eq!(p.block_slots(256), 56 * 8);
        assert_eq!(p.block_slots(1024), 56 * 2);
        // Tiny blocks hit the resident-block cap.
        assert_eq!(p.block_slots(32), 56 * 32);
    }

    #[test]
    fn obtainable_bandwidth_below_theoretical() {
        // 732 GB/s (P100) and 900 GB/s (V100) theoretical in Table 4.
        assert!(DeviceSpec::p100().dram_bw_gbs < 732.0);
        assert!(DeviceSpec::v100().dram_bw_gbs < 900.0);
    }
}
