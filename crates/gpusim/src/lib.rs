//! # tenbench-gpusim
//!
//! A trace-driven SIMT GPU simulator and the GPU variants of the five
//! sparse tensor kernels (paper §3.2.2, §3.4.2).
//!
//! The paper evaluates on NVIDIA P100 and V100 GPUs; this repository has no
//! GPU, so the kernels run against a simulator that models exactly the
//! effects the paper's GPU observations rest on:
//!
//! * **Coalescing** — every warp memory instruction is coalesced into
//!   32-byte sectors ([`mem::MemoryTracker`]), so the column-major
//!   thread-block layout of Ttm/Mttkrp ("the x-dimension of thread blocks
//!   represents matrix columns for GPU memory coalescing") genuinely moves
//!   fewer bytes than an uncoalesced layout would.
//! * **Cache capacity** — a two-level hierarchy of set-associative LRU
//!   sector caches ([`mem::CacheModel`]): a block-private L1 (24 KB on
//!   P100, 96 KB on Volta's unified array; atomics bypass it) in front of
//!   the shared L2 (4 MB vs 6 MB) — the capacity edge that lets small
//!   tensors "break the upper bound" on DGX-1V (Observation 2).
//! * **Atomic contention** — same-address lanes in a warp atomic serialize;
//!   the V100's improved atomic throughput is a device parameter.
//! * **Load imbalance** — thread blocks are list-scheduled onto SM slots
//!   and the makespan is part of the modeled time, which is what makes
//!   HiCOO-Mttkrp-GPU (one tensor block per thread block, §3.4.2) lose to
//!   the nonzero-balanced COO-Mttkrp-GPU.
//!
//! Kernels execute *functionally* on the CPU (outputs are bit-compared
//! against the reference CPU kernels in the test suite) while their memory
//! traces drive the timing model; the modeled time is then reported as
//! GFLOPS using the paper's Table 1 work counts.
//!
//! # Examples
//! ```
//! use tenbench_core::prelude::*;
//! use tenbench_gpusim::device::DeviceSpec;
//! use tenbench_gpusim::kernels::ts_coo_gpu;
//! use tenbench_core::kernels::EwOp;
//!
//! let x = CooTensor::<f32>::from_entries(
//!     Shape::new(vec![64, 64, 64]),
//!     (0..1000u32).map(|i| (vec![i % 64, i / 64, (i * 7) % 64], 1.0)).collect(),
//! )?;
//! let (out, stats) = ts_coo_gpu(&DeviceSpec::v100(), &x, 2.0, EwOp::Mul)?;
//! assert_eq!(out.vals()[0], 2.0);
//! assert!(stats.gflops() > 0.0);
//! assert_eq!(stats.l2_hits + stats.l2_misses, stats.sectors);
//! # Ok::<(), TensorError>(())
//! ```

// Index-heavy kernel code deliberately uses explicit loop indices over
// several parallel arrays; the iterator forms clippy suggests are less
// readable there.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod kernels;
pub mod mem;
pub mod report;
pub mod timing;

pub use device::DeviceSpec;
pub use report::GpuKernelStats;
