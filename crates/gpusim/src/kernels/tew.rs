//! COO-Tew-GPU and HiCOO-Tew-GPU: one thread per nonzero, fully coalesced
//! value streams (paper §3.2.2).

use tenbench_core::coo::CooTensor;
use tenbench_core::error::Result;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::tew::{tew_hicoo_same_pattern, tew_same_pattern_seq};
use tenbench_core::kernels::{EwOp, Kernel};
use tenbench_core::scalar::Scalar;

use crate::device::DeviceSpec;
use crate::mem::{AccessKind, AddressSpace, MemoryTracker};
use crate::report::GpuKernelStats;

use super::BLOCK_THREADS;

/// Trace a same-pattern element-wise kernel over `m` values of `val_bytes`
/// each: two loads and one store per element, warp by warp.
fn trace_elementwise<S: Scalar>(
    dev: &DeviceSpec,
    m: usize,
    arrays_in: usize,
    val_bytes: u64,
) -> (MemoryTracker, usize) {
    let _ = std::marker::PhantomData::<S>;
    let grid = m.div_ceil(BLOCK_THREADS).max(1);
    let mut space = AddressSpace::new();
    let inputs: Vec<u64> = (0..arrays_in)
        .map(|_| space.alloc(m as u64 * val_bytes))
        .collect();
    let out = space.alloc(m as u64 * val_bytes);
    let mut t = MemoryTracker::new(dev, grid);
    let mut e = 0usize;
    while e < m {
        let lanes = (m - e).min(32) as u64;
        t.begin_block(e / BLOCK_THREADS);
        for &base in &inputs {
            t.access_contig(AccessKind::Load, base, e as u64, lanes, val_bytes);
        }
        t.access_contig(AccessKind::Store, out, e as u64, lanes, val_bytes);
        t.instr(1.0); // the arithmetic instruction
        e += 32;
    }
    (t, grid)
}

/// COO-Tew-GPU over two same-pattern tensors.
pub fn tew_coo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
) -> Result<(CooTensor<S>, GpuKernelStats)> {
    let out = tew_same_pattern_seq(x, y, op)?;
    let (tracker, grid) = trace_elementwise::<S>(dev, x.nnz(), 2, S::BYTES);
    let stats = GpuKernelStats::from_tracker(
        "Tew",
        "COO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Tew.flops(x.order(), x.nnz() as u64, 0),
    );
    Ok((out, stats))
}

/// HiCOO-Tew-GPU: identical value computation, HiCOO-structured output
/// ("HiCOO-GPU implementations are also the same with COO ones except
/// Mttkrp").
pub fn tew_hicoo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &HicooTensor<S>,
    y: &HicooTensor<S>,
    op: EwOp,
) -> Result<(HicooTensor<S>, GpuKernelStats)> {
    let out = tew_hicoo_same_pattern(x, y, op)?;
    let (tracker, grid) = trace_elementwise::<S>(dev, x.nnz(), 2, S::BYTES);
    let stats = GpuKernelStats::from_tracker(
        "Tew",
        "HiCOO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Tew.flops(x.order(), x.nnz() as u64, 0),
    );
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use tenbench_core::shape::Shape;

    use super::*;

    fn pair(n: usize) -> (CooTensor<f32>, CooTensor<f32>) {
        let entries: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![
                        (i % 97) as u32,
                        ((i * 7) % 89) as u32,
                        ((i * 13) % 83) as u32,
                    ],
                    i as f32 + 1.0,
                )
            })
            .collect();
        let shape = Shape::new(vec![97, 89, 83]);
        let x = CooTensor::from_entries(shape.clone(), entries.clone()).unwrap();
        let y = {
            let mut y = x.clone();
            y.vals_mut().iter_mut().for_each(|v| *v *= 2.0);
            y
        };
        (x, y)
    }

    #[test]
    fn functional_output_matches_cpu() {
        let (x, y) = pair(1000);
        let dev = DeviceSpec::p100();
        let (out, stats) = tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
        let cpu = tew_same_pattern_seq(&x, &y, EwOp::Add).unwrap();
        assert_eq!(out, cpu);
        assert!(stats.time_s > 0.0);
        assert!(stats.gflops() > 0.0);
    }

    #[test]
    fn trace_is_fully_coalesced() {
        let (x, y) = pair(3200);
        let dev = DeviceSpec::p100();
        let (_, stats) = tew_coo_gpu(&dev, &x, &y, EwOp::Mul).unwrap();
        // 3 arrays x 4 bytes x M, cold: sectors = 3 * M * 4 / 32.
        let expect = 3 * stats.loads.max(1) / 2 * 4 / 32; // loads = 2M
        assert_eq!(stats.sectors, expect);
        assert_eq!(stats.l2_hits, 0); // streaming, no reuse
    }

    #[test]
    fn small_tensors_run_faster_than_dram_bound_large_ones() {
        let dev = DeviceSpec::p100();
        let (x1, y1) = pair(500);
        let (x2, y2) = pair(50_000);
        let (_, s1) = tew_coo_gpu(&dev, &x1, &y1, EwOp::Add).unwrap();
        let (_, s2) = tew_coo_gpu(&dev, &x2, &y2, EwOp::Add).unwrap();
        assert!(s1.time_s < s2.time_s);
    }

    #[test]
    fn hicoo_variant_matches_coo_values() {
        let (x, y) = pair(2000);
        let hx = HicooTensor::from_coo(&x, 4).unwrap();
        let hy = HicooTensor::from_coo(&y, 4).unwrap();
        let dev = DeviceSpec::v100();
        let (out, stats) = tew_hicoo_gpu(&dev, &hx, &hy, EwOp::Add).unwrap();
        let (cpu_out, _) = tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
        assert_eq!(out.to_map(), cpu_out.to_map());
        assert_eq!(stats.format, "HiCOO");
    }
}
