//! COO-Ts-GPU and HiCOO-Ts-GPU: one thread per nonzero, one load and one
//! store per element (paper §3.2.2).

use tenbench_core::coo::CooTensor;
use tenbench_core::error::Result;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::ts::{ts_hicoo, ts_seq};
use tenbench_core::kernels::{EwOp, Kernel};
use tenbench_core::scalar::Scalar;

use crate::device::DeviceSpec;
use crate::mem::{AccessKind, AddressSpace, MemoryTracker};
use crate::report::GpuKernelStats;

use super::BLOCK_THREADS;

fn trace_ts(dev: &DeviceSpec, m: usize, val_bytes: u64) -> (MemoryTracker, usize) {
    let grid = m.div_ceil(BLOCK_THREADS).max(1);
    let mut space = AddressSpace::new();
    let input = space.alloc(m as u64 * val_bytes);
    let out = space.alloc(m as u64 * val_bytes);
    let mut t = MemoryTracker::new(dev, grid);
    let mut e = 0usize;
    while e < m {
        let lanes = (m - e).min(32) as u64;
        t.begin_block(e / BLOCK_THREADS);
        t.access_contig(AccessKind::Load, input, e as u64, lanes, val_bytes);
        t.access_contig(AccessKind::Store, out, e as u64, lanes, val_bytes);
        t.instr(1.0);
        e += 32;
    }
    (t, grid)
}

/// COO-Ts-GPU.
pub fn ts_coo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &CooTensor<S>,
    s: S,
    op: EwOp,
) -> Result<(CooTensor<S>, GpuKernelStats)> {
    let out = ts_seq(x, s, op)?;
    let (tracker, grid) = trace_ts(dev, x.nnz(), S::BYTES);
    let stats = GpuKernelStats::from_tracker(
        "Ts",
        "COO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ts.flops(x.order(), x.nnz() as u64, 0),
    );
    Ok((out, stats))
}

/// HiCOO-Ts-GPU (same value loop, HiCOO-structured output).
pub fn ts_hicoo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &HicooTensor<S>,
    s: S,
    op: EwOp,
) -> Result<(HicooTensor<S>, GpuKernelStats)> {
    let out = ts_hicoo(x, s, op)?;
    let (tracker, grid) = trace_ts(dev, x.nnz(), S::BYTES);
    let stats = GpuKernelStats::from_tracker(
        "Ts",
        "HiCOO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ts.flops(x.order(), x.nnz() as u64, 0),
    );
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use tenbench_core::shape::Shape;

    use super::*;

    fn sample(n: usize) -> CooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![
                        (i % 101) as u32,
                        ((i * 3) % 103) as u32,
                        ((i * 11) % 107) as u32,
                    ],
                    i as f32 - 50.0,
                )
            })
            .collect();
        CooTensor::from_entries(Shape::new(vec![101, 103, 107]), entries).unwrap()
    }

    #[test]
    fn functional_output_matches_cpu() {
        let x = sample(2048);
        let dev = DeviceSpec::v100();
        let (out, stats) = ts_coo_gpu(&dev, &x, 3.0, EwOp::Mul).unwrap();
        assert_eq!(out, ts_seq(&x, 3.0, EwOp::Mul).unwrap());
        assert_eq!(stats.kernel, "Ts");
        assert!(stats.gflops() > 0.0);
    }

    #[test]
    fn ts_moves_fewer_bytes_than_tew() {
        // OI 1/8 vs 1/12: two value arrays vs three.
        let x = sample(6400);
        let dev = DeviceSpec::p100();
        let (_, ts_stats) = ts_coo_gpu(&dev, &x, 1.0, EwOp::Add).unwrap();
        let y = x.clone();
        let (_, tew_stats) = crate::kernels::tew::tew_coo_gpu(&dev, &x, &y, EwOp::Add).unwrap();
        assert!(ts_stats.dram_bytes < tew_stats.dram_bytes);
    }

    #[test]
    fn division_by_zero_propagates() {
        let x = sample(100);
        let dev = DeviceSpec::p100();
        assert!(ts_coo_gpu(&dev, &x, 0.0, EwOp::Div).is_err());
    }

    #[test]
    fn hicoo_matches_coo() {
        let x = sample(1500);
        let h = HicooTensor::from_coo(&x, 4).unwrap();
        let dev = DeviceSpec::p100();
        let (hout, _) = ts_hicoo_gpu(&dev, &h, 2.0, EwOp::Add).unwrap();
        let (cout, _) = ts_coo_gpu(&dev, &x, 2.0, EwOp::Add).unwrap();
        assert_eq!(hout.to_map(), cout.to_map());
    }
}
