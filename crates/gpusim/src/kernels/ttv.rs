//! COO-Ttv-GPU and HiCOO-Ttv-GPU: one thread per mode-`n` fiber (paper
//! §3.2.2). Fibers of different lengths diverge inside a warp, so the trace
//! walks lock-step over fiber elements with only the active lanes issuing
//! — the load-imbalance behaviour the paper flags for COO-Ttv-GPU.

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseVector;
use tenbench_core::error::Result;
use tenbench_core::hicoo::{GHicooTensor, HicooTensor};
use tenbench_core::kernels::ttv::{ttv_ghicoo_seq, ttv_prepared_seq};
use tenbench_core::kernels::Kernel;
use tenbench_core::scalar::Scalar;

use crate::device::DeviceSpec;
use crate::mem::{AccessKind, AddressSpace, MemoryTracker};
use crate::report::GpuKernelStats;

use super::BLOCK_THREADS;

/// Shared fiber-parallel trace. `fiber_starts[f]..fiber_starts[f+1]` is
/// fiber `f`'s nonzero range; `prod_inds` are the product-mode indices
/// (read in the inner loop); `out_index_bytes` is the per-mode width of the
/// output index copies (4 for COO, 1 for HiCOO element indices).
#[allow(clippy::too_many_arguments)]
fn trace_fiber_kernel<S: Scalar>(
    dev: &DeviceSpec,
    fiber_starts: &[usize],
    prod_inds: &[u32],
    other_modes: usize,
    vlen: usize,
    out_index_bytes: u64,
) -> (MemoryTracker, usize) {
    let mf = fiber_starts.len().saturating_sub(1);
    let m = prod_inds.len();
    let grid = mf.div_ceil(BLOCK_THREADS).max(1);
    let mut space = AddressSpace::new();
    let fptr = space.alloc(8 * (mf as u64 + 1));
    let xind = space.alloc(4 * m as u64);
    let xval = space.alloc(S::BYTES * m as u64);
    let vbase = space.alloc(S::BYTES * vlen as u64);
    let in_idx: Vec<u64> = (0..other_modes)
        .map(|_| space.alloc(4 * m as u64))
        .collect();
    let out_idx: Vec<u64> = (0..other_modes)
        .map(|_| space.alloc(out_index_bytes * mf as u64))
        .collect();
    let out_val = space.alloc(S::BYTES * mf as u64);

    let mut t = MemoryTracker::new(dev, grid);
    let mut addrs: Vec<u64> = Vec::with_capacity(32);
    let mut f0 = 0usize;
    while f0 < mf {
        let lanes = (mf - f0).min(32);
        t.begin_block(f0 / BLOCK_THREADS);
        // fptr[f] / fptr[f+1] loads.
        t.access_contig(AccessKind::Load, fptr, f0 as u64, lanes as u64 + 1, 8);
        // Output index copies: gather the fiber-start index, store it.
        for (src, dst) in in_idx.iter().zip(&out_idx) {
            addrs.clear();
            for f in f0..f0 + lanes {
                addrs.push(src + 4 * fiber_starts[f] as u64);
            }
            t.access_gather(AccessKind::Load, &addrs, 4);
            t.access_contig(
                AccessKind::Store,
                *dst,
                f0 as u64,
                lanes as u64,
                out_index_bytes,
            );
        }
        // Lock-step walk over fiber elements.
        let maxlen = (f0..f0 + lanes)
            .map(|f| fiber_starts[f + 1] - fiber_starts[f])
            .max()
            .unwrap_or(0);
        for s in 0..maxlen {
            addrs.clear();
            for f in f0..f0 + lanes {
                let len = fiber_starts[f + 1] - fiber_starts[f];
                if s < len {
                    addrs.push((fiber_starts[f] + s) as u64);
                }
            }
            if addrs.is_empty() {
                continue;
            }
            let val_addrs: Vec<u64> = addrs.iter().map(|&e| xval + S::BYTES * e).collect();
            let ind_addrs: Vec<u64> = addrs.iter().map(|&e| xind + 4 * e).collect();
            let v_addrs: Vec<u64> = addrs
                .iter()
                .map(|&e| vbase + S::BYTES * prod_inds[e as usize] as u64)
                .collect();
            t.access_gather(AccessKind::Load, &val_addrs, S::BYTES);
            t.access_gather(AccessKind::Load, &ind_addrs, 4);
            t.access_gather(AccessKind::Load, &v_addrs, S::BYTES);
            t.instr(2.0);
        }
        // Final value store.
        t.access_contig(
            AccessKind::Store,
            out_val,
            f0 as u64,
            lanes as u64,
            S::BYTES,
        );
        f0 += 32;
    }
    (t, grid)
}

/// COO-Ttv-GPU: clones and mode-last-sorts the input (pre-processing),
/// computes the functional result, and models the fiber-parallel launch.
pub fn ttv_coo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &CooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
) -> Result<(CooTensor<S>, GpuKernelStats)> {
    let mut xs = x.clone();
    let fp = xs.fibers(mode)?;
    let out = ttv_prepared_seq(&xs, &fp, v)?;
    let (tracker, grid) =
        trace_fiber_kernel::<S>(dev, &fp.fptr, xs.mode_inds(mode), x.order() - 1, v.len(), 4);
    let stats = GpuKernelStats::from_tracker(
        "Ttv",
        "COO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ttv.flops(x.order(), x.nnz() as u64, 0),
    );
    Ok((out, stats))
}

/// HiCOO-Ttv-GPU: gHiCOO input with the product mode uncompressed (§3.4.1),
/// same fiber-parallel value loop, HiCOO output with 8-bit index copies.
pub fn ttv_hicoo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
) -> Result<(HicooTensor<S>, GpuKernelStats)> {
    let g = GHicooTensor::from_coo_for_mode(&h.to_coo(), h.block_bits(), mode)?;
    let fp = g.fibers(mode)?;
    let out = ttv_ghicoo_seq(&g, &fp, v)?;
    let (tracker, grid) = trace_fiber_kernel::<S>(
        dev,
        &fp.fptr,
        g.find(mode),
        h.order() - 1,
        v.len(),
        1, // 8-bit element indices in the HiCOO output
    );
    let stats = GpuKernelStats::from_tracker(
        "Ttv",
        "HiCOO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ttv.flops(h.order(), h.nnz() as u64, 0),
    );
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use tenbench_core::kernels::ttv::ttv;
    use tenbench_core::shape::Shape;

    use super::*;

    fn sample(n: usize) -> CooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![
                        (i % 53) as u32,
                        ((i * 5) % 59) as u32,
                        ((i * 17) % 61) as u32,
                    ],
                    (i % 11) as f32 + 0.5,
                )
            })
            .collect();
        CooTensor::from_entries(Shape::new(vec![53, 59, 61]), entries).unwrap()
    }

    #[test]
    fn functional_output_matches_cpu_every_mode() {
        let x = sample(3000);
        let dev = DeviceSpec::p100();
        for mode in 0..3 {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i + 1) as f32);
            let (out, stats) = ttv_coo_gpu(&dev, &x, &v, mode).unwrap();
            let cpu = ttv(&x, &v, mode).unwrap();
            assert_eq!(out.to_map(), cpu.to_map(), "mode {mode}");
            assert!(stats.gflops() > 0.0);
        }
    }

    #[test]
    fn hicoo_matches_coo_functionally() {
        let x = sample(2000);
        let h = HicooTensor::from_coo(&x, 4).unwrap();
        let dev = DeviceSpec::v100();
        for mode in 0..3 {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (2 * i) as f32);
            let (hout, _) = ttv_hicoo_gpu(&dev, &h, &v, mode).unwrap();
            let (cout, _) = ttv_coo_gpu(&dev, &x, &v, mode).unwrap();
            assert_eq!(hout.to_map(), cout.to_map(), "mode {mode}");
        }
    }

    #[test]
    fn irregular_gathers_cost_more_sectors_than_tew() {
        // Per inner element Ttv issues 3 gathers whose vector access is
        // data-dependent — sectors per nonzero must exceed the streaming
        // kernels'.
        let x = sample(6400);
        let dev = DeviceSpec::p100();
        let v = DenseVector::constant(61, 1.0f32);
        let (_, ttv_stats) = ttv_coo_gpu(&dev, &x, &v, 2).unwrap();
        let (_, ts_stats) =
            crate::kernels::ts::ts_coo_gpu(&dev, &x, 1.0, tenbench_core::kernels::EwOp::Add)
                .unwrap();
        assert!(ttv_stats.sectors > ts_stats.sectors);
    }

    #[test]
    fn vector_reuse_hits_the_cache_hierarchy() {
        // The dense vector is tiny; its repeated gathers must be served by
        // the L1 (within a block) or the L2 (across blocks), not DRAM.
        let x = sample(5000);
        let dev = DeviceSpec::p100();
        let v = DenseVector::constant(61, 1.0f32);
        let (_, stats) = ttv_coo_gpu(&dev, &x, &v, 2).unwrap();
        let touches = stats.l1_hits + stats.sectors;
        let hit = (stats.l1_hits + stats.l2_hits) as f64 / touches as f64;
        assert!(hit > 0.1, "hierarchy hit rate {hit}");
        assert!(stats.l1_hits > 0);
    }
}
