//! Simulated GPU kernels for the five benchmark operations (paper §3.2.2,
//! §3.4.2).
//!
//! Each function performs the *functional* computation on the CPU (reusing
//! the reference sequential kernels, whose per-element math is identical to
//! the CUDA kernels being modeled) and separately walks the launch's warps
//! to generate the memory trace that drives the timing model. Launch
//! geometry follows the paper:
//!
//! * Tew/Ts/Ttv — 1D grids of 1D 256-thread blocks over nonzeros/fibers,
//! * Ttm/Mttkrp — 1D grids of 2D thread blocks with the x-dimension over
//!   matrix columns (for coalescing) and the y-dimension over
//!   nonzeros/fibers,
//! * HiCOO-Mttkrp — one tensor block per thread block.

pub mod mttkrp;
pub mod tew;
pub mod ts;
pub mod ttm;
pub mod ttv;

pub use mttkrp::{mttkrp_coo_gpu, mttkrp_hicoo_gpu};
pub use tew::{tew_coo_gpu, tew_hicoo_gpu};
pub use ts::{ts_coo_gpu, ts_hicoo_gpu};
pub use ttm::{ttm_coo_gpu, ttm_hicoo_gpu};
pub use ttv::{ttv_coo_gpu, ttv_hicoo_gpu};

/// Threads per 1D block (the paper: "M non-zeros are assigned to M/256
/// thread blocks with 256 threads for each").
pub(crate) const BLOCK_THREADS: usize = 256;

/// Column lanes used by the 2D kernels: the x-dimension covers matrix
/// columns up to the warp width.
pub(crate) fn column_lanes(r: usize) -> usize {
    r.clamp(1, 32)
}
