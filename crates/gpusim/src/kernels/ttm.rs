//! COO-Ttm-GPU and HiCOO-Ttm-GPU: 1D grids of 2D thread blocks whose
//! x-dimension runs over matrix columns for coalescing and whose
//! y-dimension runs over fibers (paper §3.2.2, Ma et al. 2018).

use tenbench_core::coo::{CooTensor, SemiSparseTensor};
use tenbench_core::dense::DenseMatrix;
use tenbench_core::error::Result;
use tenbench_core::hicoo::{GHicooTensor, HicooTensor, SemiSparseHicooTensor};
use tenbench_core::kernels::ttm::{ttm_ghicoo, ttm_prepared_seq};
use tenbench_core::kernels::Kernel;
use tenbench_core::par::Schedule;
use tenbench_core::scalar::Scalar;

use crate::device::DeviceSpec;
use crate::mem::{AccessKind, AddressSpace, MemoryTracker};
use crate::report::GpuKernelStats;

use super::{column_lanes, BLOCK_THREADS};

/// Shared 2D fiber x column trace.
fn trace_ttm<S: Scalar>(
    dev: &DeviceSpec,
    fiber_starts: &[usize],
    prod_inds: &[u32],
    other_modes: usize,
    urows: usize,
    r: usize,
    out_index_bytes: u64,
) -> (MemoryTracker, usize) {
    let mf = fiber_starts.len().saturating_sub(1);
    let m = prod_inds.len();
    let rx = column_lanes(r);
    let fibers_per_block = (BLOCK_THREADS / rx).max(1);
    let fpw = (32 / rx).max(1); // fibers per warp
    let grid = mf.div_ceil(fibers_per_block).max(1);

    let mut space = AddressSpace::new();
    let fptr = space.alloc(8 * (mf as u64 + 1));
    let xind = space.alloc(4 * m as u64);
    let xval = space.alloc(S::BYTES * m as u64);
    let ubase = space.alloc(S::BYTES * (urows * r) as u64);
    let in_idx: Vec<u64> = (0..other_modes)
        .map(|_| space.alloc(4 * m as u64))
        .collect();
    let out_idx: Vec<u64> = (0..other_modes)
        .map(|_| space.alloc(out_index_bytes * mf as u64))
        .collect();
    let out_val = space.alloc(S::BYTES * (mf * r) as u64);

    let mut t = MemoryTracker::new(dev, grid);
    let mut addrs: Vec<u64> = Vec::with_capacity(32);
    let mut f0 = 0usize;
    while f0 < mf {
        let nf = (mf - f0).min(fpw);
        t.begin_block(f0 / fibers_per_block);
        t.access_contig(AccessKind::Load, fptr, f0 as u64, nf as u64 + 1, 8);
        for (src, dst) in in_idx.iter().zip(&out_idx) {
            addrs.clear();
            for f in f0..f0 + nf {
                addrs.push(src + 4 * fiber_starts[f] as u64);
            }
            t.access_gather(AccessKind::Load, &addrs, 4);
            t.access_contig(
                AccessKind::Store,
                *dst,
                f0 as u64,
                nf as u64,
                out_index_bytes,
            );
        }
        let maxlen = (f0..f0 + nf)
            .map(|f| fiber_starts[f + 1] - fiber_starts[f])
            .max()
            .unwrap_or(0);
        for s in 0..maxlen {
            // Active fibers at this step.
            addrs.clear();
            for f in f0..f0 + nf {
                if s < fiber_starts[f + 1] - fiber_starts[f] {
                    addrs.push((fiber_starts[f] + s) as u64);
                }
            }
            if addrs.is_empty() {
                continue;
            }
            let val_addrs: Vec<u64> = addrs.iter().map(|&e| xval + S::BYTES * e).collect();
            let ind_addrs: Vec<u64> = addrs.iter().map(|&e| xind + 4 * e).collect();
            t.access_gather(AccessKind::Load, &val_addrs, S::BYTES);
            t.access_gather(AccessKind::Load, &ind_addrs, 4);
            // Matrix row gathers: rx consecutive columns per active fiber —
            // the coalesced access the x-dimension layout buys. Columns
            // beyond the warp width replay the loop.
            for chunk0 in (0..r).step_by(rx) {
                let cw = rx.min(r - chunk0);
                let mut row_addrs: Vec<u64> = Vec::with_capacity(32);
                for &e in &addrs {
                    let k = prod_inds[e as usize] as u64;
                    for rl in 0..cw as u64 {
                        if row_addrs.len() < 32 {
                            row_addrs.push(ubase + S::BYTES * (k * r as u64 + chunk0 as u64 + rl));
                        }
                    }
                }
                t.access_gather(AccessKind::Load, &row_addrs, S::BYTES);
                t.instr(2.0);
            }
        }
        // Output stripes: nf fibers x r columns, contiguous.
        t.access_contig(
            AccessKind::Store,
            out_val,
            (f0 * r) as u64,
            (nf * r) as u64,
            S::BYTES,
        );
        f0 += nf;
    }
    (t, grid)
}

/// COO-Ttm-GPU.
pub fn ttm_coo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &CooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<(SemiSparseTensor<S>, GpuKernelStats)> {
    let mut xs = x.clone();
    let fp = xs.fibers(mode)?;
    let out = ttm_prepared_seq(&xs, &fp, u)?;
    let (tracker, grid) = trace_ttm::<S>(
        dev,
        &fp.fptr,
        xs.mode_inds(mode),
        x.order() - 1,
        u.rows(),
        u.cols(),
        4,
    );
    let stats = GpuKernelStats::from_tracker(
        "Ttm",
        "COO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ttm.flops(x.order(), x.nnz() as u64, u.cols() as u64),
    );
    Ok((out, stats))
}

/// HiCOO-Ttm-GPU: gHiCOO input, sHiCOO output with 8-bit index copies.
pub fn ttm_hicoo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<(SemiSparseHicooTensor<S>, GpuKernelStats)> {
    let g = GHicooTensor::from_coo_for_mode(&h.to_coo(), h.block_bits(), mode)?;
    let fp = g.fibers(mode)?;
    let out = ttm_ghicoo(&g, &fp, u, Schedule::default())?;
    let (tracker, grid) = trace_ttm::<S>(
        dev,
        &fp.fptr,
        g.find(mode),
        h.order() - 1,
        u.rows(),
        u.cols(),
        1,
    );
    let stats = GpuKernelStats::from_tracker(
        "Ttm",
        "HiCOO",
        dev,
        &tracker,
        grid,
        BLOCK_THREADS,
        Kernel::Ttm.flops(h.order(), h.nnz() as u64, u.cols() as u64),
    );
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use tenbench_core::kernels::ttm::ttm;
    use tenbench_core::shape::Shape;

    use super::*;

    fn sample(n: usize) -> CooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![
                        (i % 47) as u32,
                        ((i * 3) % 43) as u32,
                        ((i * 7) % 41) as u32,
                    ],
                    (i % 9) as f32 - 4.0,
                )
            })
            .collect();
        CooTensor::from_entries(Shape::new(vec![47, 43, 41]), entries).unwrap()
    }

    #[test]
    fn functional_output_matches_cpu_every_mode() {
        let x = sample(2000);
        let dev = DeviceSpec::p100();
        for mode in 0..3 {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, 16, |i, j| ((i + j) % 7) as f32 - 3.0);
            let (out, stats) = ttm_coo_gpu(&dev, &x, &u, mode).unwrap();
            let cpu = ttm(&x, &u, mode).unwrap();
            assert_eq!(out.to_map(), cpu.to_map(), "mode {mode}");
            assert!(stats.gflops() > 0.0);
        }
    }

    #[test]
    fn hicoo_matches_coo_functionally() {
        let x = sample(1500);
        let h = HicooTensor::from_coo(&x, 4).unwrap();
        let dev = DeviceSpec::v100();
        let u = DenseMatrix::from_fn(41, 16, |i, j| (i * 16 + j) as f32 * 0.01);
        let (hout, _) = ttm_hicoo_gpu(&dev, &h, &u, 2).unwrap();
        let (cout, _) = ttm_coo_gpu(&dev, &x, &u, 2).unwrap();
        let hm = hout.to_map();
        let cm = cout.to_map();
        assert_eq!(hm.len(), cm.len());
        for (k, v) in &cm {
            assert!((hm[k] - v).abs() <= 1e-4 * v.abs().max(1.0), "{k:?}");
        }
    }

    #[test]
    fn coalesced_columns_beat_an_uncoalesced_estimate() {
        // With rx = 16 column lanes, a matrix-row warp access touches
        // ~2 sectors per fiber instead of 16: sectors per inner step must be
        // far below lane count.
        let x = sample(6000);
        let dev = DeviceSpec::p100();
        let u = DenseMatrix::constant(41, 16, 1.0f32);
        let (_, stats) = ttm_coo_gpu(&dev, &x, &u, 2).unwrap();
        assert!(stats.sectors < stats.loads / 2, "{stats:?}");
    }

    #[test]
    fn higher_rank_means_more_work_and_traffic() {
        let x = sample(3000);
        let dev = DeviceSpec::p100();
        let u16 = DenseMatrix::constant(41, 16, 1.0f32);
        let u64c = DenseMatrix::constant(41, 64, 1.0f32);
        let (_, s16) = ttm_coo_gpu(&dev, &x, &u16, 2).unwrap();
        let (_, s64) = ttm_coo_gpu(&dev, &x, &u64c, 2).unwrap();
        assert!(s64.flops > s16.flops);
        assert!(s64.sectors > s16.sectors);
    }
}
