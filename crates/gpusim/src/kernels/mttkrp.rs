//! COO-Mttkrp-GPU and HiCOO-Mttkrp-GPU (paper §3.2.2, §3.4.2).
//!
//! The COO kernel uses 2D thread blocks (x = matrix columns, y = nonzeros)
//! with `atomicAdd` on the output rows — balanced work, contended atomics.
//! The HiCOO kernel maps one tensor block to one thread block, which
//! destroys the nonzero balance ("the work imbalance due to different
//! numbers of non-zeros in tensor blocks could make its performance even
//! worse than COO-Mttkrp-GPU") while the atomics stay.

use tenbench_core::coo::CooTensor;
use tenbench_core::dense::DenseMatrix;
use tenbench_core::error::Result;
use tenbench_core::hicoo::HicooTensor;
use tenbench_core::kernels::mttkrp::{mttkrp_hicoo_seq, mttkrp_seq};
use tenbench_core::kernels::Kernel;
use tenbench_core::scalar::Scalar;

use crate::device::DeviceSpec;
use crate::mem::{AccessKind, AddressSpace, MemoryTracker};
use crate::report::GpuKernelStats;

use super::{column_lanes, BLOCK_THREADS};

/// COO-Mttkrp-GPU.
pub fn mttkrp_coo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    x: &CooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<(DenseMatrix<S>, GpuKernelStats)> {
    let out = mttkrp_seq(x, factors, mode)?;
    let order = x.order();
    let m = x.nnz();
    let r = factors[0].cols();
    let rx = column_lanes(r);
    let npw = (32 / rx).max(1); // nonzeros per warp
    let nnz_per_block = (BLOCK_THREADS / rx).max(1);
    let grid = m.div_ceil(nnz_per_block).max(1);

    let mut space = AddressSpace::new();
    let inds: Vec<u64> = (0..order).map(|_| space.alloc(4 * m as u64)).collect();
    let xval = space.alloc(S::BYTES * m as u64);
    let fbase: Vec<u64> = factors
        .iter()
        .map(|f| space.alloc(S::BYTES * (f.rows() * r) as u64))
        .collect();
    let abase = fbase[mode];

    let mut t = MemoryTracker::new(dev, grid);
    let mut z0 = 0usize;
    while z0 < m {
        let nz = (m - z0).min(npw);
        t.begin_block(z0 / nnz_per_block);
        // Index and value loads (one lane per nonzero, contiguous).
        for base in &inds {
            t.access_contig(AccessKind::Load, *base, z0 as u64, nz as u64, 4);
        }
        t.access_contig(AccessKind::Load, xval, z0 as u64, nz as u64, S::BYTES);
        // Factor-row gathers for the non-product modes, rx columns at a
        // time (column chunks beyond the warp width replay).
        for chunk0 in (0..r).step_by(rx) {
            let cw = rx.min(r - chunk0);
            for (md, base) in fbase.iter().enumerate() {
                if md == mode {
                    continue;
                }
                let mut addrs: Vec<u64> = Vec::with_capacity(32);
                for z in z0..z0 + nz {
                    let i = x.mode_inds(md)[z] as u64;
                    for rl in 0..cw as u64 {
                        if addrs.len() < 32 {
                            addrs.push(base + S::BYTES * (i * r as u64 + chunk0 as u64 + rl));
                        }
                    }
                }
                t.access_gather(AccessKind::Load, &addrs, S::BYTES);
            }
            // Atomic adds to the output rows.
            let mut aaddrs: Vec<u64> = Vec::with_capacity(32);
            for z in z0..z0 + nz {
                let i = x.mode_inds(mode)[z] as u64;
                for rl in 0..cw as u64 {
                    if aaddrs.len() < 32 {
                        aaddrs.push(abase + S::BYTES * (i * r as u64 + chunk0 as u64 + rl));
                    }
                }
            }
            t.atomic_gather(&aaddrs, S::BYTES);
            t.instr(order as f64);
        }
        z0 += nz;
    }

    let stats = GpuKernelStats::from_tracker(
        "Mttkrp",
        "COO",
        dev,
        &t,
        grid,
        BLOCK_THREADS,
        Kernel::Mttkrp.flops(order, m as u64, r as u64),
    );
    Ok((out, stats))
}

/// HiCOO-Mttkrp-GPU: one tensor block per thread block.
pub fn mttkrp_hicoo_gpu<S: Scalar>(
    dev: &DeviceSpec,
    h: &HicooTensor<S>,
    factors: &[&DenseMatrix<S>],
    mode: usize,
) -> Result<(DenseMatrix<S>, GpuKernelStats)> {
    let out = mttkrp_hicoo_seq(h, factors, mode)?;
    let order = h.order();
    let m = h.nnz();
    let r = factors[0].cols();
    let rx = column_lanes(r);
    let npw = (32 / rx).max(1);
    let nb = h.num_blocks().max(1);
    let bits = h.block_bits();

    let mut space = AddressSpace::new();
    let bptr = space.alloc(8 * (nb as u64 + 1));
    let binds: Vec<u64> = (0..order).map(|_| space.alloc(4 * nb as u64)).collect();
    let einds: Vec<u64> = (0..order).map(|_| space.alloc(m as u64)).collect();
    let xval = space.alloc(S::BYTES * m as u64);
    let fbase: Vec<u64> = factors
        .iter()
        .map(|f| space.alloc(S::BYTES * (f.rows() * r) as u64))
        .collect();
    let abase = fbase[mode];

    let mut t = MemoryTracker::new(dev, nb);
    for b in 0..h.num_blocks() {
        t.begin_block(b);
        // Block metadata: bptr pair plus one block index per mode.
        t.access_contig(AccessKind::Load, bptr, b as u64, 2, 8);
        for base in &binds {
            t.access_contig(AccessKind::Load, *base, b as u64, 1, 4);
        }
        let base_rows: Vec<u64> = (0..order)
            .map(|md| (h.block_ind(b, md) as u64) << bits)
            .collect();
        let range = h.block_range(b);
        let mut z0 = range.start;
        while z0 < range.end {
            let nz = (range.end - z0).min(npw);
            // 8-bit element indices and the values.
            for base in &einds {
                t.access_contig(AccessKind::Load, *base, z0 as u64, nz as u64, 1);
            }
            t.access_contig(AccessKind::Load, xval, z0 as u64, nz as u64, S::BYTES);
            for chunk0 in (0..r).step_by(rx) {
                let cw = rx.min(r - chunk0);
                for (md, base) in fbase.iter().enumerate() {
                    if md == mode {
                        continue;
                    }
                    let mut addrs: Vec<u64> = Vec::with_capacity(32);
                    for z in z0..z0 + nz {
                        let i = base_rows[md] + h.einds()[md][z] as u64;
                        for rl in 0..cw as u64 {
                            if addrs.len() < 32 {
                                addrs.push(base + S::BYTES * (i * r as u64 + chunk0 as u64 + rl));
                            }
                        }
                    }
                    t.access_gather(AccessKind::Load, &addrs, S::BYTES);
                }
                let mut aaddrs: Vec<u64> = Vec::with_capacity(32);
                for z in z0..z0 + nz {
                    let i = base_rows[mode] + h.einds()[mode][z] as u64;
                    for rl in 0..cw as u64 {
                        if aaddrs.len() < 32 {
                            aaddrs.push(abase + S::BYTES * (i * r as u64 + chunk0 as u64 + rl));
                        }
                    }
                }
                t.atomic_gather(&aaddrs, S::BYTES);
                t.instr(order as f64);
            }
            z0 += nz;
        }
    }

    let stats = GpuKernelStats::from_tracker(
        "Mttkrp",
        "HiCOO",
        dev,
        &t,
        nb,
        BLOCK_THREADS,
        Kernel::Mttkrp.flops(order, m as u64, r as u64),
    );
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use tenbench_core::scalar::approx_eq;
    use tenbench_core::shape::Shape;

    use super::*;

    fn sample(n: usize) -> CooTensor<f32> {
        let entries: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![
                        (i % 37) as u32,
                        ((i * 3) % 31) as u32,
                        ((i * 7) % 29) as u32,
                    ],
                    ((i % 13) as f32 - 6.0) * 0.25,
                )
            })
            .collect();
        CooTensor::from_entries(Shape::new(vec![37, 31, 29]), entries).unwrap()
    }

    fn factors(x: &CooTensor<f32>, r: usize) -> Vec<DenseMatrix<f32>> {
        (0..x.order())
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                    ((i * 5 + j * 3 + m) % 7) as f32 - 3.0
                })
            })
            .collect()
    }

    #[test]
    fn functional_output_matches_cpu_every_mode() {
        let x = sample(2000);
        let f = factors(&x, 16);
        let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
        let dev = DeviceSpec::p100();
        for mode in 0..3 {
            let (out, stats) = mttkrp_coo_gpu(&dev, &x, &frefs, mode).unwrap();
            let cpu = mttkrp_seq(&x, &frefs, mode).unwrap();
            for (a, b) in out.data().iter().zip(cpu.data()) {
                assert!(approx_eq(*a, *b, 1e-5));
            }
            assert!(stats.atomics > 0);
        }
    }

    #[test]
    fn hicoo_matches_cpu_every_mode() {
        let x = sample(1500);
        let h = HicooTensor::from_coo(&x, 3).unwrap();
        let f = factors(&x, 16);
        let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
        let dev = DeviceSpec::v100();
        for mode in 0..3 {
            let (out, stats) = mttkrp_hicoo_gpu(&dev, &h, &frefs, mode).unwrap();
            let cpu = mttkrp_seq(&x, &frefs, mode).unwrap();
            for (a, b) in out.data().iter().zip(cpu.data()) {
                assert!(approx_eq(*a, *b, 1e-4));
            }
            assert_eq!(stats.grid_blocks, h.num_blocks());
        }
    }

    #[test]
    fn row_contention_shows_up_as_atomic_conflicts() {
        // Every nonzero in mode 0 row 0: same output row -> warp conflicts.
        let entries: Vec<(Vec<u32>, f32)> = (0..640)
            .map(|i| (vec![0, (i % 31) as u32, (i / 31) as u32], 1.0))
            .collect();
        let hot = CooTensor::from_entries(Shape::new(vec![4, 31, 32]), entries).unwrap();
        let f = factors(&hot, 16);
        let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
        let dev = DeviceSpec::p100();
        let (_, hot_stats) = mttkrp_coo_gpu(&dev, &hot, &frefs, 0).unwrap();
        // Spread tensor: distinct rows -> conflict depth ~ warp count.
        let spread = sample(640);
        let fs = factors(&spread, 16);
        let fsr: Vec<&DenseMatrix<f32>> = fs.iter().collect();
        let (_, spread_stats) = mttkrp_coo_gpu(&dev, &spread, &fsr, 0).unwrap();
        assert!(hot_stats.atomic_conflict_depth > spread_stats.atomic_conflict_depth);
    }

    #[test]
    fn v100_beats_p100_on_mttkrp() {
        // Observation: improved atomics + bigger L2 + more bandwidth.
        let x = sample(4000);
        let f = factors(&x, 16);
        let frefs: Vec<&DenseMatrix<f32>> = f.iter().collect();
        let (_, p) = mttkrp_coo_gpu(&DeviceSpec::p100(), &x, &frefs, 0).unwrap();
        let (_, v) = mttkrp_coo_gpu(&DeviceSpec::v100(), &x, &frefs, 0).unwrap();
        assert!(v.time_s < p.time_s);
    }
}
