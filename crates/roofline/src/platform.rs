//! The paper's Table 4 platform registry.
//!
//! The four machines cannot be measured from this repository, so each entry
//! carries the published theoretical numbers plus a *modeled* obtainable
//! ("ERT-DRAM") bandwidth at the fraction of theoretical that ERT typically
//! reports (the paper's Figure 3 shows ERT-DRAM below the theoretical DRAM
//! line on every machine). The host platform is measured live by
//! [`crate::ert`] instead.

/// CPU or GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// Multicore CPU (the paper's NUMA Intel machines).
    Cpu,
    /// NVIDIA GPU.
    Gpu,
}

/// One platform of Table 4.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Short identifier ("bluesky", "wingtip", "dgx1p", "dgx1v").
    pub id: &'static str,
    /// Display name as in the paper.
    pub name: &'static str,
    /// CPU or GPU.
    pub kind: PlatformKind,
    /// Processor model.
    pub processor: &'static str,
    /// Microarchitecture.
    pub microarch: &'static str,
    /// Core clock in GHz.
    pub frequency_ghz: f64,
    /// Physical cores (CUDA cores for GPUs).
    pub cores: u32,
    /// Peak single-precision TFLOPS.
    pub peak_sp_tflops: f64,
    /// Last-level cache in MiB.
    pub llc_mib: f64,
    /// Main/global memory in GiB.
    pub mem_gib: f64,
    /// Memory type.
    pub mem_type: &'static str,
    /// Memory frequency in GHz.
    pub mem_freq_ghz: f64,
    /// Theoretical memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Modeled obtainable (ERT-DRAM) bandwidth in GB/s.
    pub ert_dram_gbs: f64,
    /// Compiler listed in the paper.
    pub compiler: &'static str,
}

impl Platform {
    /// Peak single-precision GFLOPS.
    pub fn peak_sp_gflops(&self) -> f64 {
        self.peak_sp_tflops * 1000.0
    }
}

/// The four platforms of Table 4, in the paper's column order.
///
/// Obtainable-bandwidth fractions: ERT measurements typically reach ~80% of
/// theoretical DRAM bandwidth on the Intel server parts and ~78% (P100) /
/// ~88% (V100) on the NVIDIA parts (V100's HBM2 controllers are markedly
/// more efficient than P100's — the same ordering Figure 3 shows).
pub static PLATFORMS: &[Platform] = &[
    Platform {
        id: "bluesky",
        name: "Bluesky",
        kind: PlatformKind::Cpu,
        processor: "Intel Xeon Gold 6126",
        microarch: "Skylake",
        frequency_ghz: 2.60,
        cores: 24,
        peak_sp_tflops: 1.0,
        llc_mib: 19.0,
        mem_gib: 196.0,
        mem_type: "DDR4",
        mem_freq_ghz: 2.666,
        mem_bw_gbs: 256.0,
        ert_dram_gbs: 205.0,
        compiler: "gcc 7.1.0",
    },
    Platform {
        id: "wingtip",
        name: "Wingtip",
        kind: PlatformKind::Cpu,
        processor: "Intel Xeon E7-4850 v3",
        microarch: "Haswell",
        frequency_ghz: 2.20,
        cores: 56,
        peak_sp_tflops: 2.0,
        llc_mib: 35.0,
        mem_gib: 2114.0,
        mem_type: "DDR4",
        mem_freq_ghz: 2.133,
        mem_bw_gbs: 273.0,
        ert_dram_gbs: 218.0,
        compiler: "gcc 5.5.0",
    },
    Platform {
        id: "dgx1p",
        name: "DGX-1P",
        kind: PlatformKind::Gpu,
        processor: "NVIDIA Tesla P100",
        microarch: "Pascal",
        frequency_ghz: 1.48,
        cores: 3584,
        peak_sp_tflops: 10.6,
        llc_mib: 4.0,
        mem_gib: 16.0,
        mem_type: "HBM2",
        mem_freq_ghz: 0.715,
        mem_bw_gbs: 732.0,
        ert_dram_gbs: 571.0,
        compiler: "CUDA Tkit 9.1",
    },
    Platform {
        id: "dgx1v",
        name: "DGX-1V",
        kind: PlatformKind::Gpu,
        processor: "NVIDIA Tesla V100",
        microarch: "Volta",
        frequency_ghz: 1.53,
        cores: 5120,
        peak_sp_tflops: 14.9,
        llc_mib: 6.0,
        mem_gib: 16.0,
        mem_type: "HBM2",
        mem_freq_ghz: 0.877,
        mem_bw_gbs: 900.0,
        ert_dram_gbs: 792.0,
        compiler: "CUDA Tkit 9.0",
    },
];

/// Look a platform up by id.
pub fn find(id: &str) -> Option<&'static Platform> {
    PLATFORMS.iter().find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_platforms_as_in_table4() {
        assert_eq!(PLATFORMS.len(), 4);
        assert_eq!(PLATFORMS[0].name, "Bluesky");
        assert_eq!(PLATFORMS[3].name, "DGX-1V");
    }

    #[test]
    fn gpu_advantage_matches_paper_claims() {
        // "GPUs show advantages in peak performance and memory bandwidth
        // over CPUs by approximately 4-12x and 3-7x respectively."
        let cpu_min_peak = 1.0;
        let cpu_max_peak = 2.0;
        for gpu in PLATFORMS.iter().filter(|p| p.kind == PlatformKind::Gpu) {
            let lo = gpu.peak_sp_tflops / cpu_max_peak;
            let hi = gpu.peak_sp_tflops / cpu_min_peak;
            assert!(lo >= 4.0 && hi <= 16.0, "{}", gpu.id);
            assert!(gpu.mem_bw_gbs / 273.0 >= 2.5 && gpu.mem_bw_gbs / 256.0 <= 7.0);
        }
    }

    #[test]
    fn obtainable_bandwidth_is_below_theoretical() {
        for p in PLATFORMS {
            assert!(p.ert_dram_gbs < p.mem_bw_gbs, "{}", p.id);
            assert!(p.ert_dram_gbs > 0.5 * p.mem_bw_gbs, "{}", p.id);
        }
    }

    #[test]
    fn find_by_id() {
        assert_eq!(find("dgx1p").unwrap().microarch, "Pascal");
        assert!(find("nope").is_none());
    }

    #[test]
    fn v100_llc_is_twice_p100() {
        // Observation 2 leans on this: "V100 GPU architecture has a twice
        // larger LLC than P100".
        let p = find("dgx1p").unwrap();
        let v = find("dgx1v").unwrap();
        assert!((v.llc_mib / p.llc_mib - 1.5).abs() <= 0.5);
    }
}
