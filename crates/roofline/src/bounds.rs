//! Per-kernel, per-tensor Roofline performance bounds (paper §5.2).
//!
//! "We use the computed obtainable performance of all tensor kernels as the
//! upper bounds in our performance figures (called 'Roofline performance'),
//! calculated by timing an OI value with the 'ERT-DRAM' bandwidth. The OI
//! value is an accurate #Flops/#Bytes ratio by taking different tensor
//! features into account, especially for Ttv and Ttm because of the M_F
//! term."

use tenbench_core::analysis::{
    mttkrp_coo_cost, mttkrp_hicoo_cost, tew_cost, ts_cost, ttm_cost, ttv_cost, KernelCost,
};

/// A Roofline performance bound for one kernel on one tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelBound {
    /// Exact operational intensity (flops/byte).
    pub oi: f64,
    /// Bound in GFLOPS (`min(peak, OI x ERT-DRAM bandwidth)`).
    pub gflops: f64,
}

/// Compute the bound from a Table 1 cost under a machine's ERT-DRAM
/// bandwidth and compute roof.
pub fn bound_from_cost(cost: KernelCost, ert_dram_gbs: f64, peak_gflops: f64) -> KernelBound {
    let oi = cost.oi();
    KernelBound {
        oi,
        gflops: (oi * ert_dram_gbs).min(peak_gflops),
    }
}

/// Tew bound.
pub fn tew_bound(m: u64, ert_dram_gbs: f64, peak_gflops: f64) -> KernelBound {
    bound_from_cost(tew_cost(m), ert_dram_gbs, peak_gflops)
}

/// Ts bound.
pub fn ts_bound(m: u64, ert_dram_gbs: f64, peak_gflops: f64) -> KernelBound {
    bound_from_cost(ts_cost(m), ert_dram_gbs, peak_gflops)
}

/// Ttv bound with the exact `M_F` term.
pub fn ttv_bound(
    order: usize,
    m: u64,
    mf: u64,
    ert_dram_gbs: f64,
    peak_gflops: f64,
) -> KernelBound {
    bound_from_cost(ttv_cost(order, m, mf), ert_dram_gbs, peak_gflops)
}

/// Ttm bound with the exact `M_F` term.
pub fn ttm_bound(
    order: usize,
    m: u64,
    mf: u64,
    r: u64,
    ert_dram_gbs: f64,
    peak_gflops: f64,
) -> KernelBound {
    bound_from_cost(ttm_cost(order, m, mf, r), ert_dram_gbs, peak_gflops)
}

/// COO Mttkrp bound.
pub fn mttkrp_coo_bound(
    order: usize,
    m: u64,
    r: u64,
    ert_dram_gbs: f64,
    peak_gflops: f64,
) -> KernelBound {
    bound_from_cost(mttkrp_coo_cost(order, m, r), ert_dram_gbs, peak_gflops)
}

/// HiCOO Mttkrp bound (block reuse raises the OI, so this bound sits above
/// the COO one when blocks are dense).
pub fn mttkrp_hicoo_bound(
    order: usize,
    m: u64,
    r: u64,
    nb: u64,
    block_size: u64,
    ert_dram_gbs: f64,
    peak_gflops: f64,
) -> KernelBound {
    bound_from_cost(
        mttkrp_hicoo_cost(order, m, r, nb, block_size),
        ert_dram_gbs,
        peak_gflops,
    )
}

/// Performance efficiency relative to a bound, as the paper reports (can
/// exceed 1 for cache-resident tensors — Observation 2).
pub fn efficiency(achieved_gflops: f64, bound: KernelBound) -> f64 {
    if bound.gflops <= 0.0 {
        0.0
    } else {
        achieved_gflops / bound.gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 205.0;
    const PEAK: f64 = 1000.0;

    #[test]
    fn asymptotic_ois_match_table1() {
        assert!((tew_bound(1 << 20, BW, PEAK).oi - 1.0 / 12.0).abs() < 1e-12);
        assert!((ts_bound(1 << 20, BW, PEAK).oi - 1.0 / 8.0).abs() < 1e-12);
        let t = ttv_bound(3, 1 << 20, 1, BW, PEAK);
        assert!((t.oi - 1.0 / 6.0).abs() < 1e-3);
    }

    #[test]
    fn bounds_scale_with_bandwidth() {
        let a = tew_bound(1000, 100.0, PEAK);
        let b = tew_bound(1000, 200.0, PEAK);
        assert!((b.gflops / a.gflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mf_term_lowers_the_ttv_bound() {
        // More fibers -> more output traffic -> lower OI and bound.
        let few = ttv_bound(3, 1_000_000, 1_000, BW, PEAK);
        let many = ttv_bound(3, 1_000_000, 900_000, BW, PEAK);
        assert!(many.oi < few.oi);
        assert!(many.gflops < few.gflops);
    }

    #[test]
    fn hicoo_mttkrp_bound_dominates_coo_for_dense_blocks() {
        let coo = mttkrp_coo_bound(3, 1_000_000, 16, BW, PEAK);
        let hic = mttkrp_hicoo_bound(3, 1_000_000, 16, 2_000, 128, BW, PEAK);
        assert!(hic.gflops > coo.gflops);
    }

    #[test]
    fn efficiency_can_exceed_one() {
        let b = tew_bound(1000, BW, PEAK);
        assert!(efficiency(b.gflops * 3.5, b) > 3.0); // cache-resident case
        assert_eq!(
            efficiency(
                1.0,
                KernelBound {
                    oi: 0.0,
                    gflops: 0.0
                }
            ),
            0.0
        );
    }

    #[test]
    fn peak_caps_the_bound() {
        let b = ttm_bound(3, 1 << 20, 1, 1 << 20, 1e9, PEAK);
        assert_eq!(b.gflops, PEAK);
    }
}
