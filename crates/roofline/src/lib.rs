//! # tenbench-roofline
//!
//! Roofline performance modeling for the `tenbench` suite (paper §5.2).
//!
//! * [`platform`] — the Table 4 platform registry (Bluesky, Wingtip,
//!   DGX-1P, DGX-1V) plus a descriptor for the host this suite runs on.
//! * [`ert`] — an Empirical Roofline Tool work-alike: STREAM-style
//!   micro-kernels swept over working-set sizes measure the host's
//!   obtainable DRAM and cache bandwidth and peak single-precision rate.
//! * [`model`] — roofline curves (`attainable = min(peak, OI x BW)`) and
//!   the kernel operational-intensity marks of Figure 3.
//! * [`bounds`] — the per-kernel, per-tensor "Roofline performance" upper
//!   bounds the paper overlays on Figures 4–7, using the exact OI from the
//!   Table 1 formulas.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod ert;
pub mod model;
pub mod platform;

pub use bounds::KernelBound;
pub use ert::{ErtConfig, ErtReport};
pub use model::Roofline;
pub use platform::{Platform, PlatformKind, PLATFORMS};
