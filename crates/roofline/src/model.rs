//! Roofline curves (Williams et al.): `attainable(OI) = min(peak, OI x BW)`
//! with one line per bandwidth ceiling, plus the kernel OI marks the paper
//! overlays in Figure 3.

use crate::ert::ErtReport;
use crate::platform::Platform;

/// One bandwidth ceiling of a roofline plot.
#[derive(Debug, Clone)]
pub struct Ceiling {
    /// Label ("DRAM (theoretical)", "ERT-DRAM", "ERT-LLC", …).
    pub name: String,
    /// Bandwidth in GB/s.
    pub gbs: f64,
}

/// A roofline model for one machine.
#[derive(Debug, Clone)]
pub struct Roofline {
    /// Machine label.
    pub name: String,
    /// Peak single-precision GFLOPS.
    pub peak_gflops: f64,
    /// Bandwidth ceilings, fastest first. The *last* entry is the ERT-DRAM
    /// line the paper computes its "Roofline performance" bounds from.
    pub ceilings: Vec<Ceiling>,
}

impl Roofline {
    /// Build from a Table 4 platform entry: theoretical DRAM plus the
    /// modeled ERT-DRAM ceiling.
    pub fn from_platform(p: &Platform) -> Self {
        Roofline {
            name: p.name.to_string(),
            peak_gflops: p.peak_sp_gflops(),
            ceilings: vec![
                Ceiling {
                    name: "DRAM (theoretical)".into(),
                    gbs: p.mem_bw_gbs,
                },
                Ceiling {
                    name: "ERT-DRAM".into(),
                    gbs: p.ert_dram_gbs,
                },
            ],
        }
    }

    /// Build from a live ERT measurement of the host.
    pub fn from_ert(name: &str, r: &ErtReport) -> Self {
        Roofline {
            name: name.to_string(),
            peak_gflops: r.peak_gflops,
            ceilings: vec![
                Ceiling {
                    name: "ERT-cache".into(),
                    gbs: r.cache_gbs,
                },
                Ceiling {
                    name: "ERT-DRAM".into(),
                    gbs: r.dram_gbs,
                },
            ],
        }
    }

    /// The ERT-DRAM bandwidth (last ceiling).
    pub fn ert_dram_gbs(&self) -> f64 {
        self.ceilings.last().map_or(0.0, |c| c.gbs)
    }

    /// Attainable GFLOPS at operational intensity `oi` under ceiling `c`.
    pub fn attainable(&self, oi: f64, ceiling: usize) -> f64 {
        (oi * self.ceilings[ceiling].gbs).min(self.peak_gflops)
    }

    /// Attainable GFLOPS under the ERT-DRAM ceiling — the paper's "Roofline
    /// performance".
    pub fn attainable_dram(&self, oi: f64) -> f64 {
        (oi * self.ert_dram_gbs()).min(self.peak_gflops)
    }

    /// OI at which a ceiling reaches the compute roof.
    pub fn ridge_point(&self, ceiling: usize) -> f64 {
        self.peak_gflops / self.ceilings[ceiling].gbs
    }

    /// Log-spaced `(oi, gflops)` samples of one ceiling's roofline between
    /// `oi_min` and `oi_max` — the plotting series for Figure 3.
    pub fn series(&self, ceiling: usize, oi_min: f64, oi_max: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(oi_min > 0.0 && oi_max > oi_min && n >= 2);
        let l0 = oi_min.ln();
        let l1 = oi_max.ln();
        (0..n)
            .map(|i| {
                let oi = (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp();
                (oi, self.attainable(oi, ceiling))
            })
            .collect()
    }
}

/// Roofline annotation of one *measured* kernel execution: the achieved
/// rate placed against the model (the instrumented-counter analogue of the
/// paper's "Roofline performance" bound).
#[derive(Debug, Clone, PartialEq)]
pub struct Achieved {
    /// Achieved GFLOPS (`flops / secs / 1e9`).
    pub gflops: f64,
    /// Measured operational intensity (`flops / bytes`).
    pub oi: f64,
    /// Attainable GFLOPS at this OI under the ERT-DRAM ceiling.
    pub bound_gflops: f64,
    /// Which roof binds at this OI: `"memory"` below the ERT-DRAM ridge
    /// point, `"compute"` at or above it.
    pub bound_by: &'static str,
    /// Achieved rate as a percentage of the binding roof.
    pub pct_of_roof: f64,
}

impl Roofline {
    /// Annotate a measured `(flops, bytes, secs)` triple — typically the
    /// per-call deltas of the obs `kernel.flops` / `kernel.bytes` counters
    /// around a timed kernel invocation.
    pub fn annotate(&self, flops: u64, bytes: u64, secs: f64) -> Achieved {
        let gflops = if secs > 0.0 {
            flops as f64 / secs / 1e9
        } else {
            0.0
        };
        // OI is undefined with no traffic. Report 0 rather than a
        // non-finite value: zero-work cells (empty tensors) land here, and
        // every downstream JSON writer needs finite fields.
        let oi = if bytes > 0 {
            flops as f64 / bytes as f64
        } else {
            0.0
        };
        let bound_gflops = self.attainable_dram(oi);
        let bound_by = if oi * self.ert_dram_gbs() < self.peak_gflops {
            "memory"
        } else {
            "compute"
        };
        let pct_of_roof = if bound_gflops > 0.0 {
            100.0 * gflops / bound_gflops
        } else {
            0.0
        };
        Achieved {
            gflops,
            oi,
            bound_gflops,
            bound_by,
            pct_of_roof,
        }
    }
}

/// The asymptotic kernel OI marks of Figure 3 (from Table 1).
pub fn kernel_oi_marks() -> Vec<(&'static str, f64)> {
    vec![
        ("Tew", 1.0 / 12.0),
        ("Ts", 1.0 / 8.0),
        ("Ttv", 1.0 / 6.0),
        ("Mttkrp", 1.0 / 4.0),
        ("Ttm", 1.0 / 2.0),
    ]
}

#[cfg(test)]
mod tests {
    use crate::platform::find;

    use super::*;

    #[test]
    fn attainable_is_min_of_bw_and_peak() {
        let r = Roofline::from_platform(find("bluesky").unwrap());
        // At tiny OI the bandwidth line rules.
        let low = r.attainable_dram(1.0 / 12.0);
        assert!((low - 205.0 / 12.0).abs() < 1e-9);
        // At huge OI the compute roof rules.
        assert_eq!(r.attainable_dram(1e9), 1000.0);
    }

    #[test]
    fn every_tensor_kernel_is_memory_bound_on_all_platforms() {
        // The paper's Figure 3 conclusion: "all of the sparse tensor kernels
        // we consider are main or global memory bound".
        for p in crate::platform::PLATFORMS {
            let r = Roofline::from_platform(p);
            for (name, oi) in kernel_oi_marks() {
                assert!(
                    oi < r.ridge_point(1),
                    "{name} on {} would be compute bound",
                    p.id
                );
            }
        }
    }

    #[test]
    fn series_is_monotone_nondecreasing() {
        let r = Roofline::from_platform(find("dgx1v").unwrap());
        let s = r.series(1, 0.01, 100.0, 32);
        assert_eq!(s.len(), 32);
        for w in s.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn oi_marks_are_ordered_as_in_figure3() {
        let marks = kernel_oi_marks();
        for w in marks.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn annotate_places_measurements_against_the_model() {
        let r = Roofline::from_platform(find("bluesky").unwrap());
        // Memory-bound: Mttkrp-like OI of 1/4 at some achieved rate.
        let a = r.annotate(1_000_000_000, 4_000_000_000, 0.1);
        assert_eq!(a.gflops, 10.0);
        assert!((a.oi - 0.25).abs() < 1e-12);
        assert_eq!(a.bound_by, "memory");
        assert!((a.bound_gflops - 0.25 * r.ert_dram_gbs()).abs() < 1e-9);
        assert!((a.pct_of_roof - 100.0 * 10.0 / a.bound_gflops).abs() < 1e-9);
        // Compute-bound: huge OI pins the bound to the peak.
        let c = r.annotate(u64::MAX, 1, 1.0);
        assert_eq!(c.bound_by, "compute");
        assert_eq!(c.bound_gflops, r.peak_gflops);
        // Degenerate inputs don't divide by zero, and every field stays
        // finite so reports built from zero-work cells remain valid JSON.
        let z = r.annotate(100, 0, 0.0);
        assert_eq!(z.gflops, 0.0);
        assert_eq!(z.oi, 0.0);
        assert!(z.bound_gflops.is_finite());
        assert!(z.pct_of_roof.is_finite());
    }

    #[test]
    fn from_ert_uses_measured_numbers() {
        let fake = ErtReport {
            points: vec![],
            dram_gbs: 42.0,
            cache_gbs: 100.0,
            peak_gflops: 500.0,
            threads: 4,
        };
        let r = Roofline::from_ert("host", &fake);
        assert_eq!(r.ert_dram_gbs(), 42.0);
        assert_eq!(r.attainable_dram(1.0), 42.0);
        assert_eq!(r.peak_gflops, 500.0);
    }
}
