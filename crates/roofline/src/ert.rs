//! An Empirical Roofline Tool (ERT) work-alike (paper §5.2).
//!
//! The paper uses ERT micro-kernels ("similar to STREAM") to measure each
//! machine's obtainable bandwidth at every memory level. This module does
//! the same for the host: a parallel triad kernel (`a[i] = b[i]*s + c[i]`)
//! is swept across working-set sizes, yielding cache bandwidth at small
//! sizes and DRAM bandwidth at the plateau, plus a register-resident FMA
//! chain for the peak single-precision rate.

use std::hint::black_box;
use std::time::Instant;

use rayon::prelude::*;

/// Configuration for one ERT run.
#[derive(Debug, Clone)]
pub struct ErtConfig {
    /// Smallest working set in bytes (sampled per power of two).
    pub min_working_set: usize,
    /// Largest working set in bytes.
    pub max_working_set: usize,
    /// Trials per point; the best (highest-bandwidth) trial is kept, as in
    /// STREAM.
    pub trials: usize,
    /// Approximate measurement time per point in seconds.
    pub target_seconds: f64,
}

impl Default for ErtConfig {
    fn default() -> Self {
        ErtConfig {
            min_working_set: 64 << 10,
            max_working_set: 256 << 20,
            trials: 3,
            target_seconds: 0.08,
        }
    }
}

impl ErtConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ErtConfig {
            min_working_set: 64 << 10,
            max_working_set: 8 << 20,
            trials: 1,
            target_seconds: 0.01,
        }
    }
}

/// One measured bandwidth point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Total working set in bytes (three arrays combined).
    pub bytes: usize,
    /// Measured bandwidth in GB/s.
    pub gbs: f64,
}

/// The result of an ERT run.
#[derive(Debug, Clone)]
pub struct ErtReport {
    /// Bandwidth per working-set size, ascending.
    pub points: Vec<BandwidthPoint>,
    /// Obtainable DRAM bandwidth (median of the largest working sets).
    pub dram_gbs: f64,
    /// Obtainable cache bandwidth (best small-working-set point).
    pub cache_gbs: f64,
    /// Peak single-precision GFLOPS from the FMA chain kernel.
    pub peak_gflops: f64,
    /// Worker threads used.
    pub threads: usize,
}

/// Run the bandwidth sweep and peak measurement.
pub fn run(config: &ErtConfig) -> ErtReport {
    let threads = rayon::current_num_threads().max(1);
    let mut points = Vec::new();
    let mut ws = config.min_working_set.max(12 * threads * 64);
    while ws <= config.max_working_set {
        points.push(BandwidthPoint {
            bytes: ws,
            gbs: measure_triad(ws, config),
        });
        ws *= 2;
    }
    let dram_gbs = {
        let tail: Vec<f64> = points
            .iter()
            .rev()
            .take(3.min(points.len()))
            .map(|p| p.gbs)
            .collect();
        median(&tail)
    };
    let cache_gbs = points
        .iter()
        .take(3.min(points.len()))
        .map(|p| p.gbs)
        .fold(0.0f64, f64::max);
    let peak_gflops = measure_peak(config);
    ErtReport {
        points,
        dram_gbs,
        cache_gbs,
        peak_gflops,
        threads,
    }
}

fn median(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if s.is_empty() {
        0.0
    } else {
        s[s.len() / 2]
    }
}

/// Triad over a combined working set of `ws` bytes; returns GB/s.
fn measure_triad(ws: usize, config: &ErtConfig) -> f64 {
    let n = (ws / (3 * 4)).max(1024); // three f32 arrays
    let mut a = vec![0.0f32; n];
    let b = vec![1.5f32; n];
    let c = vec![0.5f32; n];
    let s = 2.0f32;

    // Calibrate repetitions to roughly target_seconds.
    let bytes_per_pass = (n * 12) as f64;
    let assumed_gbs = 20.0e9; // conservative first guess
    let mut reps = ((config.target_seconds * assumed_gbs) / bytes_per_pass).ceil() as usize;
    reps = reps.clamp(2, 1_000_000);

    let chunk = n.div_ceil(rayon::current_num_threads().max(1)).max(1024);
    let mut best = 0.0f64;
    for _ in 0..config.trials.max(1) {
        let t0 = Instant::now();
        for _ in 0..reps {
            a.par_chunks_mut(chunk)
                .zip(b.par_chunks(chunk))
                .zip(c.par_chunks(chunk))
                .for_each(|((ac, bc), cc)| {
                    for i in 0..ac.len() {
                        ac[i] = bc[i] * s + cc[i];
                    }
                });
        }
        let dt = t0.elapsed().as_secs_f64();
        black_box(&a);
        let gbs = bytes_per_pass * reps as f64 / dt / 1e9;
        best = best.max(gbs);
    }
    best
}

/// Register-resident FMA chains; returns GFLOPS.
fn measure_peak(config: &ErtConfig) -> f64 {
    let threads = rayon::current_num_threads().max(1);
    let iters: u64 = (config.target_seconds * 2.0e9).max(1.0e6) as u64;
    let t0 = Instant::now();
    let sums: f64 = (0..threads)
        .into_par_iter()
        .map(|t| {
            let mut x = [1.0f32 + t as f32 * 1e-3; 8];
            let a = 1.000001f32;
            let b = 1e-7f32;
            for _ in 0..iters {
                for xi in &mut x {
                    *xi = *xi * a + b;
                }
            }
            x.iter().map(|&v| v as f64).sum::<f64>()
        })
        .sum();
    let dt = t0.elapsed().as_secs_f64();
    black_box(sums);
    // 8 chains x 2 flops per iteration per thread.
    (threads as u64 * iters * 16) as f64 / dt / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_report() {
        let r = run(&ErtConfig::quick());
        assert!(!r.points.is_empty());
        assert!(r.dram_gbs > 0.0);
        assert!(r.cache_gbs > 0.0);
        assert!(r.peak_gflops > 0.0);
        assert!(r.threads >= 1);
        // Points ascend in working-set size.
        for w in r.points.windows(2) {
            assert!(w[0].bytes < w[1].bytes);
        }
    }

    #[test]
    fn bandwidth_is_physically_plausible() {
        let r = run(&ErtConfig::quick());
        // Between 0.1 GB/s (something is very wrong) and 10 TB/s (ditto).
        assert!(r.dram_gbs > 0.1 && r.dram_gbs < 10_000.0, "{}", r.dram_gbs);
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
    }
}
