//! Fault-injection corpus: malformed, truncated, and bit-flipped `.tns`
//! and `.tnb` inputs must always produce an `Err`, never a panic and
//! never a header-driven allocation. The exhaustive sweeps drive
//! `FaultReader` systematically at every byte offset of a small tensor;
//! the proptest corpus adds randomized structural damage.
//!
//! Shared invariant: when a damaged read somehow still returns `Ok` (only
//! possible where no CRC covers the bytes, e.g. legacy `TNB1` values),
//! the resulting tensor must still pass `validate()`.

use proptest::prelude::*;
use tenbench_core::coo::CooTensor;
use tenbench_core::shape::Shape;
use tenbench_io::bin::{read_bin, read_bin_with, write_bin, write_bin_legacy, ReadOptions};
use tenbench_io::ckpt::{read_ckpt, write_ckpt, Checkpoint, CheckpointMatrix};
use tenbench_io::fault::{Fault, FaultReader, FaultWriter};
use tenbench_io::tns;
use tenbench_io::IoError;

fn sample_tensor() -> CooTensor<f32> {
    CooTensor::from_entries(
        Shape::new(vec![6, 5, 4]),
        (0..24u32)
            .map(|i| (vec![i % 6, (i / 2) % 5, (i * 3) % 4], i as f32 * 0.5 - 3.0))
            .collect(),
    )
    .unwrap()
}

fn tnb2_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_bin(&sample_tensor(), &mut buf).unwrap();
    buf
}

fn tnb1_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_bin_legacy(&sample_tensor(), &mut buf).unwrap();
    buf
}

fn tns_text() -> String {
    let mut buf = Vec::new();
    tns::write_tns(&sample_tensor(), &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// The shared invariant: no panic (enforced by the test harness), and an
/// `Ok` result implies a structurally valid tensor.
fn assert_err_or_valid(r: Result<CooTensor<f32>, IoError>, context: &str) {
    if let Ok(t) = r {
        assert!(t.validate().is_ok(), "invalid tensor accepted: {context}");
    }
}

#[test]
fn truncation_at_every_offset_is_rejected() {
    for (label, bytes) in [("tnb2", tnb2_bytes()), ("tnb1", tnb1_bytes())] {
        for at in 0..bytes.len() {
            let reader = FaultReader::truncated(bytes.as_slice(), at as u64);
            let r: Result<CooTensor<f32>, _> = read_bin(reader);
            assert!(r.is_err(), "{label} truncated at byte {at} was accepted");
        }
    }
}

#[test]
fn bit_flip_at_every_offset_is_rejected_in_tnb2() {
    // TNB2 CRCs cover every byte, so any single-bit flip must be caught.
    let bytes = tnb2_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let reader = FaultReader::bit_flipped(bytes.as_slice(), at as u64, mask);
            let r: Result<CooTensor<f32>, _> = read_bin(reader);
            assert!(
                r.is_err(),
                "tnb2 bit flip at byte {at} mask {mask:#x} was accepted"
            );
        }
    }
}

#[test]
fn bit_flip_in_tnb1_never_panics() {
    // Legacy TNB1 has no CRCs: flips in the values section legitimately
    // read back Ok, but structural damage must still error, and nothing
    // may panic or trigger a giant allocation.
    let bytes = tnb1_bytes();
    for at in 0..bytes.len() {
        let reader = FaultReader::bit_flipped(bytes.as_slice(), at as u64, 0xFF);
        let r: Result<CooTensor<f32>, _> = read_bin(reader);
        assert_err_or_valid(r, &format!("tnb1 byte {at} xor 0xff"));
    }
}

#[test]
fn short_reads_do_not_corrupt() {
    // Delivering the stream 3 bytes at a time is not a fault; the reader
    // must reassemble it losslessly.
    for bytes in [tnb2_bytes(), tnb1_bytes()] {
        let reader = FaultReader::new(bytes.as_slice(), vec![Fault::ShortReads { max: 3 }]);
        let t: CooTensor<f32> = read_bin(reader).unwrap();
        assert_eq!(t.to_map(), sample_tensor().to_map());
    }
}

#[test]
fn failing_stream_surfaces_io_error() {
    let bytes = tnb2_bytes();
    let mid = bytes.len() as u64 / 2;
    let reader = FaultReader::new(bytes.as_slice(), vec![Fault::FailAfter { at: mid }]);
    let r: Result<CooTensor<f32>, _> = read_bin(reader);
    assert!(matches!(r, Err(IoError::Io(_))));
}

#[test]
fn fault_writer_produces_a_rejected_artifact() {
    // A writer that silently truncates (a full disk that lies) must leave
    // an artifact the reader refuses to load.
    let full = tnb2_bytes();
    for at in [0u64, 4, 16, full.len() as u64 - 1] {
        let mut damaged = Vec::new();
        let mut w = FaultWriter::truncated(&mut damaged, at);
        write_bin(&sample_tensor(), &mut w).unwrap();
        drop(w);
        assert_eq!(damaged.len() as u64, at);
        let r: Result<CooTensor<f32>, _> = read_bin(damaged.as_slice());
        assert!(r.is_err(), "truncated artifact at {at} bytes was accepted");
    }
}

#[test]
fn truncated_tns_never_panics() {
    let text = tns_text();
    for at in 0..text.len() {
        let r: Result<CooTensor<f32>, _> = tns::read_tns(&text.as_bytes()[..at]);
        assert_err_or_valid(r, &format!("tns truncated at {at}"));
    }
}

#[test]
fn allocation_bombs_are_rejected_within_budget() {
    // A 64-byte header claiming 2^60 nonzeros must fail fast on the header
    // check, not by attempting the allocation.
    let nnz_off = 4 + 1 + 1 + 3 * 4; // magic, vwidth, order, dims
                                     // In-budget-arithmetic bomb: rejected against the allocation budget.
    let mut bytes = tnb1_bytes();
    bytes[nnz_off..nnz_off + 8].copy_from_slice(&(1u64 << 50).to_le_bytes());
    let r: Result<CooTensor<f32>, _> =
        read_bin_with(bytes.as_slice(), ReadOptions { max_bytes: 1 << 20 });
    assert!(matches!(r, Err(IoError::BudgetExceeded { .. })), "{r:?}");
    // Arithmetic-overflow bomb: rejected by checked size math.
    let mut bytes = tnb1_bytes();
    bytes[nnz_off..nnz_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    let r: Result<CooTensor<f32>, _> =
        read_bin_with(bytes.as_slice(), ReadOptions { max_bytes: 1 << 20 });
    assert!(matches!(r, Err(IoError::Tensor(_))), "{r:?}");
}

// ------------------------------------------------------------------
// TNC1 factor-matrix checkpoints: the resume path of the decomposition
// job engine. A damaged checkpoint must read back `Err` — never a panic,
// and never an `Ok` carrying silently-wrong factors, because the job
// engine treats `Ok` as "safe to resume from".
// ------------------------------------------------------------------

fn sample_ckpt() -> Checkpoint<f32> {
    Checkpoint {
        kind: 1,
        iteration: 5,
        fit: 0.875,
        matrices: vec![
            CheckpointMatrix {
                rows: 6,
                cols: 4,
                data: (0..24).map(|i| i as f32 * 0.125 - 1.0).collect(),
            },
            CheckpointMatrix {
                rows: 4,
                cols: 1,
                data: vec![1.0, 0.5, 0.25, 0.125],
            },
        ],
        blob: vec![7, 0, 1, 255, 3],
    }
}

fn ckpt_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_ckpt(&sample_ckpt(), &mut buf).unwrap();
    buf
}

#[test]
fn ckpt_truncation_at_every_offset_is_rejected() {
    let bytes = ckpt_bytes();
    for at in 0..bytes.len() {
        let reader = FaultReader::truncated(bytes.as_slice(), at as u64);
        let r: Result<Checkpoint<f32>, _> = read_ckpt(reader);
        assert!(r.is_err(), "ckpt truncated at byte {at} was accepted");
    }
}

#[test]
fn ckpt_bit_flip_at_every_offset_is_rejected() {
    // Header, every factor section, and the blob each carry a CRC-32, so
    // any single-bit flip anywhere in the container must be caught.
    let bytes = ckpt_bytes();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let reader = FaultReader::bit_flipped(bytes.as_slice(), at as u64, mask);
            let r: Result<Checkpoint<f32>, _> = read_ckpt(reader);
            assert!(
                r.is_err(),
                "ckpt bit flip at byte {at} mask {mask:#x} was accepted"
            );
        }
    }
}

#[test]
fn ckpt_fault_writer_produces_a_rejected_artifact() {
    // A lying writer (full disk, dying process) must leave an artifact
    // the resume path refuses rather than resumes-wrong from.
    let full = ckpt_bytes();
    for at in [0u64, 4, 21, full.len() as u64 - 1] {
        let mut damaged = Vec::new();
        let mut w = FaultWriter::truncated(&mut damaged, at);
        write_ckpt(&sample_ckpt(), &mut w).unwrap();
        drop(w);
        assert_eq!(damaged.len() as u64, at);
        let r: Result<Checkpoint<f32>, _> = read_ckpt(damaged.as_slice());
        assert!(
            r.is_err(),
            "truncated ckpt artifact at {at} bytes was accepted"
        );
    }
}

#[test]
fn ckpt_trailing_garbage_is_rejected() {
    let mut bytes = ckpt_bytes();
    bytes.extend_from_slice(b"junk");
    let r: Result<Checkpoint<f32>, _> = read_ckpt(bytes.as_slice());
    assert!(r.is_err(), "trailing garbage was accepted");
}

proptest! {
    #[test]
    fn ckpt_random_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_ckpt::<f32, _>(data.as_slice());
    }

    #[test]
    fn ckpt_random_multi_fault_reads_never_resume_wrong(
        at in 0u64..512,
        mask in 1u8..=255,
        trunc in 0u64..512,
    ) {
        let bytes = ckpt_bytes();
        let reader = FaultReader::new(
            bytes.as_slice(),
            vec![
                Fault::BitFlip { at, mask },
                Fault::Truncate { at: trunc },
                Fault::ShortReads { max: 5 },
            ],
        );
        let r: Result<Checkpoint<f32>, _> = read_ckpt(reader);
        // Every byte of TNC1 sits under a CRC: any in-bounds damage is Err.
        if (at as usize) < bytes.len() || (trunc as usize) < bytes.len() {
            prop_assert!(r.is_err());
        }
    }
}

proptest! {
    #[test]
    fn random_bytes_never_panic_bin(data in prop::collection::vec(0u8..=255, 0..256)) {
        let r: Result<CooTensor<f32>, _> = read_bin(data.as_slice());
        if let Ok(t) = r {
            prop_assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn random_bytes_never_panic_tns(data in prop::collection::vec(0u8..=255, 0..256)) {
        let r: Result<CooTensor<f32>, _> = tns::read_tns(data.as_slice());
        if let Ok(t) = r {
            prop_assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn random_multi_fault_reads_never_panic(
        at in 0u64..256,
        mask in 1u8..=255,
        trunc in 0u64..256,
    ) {
        let bytes = tnb2_bytes();
        let reader = FaultReader::new(
            bytes.as_slice(),
            vec![
                Fault::BitFlip { at, mask },
                Fault::Truncate { at: trunc },
                Fault::ShortReads { max: 7 },
            ],
        );
        let r: Result<CooTensor<f32>, _> = read_bin(reader);
        // Any fault inside the file bounds must be detected; the CRCs
        // cover every byte of TNB2.
        if (at as usize) < bytes.len() || (trunc as usize) < bytes.len() {
            prop_assert!(r.is_err());
        }
    }

    #[test]
    fn random_tns_line_damage_never_panics(
        line in 0usize..16,
        garbage in prop::collection::vec(32u8..127, 0..12),
    ) {
        let text = tns_text();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let i = line % lines.len();
        lines[i] = String::from_utf8_lossy(&garbage).into_owned();
        let damaged = lines.join("\n");
        let r: Result<CooTensor<f32>, _> = tns::read_tns(damaged.as_bytes());
        if let Ok(t) = r {
            prop_assert!(t.validate().is_ok());
        }
    }
}
