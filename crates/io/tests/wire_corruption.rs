//! Wire-protocol corruption corpus, in the same style as `corruption.rs`:
//! truncated frames, bit-flipped headers and payloads, and oversized
//! length prefixes must always produce a typed [`IoError`] or the clean
//! end-of-stream signal — never a panic, a hang, or an allocation sized
//! from an unvalidated length prefix. The networked serving tier turns
//! these errors into typed error frames; this corpus proves the decode
//! layer they sit on never gets them past the CRCs.

use proptest::prelude::*;
use tenbench_io::fault::{Fault, FaultReader};
use tenbench_io::frame::{read_frame, write_frame, FrameKind, FRAME_OVERHEAD, HEADER_BYTES};
use tenbench_io::IoError;

const BUDGET: u64 = 1 << 20;

fn sample_frame() -> Vec<u8> {
    let payload: Vec<u8> = (0..200u32).flat_map(|i| i.to_le_bytes()).collect();
    let mut buf = Vec::new();
    write_frame(
        &mut buf,
        FrameKind::Request,
        0x1234_5678_9ABC_DEF0,
        &payload,
    )
    .unwrap();
    buf
}

#[test]
fn truncation_at_every_offset_is_rejected_or_clean_eof() {
    let bytes = sample_frame();
    for at in 0..bytes.len() {
        let mut reader = FaultReader::truncated(bytes.as_slice(), at as u64);
        let r = read_frame(&mut reader, BUDGET);
        if at == 0 {
            // Zero bytes is a clean close, not corruption.
            assert!(matches!(r, Ok(None)), "empty stream misread at {at}");
        } else {
            assert!(r.is_err(), "frame truncated at byte {at} was accepted");
        }
    }
}

#[test]
fn bit_flip_at_every_offset_is_rejected() {
    // Header and payload each sit under a CRC-32; every single-bit flip
    // anywhere in the frame must be caught.
    let bytes = sample_frame();
    for at in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut reader = FaultReader::bit_flipped(bytes.as_slice(), at as u64, mask);
            let r = read_frame(&mut reader, BUDGET);
            assert!(
                r.is_err(),
                "bit flip at byte {at} mask {mask:#x} was accepted"
            );
        }
    }
}

#[test]
fn oversized_length_prefix_never_allocates() {
    // An honest frame with a payload over budget: rejected by the budget
    // check with the declared size, before the payload is read.
    let mut buf = Vec::new();
    write_frame(&mut buf, FrameKind::Request, 0, &vec![7u8; 2048]).unwrap();
    let r = read_frame(&mut buf.as_slice(), 1024);
    assert!(
        matches!(
            r,
            Err(IoError::BudgetExceeded {
                needed: 2048,
                budget: 1024
            })
        ),
        "{r:?}"
    );
    // A forged length prefix (header otherwise intact) trips the header
    // CRC instead — the reader never sizes an allocation from it.
    let mut forged = sample_frame();
    forged[13..17].copy_from_slice(&(u32::MAX).to_le_bytes());
    let r = read_frame(&mut forged.as_slice(), u64::MAX);
    assert!(matches!(r, Err(IoError::Corrupt { .. })), "{r:?}");
}

#[test]
fn short_reads_reassemble_losslessly() {
    // A dribbling socket is not a fault; the reader must reassemble.
    let bytes = sample_frame();
    let mut reader = FaultReader::new(bytes.as_slice(), vec![Fault::ShortReads { max: 3 }]);
    let f = read_frame(&mut reader, BUDGET).unwrap().unwrap();
    assert_eq!(f.ctx, 0x1234_5678_9ABC_DEF0);
    assert_eq!(f.payload.chunk().len(), bytes.len() - FRAME_OVERHEAD);
}

#[test]
fn failing_stream_surfaces_io_error() {
    let bytes = sample_frame();
    let mid = bytes.len() as u64 / 2;
    let mut reader = FaultReader::new(bytes.as_slice(), vec![Fault::FailAfter { at: mid }]);
    let r = read_frame(&mut reader, BUDGET);
    assert!(matches!(r, Err(IoError::Io(_))));
}

#[test]
fn bad_magic_and_unknown_kind_are_typed() {
    let mut bytes = sample_frame();
    bytes[0] = b'X';
    let r = read_frame(&mut bytes.as_slice(), BUDGET);
    assert!(matches!(
        r,
        Err(IoError::Corrupt {
            section: "frame header",
            ..
        })
    ));
    // An unknown kind with a recomputed (valid) header CRC: the decoder
    // must reject the kind itself, not just rely on the checksum.
    let mut bytes = sample_frame();
    bytes[4] = 99;
    let hcrc = tenbench_io::crc32::crc32(&bytes[..HEADER_BYTES - 4]);
    bytes[HEADER_BYTES - 4..HEADER_BYTES].copy_from_slice(&hcrc.to_le_bytes());
    let r = read_frame(&mut bytes.as_slice(), BUDGET);
    match r {
        Err(IoError::Corrupt { detail, .. }) => assert!(detail.contains("kind")),
        other => panic!("unknown kind accepted: {other:?}"),
    }
}

#[test]
fn garbage_between_frames_poisons_the_stream_not_the_reader() {
    // frame, garbage, frame: the first parses, the garbage errors, and
    // the reader never reaches the third — matching the serving tier's
    // policy of closing a connection after a protocol error.
    let mut stream = sample_frame();
    stream.extend_from_slice(b"\xDE\xAD\xBE\xEF");
    stream.extend(sample_frame());
    let mut r = stream.as_slice();
    assert!(read_frame(&mut r, BUDGET).unwrap().is_some());
    assert!(read_frame(&mut r, BUDGET).is_err());
}

proptest! {
    #[test]
    fn random_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = read_frame(&mut data.as_slice(), BUDGET);
    }

    #[test]
    fn random_multi_fault_reads_never_accept_damage(
        at in 0u64..1024,
        mask in 1u8..=255,
        trunc in 1u64..1024,
    ) {
        let bytes = sample_frame();
        let mut reader = FaultReader::new(
            bytes.as_slice(),
            vec![
                Fault::BitFlip { at, mask },
                Fault::Truncate { at: trunc },
                Fault::ShortReads { max: 5 },
            ],
        );
        let r = read_frame(&mut reader, BUDGET);
        // Every byte of a TNF1 frame sits under a CRC, so any in-bounds
        // damage must surface as Err (trunc ≥ 1 keeps EOF mid-frame).
        if (at as usize) < bytes.len() || (trunc as usize) < bytes.len() {
            prop_assert!(r.is_err());
        }
    }
}
