//! Fault-injection wrappers for testing reader/writer hardening.
//!
//! The suite treats on-disk tensors as untrusted input: every corruption a
//! filesystem or interrupted transfer can produce must surface as an
//! [`crate::IoError`], never a panic or an unbounded allocation. These
//! wrappers make that testable by injecting the corruptions
//! deterministically:
//!
//! * [`Fault::Truncate`] — the stream ends early (partial download,
//!   `ENOSPC` during the original write),
//! * [`Fault::BitFlip`] — bytes are damaged in place (bit rot, bad RAM),
//! * [`Fault::ShortReads`] — `read` returns fewer bytes than asked (pipes,
//!   network filesystems),
//! * [`Fault::FailAfter`] — a hard I/O error mid-stream.
//!
//! `crates/io/tests/corruption.rs` drives these systematically over every
//! byte offset of a small tensor.

use std::io::{self, Read, Write};

/// One injected fault. Offsets are absolute stream positions in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// End the stream after `at` bytes (reader) or silently drop everything
    /// past `at` bytes (writer).
    Truncate {
        /// Stream offset at which the data ends.
        at: u64,
    },
    /// XOR the byte at offset `at` with `mask` as it passes through.
    BitFlip {
        /// Offset of the damaged byte.
        at: u64,
        /// Bits to flip (must be nonzero to have any effect).
        mask: u8,
    },
    /// Deliver at most `max` bytes per `read` call (never an error, just
    /// smaller chunks — exercises callers that assume full reads).
    ShortReads {
        /// Per-call byte cap; must be at least 1.
        max: usize,
    },
    /// Return `io::ErrorKind::Other` once the stream position reaches `at`.
    FailAfter {
        /// Offset at which the hard error fires.
        at: u64,
    },
}

/// A `Read` adapter that injects the configured faults.
#[derive(Debug)]
pub struct FaultReader<R> {
    inner: R,
    faults: Vec<Fault>,
    pos: u64,
}

impl<R: Read> FaultReader<R> {
    /// Wrap `inner`, injecting `faults`.
    pub fn new(inner: R, faults: Vec<Fault>) -> Self {
        FaultReader {
            inner,
            faults,
            pos: 0,
        }
    }

    /// Convenience: truncate the stream at `at`.
    pub fn truncated(inner: R, at: u64) -> Self {
        Self::new(inner, vec![Fault::Truncate { at }])
    }

    /// Convenience: flip `mask` bits of the byte at `at`.
    pub fn bit_flipped(inner: R, at: u64, mask: u8) -> Self {
        Self::new(inner, vec![Fault::BitFlip { at, mask }])
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len();
        for f in &self.faults {
            match *f {
                Fault::ShortReads { max } => limit = limit.min(max.max(1)),
                Fault::Truncate { at } => {
                    limit = limit.min(at.saturating_sub(self.pos) as usize);
                }
                Fault::FailAfter { at } => {
                    if self.pos >= at {
                        return Err(io::Error::other(format!("injected failure at {at}")));
                    }
                    limit = limit.min(at.saturating_sub(self.pos) as usize);
                }
                Fault::BitFlip { .. } => {}
            }
        }
        // A truncation fault reached its offset: report clean EOF.
        if limit == 0 && !buf.is_empty() {
            let truncated = self
                .faults
                .iter()
                .any(|f| matches!(*f, Fault::Truncate { at } if at <= self.pos));
            if truncated {
                return Ok(0);
            }
        }
        let n = self.inner.read(&mut buf[..limit])?;
        for f in &self.faults {
            if let Fault::BitFlip { at, mask } = *f {
                if at >= self.pos && at < self.pos + n as u64 {
                    buf[(at - self.pos) as usize] ^= mask;
                }
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// A `Write` adapter that injects the configured faults.
#[derive(Debug)]
pub struct FaultWriter<W> {
    inner: W,
    faults: Vec<Fault>,
    pos: u64,
}

impl<W: Write> FaultWriter<W> {
    /// Wrap `inner`, injecting `faults`.
    pub fn new(inner: W, faults: Vec<Fault>) -> Self {
        FaultWriter {
            inner,
            faults,
            pos: 0,
        }
    }

    /// Convenience: drop everything past `at` bytes (simulates `ENOSPC`
    /// with a sloppy caller that ignores the error — the resulting file is
    /// silently truncated, which the readers must then detect).
    pub fn truncated(inner: W, at: u64) -> Self {
        Self::new(inner, vec![Fault::Truncate { at }])
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut limit = buf.len();
        let mut dropped = false;
        for f in &self.faults {
            match *f {
                Fault::Truncate { at } => {
                    let keep = at.saturating_sub(self.pos) as usize;
                    if keep < limit {
                        limit = keep;
                        dropped = true;
                    }
                }
                Fault::FailAfter { at } => {
                    if self.pos >= at {
                        return Err(io::Error::other(format!("injected failure at {at}")));
                    }
                    limit = limit.min(at.saturating_sub(self.pos) as usize);
                }
                Fault::ShortReads { max } => limit = limit.min(max.max(1)),
                Fault::BitFlip { .. } => {}
            }
        }
        let mut chunk = buf[..limit].to_vec();
        for f in &self.faults {
            if let Fault::BitFlip { at, mask } = *f {
                if at >= self.pos && at < self.pos + limit as u64 {
                    chunk[(at - self.pos) as usize] ^= mask;
                }
            }
        }
        if !chunk.is_empty() {
            self.inner.write_all(&chunk)?;
        }
        // Pretend a dropped tail was written so `write_all` callers finish
        // and the truncated artifact lands on disk for the reader to reject.
        let claimed = if dropped { buf.len() } else { limit };
        self.pos += claimed as u64;
        Ok(claimed)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_reader_ends_early() {
        let data = vec![7u8; 100];
        let mut r = FaultReader::truncated(data.as_slice(), 10);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn bit_flip_damages_exactly_one_byte() {
        let data: Vec<u8> = (0..32).collect();
        let mut r = FaultReader::bit_flipped(data.as_slice(), 5, 0x80);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out[5], 5 ^ 0x80);
        let intact: Vec<u8> = out
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 5)
            .map(|(_, &b)| b)
            .collect();
        assert_eq!(intact, (0..32).filter(|&b| b != 5).collect::<Vec<u8>>());
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = FaultReader::new(data.as_slice(), vec![Fault::ShortReads { max: 3 }]);
        let mut buf = [0u8; 64];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(3 + rest.len(), 256);
    }

    #[test]
    fn fail_after_errors_hard() {
        let data = vec![0u8; 64];
        let mut r = FaultReader::new(data.as_slice(), vec![Fault::FailAfter { at: 16 }]);
        let mut out = Vec::new();
        assert!(r.read_to_end(&mut out).is_err());
    }

    #[test]
    fn truncating_writer_drops_the_tail() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::truncated(&mut sink, 6);
            w.write_all(&[1, 2, 3, 4]).unwrap();
            w.write_all(&[5, 6, 7, 8]).unwrap(); // bytes 7..8 dropped
            w.flush().unwrap();
        }
        assert_eq!(sink, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn bit_flipping_writer_damages_stream() {
        let mut sink = Vec::new();
        {
            let mut w = FaultWriter::new(&mut sink, vec![Fault::BitFlip { at: 2, mask: 0x01 }]);
            w.write_all(&[0, 0, 0, 0]).unwrap();
        }
        assert_eq!(sink, vec![0, 0, 1, 0]);
    }
}
