//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for the `TNB2` binary
//! format's per-section integrity checks.
//!
//! Implemented locally because the build environment vendors all
//! dependencies; a 256-entry table built at compile time keeps the check at
//! one table lookup per byte, which is invisible next to the parse itself.

/// Reflected polynomial for CRC-32/ISO-HDLC (the common "crc32").
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of a byte slice (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8u8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
