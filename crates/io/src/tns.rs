//! The FROSTT `.tns` text format.
//!
//! Each non-comment line holds one nonzero: `N` whitespace-separated
//! 1-based indices followed by the value. Lines starting with `#` are
//! comments. The tensor order is inferred from the first data line; the
//! shape is either supplied by the caller or inferred as the per-mode
//! maximum index.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use tenbench_core::coo::CooTensor;
use tenbench_core::scalar::Scalar;
use tenbench_core::shape::Shape;
use tenbench_core::TensorError;

use crate::{IoError, Result};

/// Read a `.tns` tensor, inferring the shape from the maximum index in each
/// mode.
pub fn read_tns<S: Scalar, R: Read>(reader: R) -> Result<CooTensor<S>> {
    read_tns_impl(reader, None)
}

/// Read a `.tns` tensor against a known shape (indices are validated).
pub fn read_tns_with_shape<S: Scalar, R: Read>(reader: R, shape: Shape) -> Result<CooTensor<S>> {
    read_tns_impl(reader, Some(shape))
}

fn read_tns_impl<S: Scalar, R: Read>(reader: R, shape: Option<Shape>) -> Result<CooTensor<S>> {
    let mut reader = BufReader::new(reader);
    let mut inds: Vec<Vec<u32>> = Vec::new();
    let mut vals: Vec<S> = Vec::new();
    let mut order: Option<usize> = None;
    let mut line = String::new();
    let mut lineno = 0usize;

    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(IoError::Parse(format!(
                "line {lineno}: expected indices and a value, got {trimmed:?}"
            )));
        }
        let n = *order.get_or_insert(tokens.len() - 1);
        if tokens.len() != n + 1 {
            return Err(IoError::Parse(format!(
                "line {lineno}: expected {} tokens, got {}",
                n + 1,
                tokens.len()
            )));
        }
        if let Some(s) = &shape {
            if s.order() != n {
                return Err(IoError::Parse(format!(
                    "line {lineno}: {n} indices for an order-{} shape",
                    s.order()
                )));
            }
        }
        if inds.is_empty() {
            inds = vec![Vec::new(); n];
        }
        for (m, tok) in tokens[..n].iter().enumerate() {
            let idx: u64 = tok
                .parse()
                .map_err(|_| IoError::Parse(format!("line {lineno}: bad index {tok:?}")))?;
            if idx == 0 {
                return Err(IoError::Parse(format!(
                    "line {lineno}: .tns indices are 1-based; got 0"
                )));
            }
            if idx > u32::MAX as u64 {
                return Err(IoError::Parse(format!(
                    "line {lineno}: index {idx} exceeds 32-bit range"
                )));
            }
            let zero_based = (idx - 1) as u32;
            // Against a known shape, reject out-of-range coordinates at the
            // offending line rather than deferring to a post-hoc pass (or,
            // worse, to kernel misbehavior on an unvalidated tensor).
            if let Some(s) = &shape {
                if zero_based >= s.dim(m) {
                    return Err(IoError::Tensor(TensorError::IndexOutOfBounds {
                        mode: m,
                        index: zero_based,
                        dim: s.dim(m),
                    }));
                }
            }
            inds[m].push(zero_based);
        }
        let v: f64 = tokens[n]
            .parse()
            .map_err(|_| IoError::Parse(format!("line {lineno}: bad value {:?}", tokens[n])))?;
        if !v.is_finite() {
            return Err(IoError::Parse(format!(
                "line {lineno}: non-finite value {v}; NaN/Inf inputs poison kernel checksums"
            )));
        }
        vals.push(S::from_f64(v));
    }

    // An empty file is a valid (empty) tensor when the shape is known;
    // without a shape there is nothing to infer the order from.
    let order = match order {
        Some(n) => n,
        None => {
            return match shape {
                Some(s) => {
                    let empty = vec![Vec::new(); s.order()];
                    Ok(CooTensor::from_parts(s, empty, vals)?)
                }
                None => Err(IoError::Parse("no data lines".into())),
            }
        }
    };
    let shape = match shape {
        Some(s) => s,
        None => {
            let dims: Vec<u32> = (0..order)
                .map(|m| inds[m].iter().copied().max().unwrap_or(0) + 1)
                .collect();
            Shape::new(dims)
        }
    };
    Ok(CooTensor::from_parts(shape, inds, vals)?)
}

/// Write a tensor in `.tns` format (1-based indices), with a comment header
/// recording the shape.
pub fn write_tns<S: Scalar, W: Write>(tensor: &CooTensor<S>, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# tenbench .tns export; shape {}", tensor.shape())?;
    let order = tensor.order();
    for i in 0..tensor.nnz() {
        for m in 0..order {
            write!(w, "{} ", tensor.mode_inds(m)[i] + 1)?;
        }
        writeln!(w, "{}", tensor.vals()[i])?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_file() {
        let data = "# a comment\n1 1 1 1.5\n2 3 4 -2.0\n\n3 1 2 0.25\n";
        let t: CooTensor<f32> = read_tns(data.as_bytes()).unwrap();
        assert_eq!(t.order(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.shape().dims(), &[3, 3, 4]);
        assert_eq!(t.to_map()[&vec![1, 2, 3]], -2.0);
    }

    #[test]
    fn round_trip_preserves_entries() {
        let t = CooTensor::<f32>::from_entries(
            Shape::new(vec![5, 6, 7]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![4, 5, 6], 2.5),
                (vec![2, 3, 1], -0.125),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_tns_with_shape(buf.as_slice(), t.shape().clone()).unwrap();
        assert_eq!(back.to_map(), t.to_map());
    }

    #[test]
    fn rejects_zero_based_index() {
        let r: Result<CooTensor<f32>> = read_tns("0 1 2 1.0\n".as_bytes());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_inconsistent_arity() {
        let r: Result<CooTensor<f32>> = read_tns("1 1 1 1.0\n1 1 2.0\n".as_bytes());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_bad_tokens() {
        let r: Result<CooTensor<f32>> = read_tns("1 x 1 1.0\n".as_bytes());
        assert!(matches!(r, Err(IoError::Parse(_))));
        let r2: Result<CooTensor<f32>> = read_tns("1 1 1 abc\n".as_bytes());
        assert!(matches!(r2, Err(IoError::Parse(_))));
        let r3: Result<CooTensor<f32>> = read_tns("1\n".as_bytes());
        assert!(matches!(r3, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_empty_input() {
        let r: Result<CooTensor<f32>> = read_tns("# only comments\n".as_bytes());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn shape_validation_detects_out_of_range() {
        let r: Result<CooTensor<f32>> =
            read_tns_with_shape("5 1 1.0\n".as_bytes(), Shape::new(vec![3, 3]));
        assert!(matches!(
            r,
            Err(IoError::Tensor(
                tenbench_core::TensorError::IndexOutOfBounds {
                    mode: 0,
                    index: 4,
                    dim: 3
                }
            ))
        ));
    }

    #[test]
    fn shape_validation_rejects_wrong_arity() {
        let r: Result<CooTensor<f32>> =
            read_tns_with_shape("1 1 1 1.0\n".as_bytes(), Shape::new(vec![3, 3]));
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["1 1 nan\n", "1 1 inf\n", "1 1 -inf\n"] {
            let r: Result<CooTensor<f32>> = read_tns(bad.as_bytes());
            assert!(matches!(r, Err(IoError::Parse(_))), "{bad:?} accepted");
        }
    }
}
