//! Compact binary tensor format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"TNB1"
//! vwidth  u8           value width in bytes (4 = f32, 8 = f64)
//! order   u8
//! dims    [u32; order]
//! nnz     u64
//! inds    order arrays of nnz u32
//! vals    nnz values (f32 or f64 bits)
//! ```
//!
//! Reloading a generated tensor from this format is orders of magnitude
//! faster than re-running the generator or re-parsing `.tns`, which matters
//! when the harness sweeps all thirty datasets.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tenbench_core::coo::CooTensor;
use tenbench_core::scalar::Scalar;
use tenbench_core::shape::Shape;

use crate::{IoError, Result};

const MAGIC: &[u8; 4] = b"TNB1";

/// Serialize a tensor into the binary format.
pub fn write_bin<S: Scalar, W: Write>(tensor: &CooTensor<S>, mut writer: W) -> Result<()> {
    let order = tensor.order();
    let nnz = tensor.nnz();
    let mut buf = BytesMut::with_capacity(16 + order * 4 + nnz * (order * 4 + S::BYTES as usize));
    buf.put_slice(MAGIC);
    buf.put_u8(S::BYTES as u8);
    buf.put_u8(order as u8);
    for &d in tensor.shape().dims() {
        buf.put_u32_le(d);
    }
    buf.put_u64_le(nnz as u64);
    for m in 0..order {
        for &i in tensor.mode_inds(m) {
            buf.put_u32_le(i);
        }
    }
    for &v in tensor.vals() {
        match S::BYTES {
            4 => buf.put_u32_le((v.to_f64() as f32).to_bits()),
            _ => buf.put_u64_le(v.to_f64().to_bits()),
        }
    }
    writer.write_all(&buf)?;
    Ok(())
}

/// Deserialize a tensor from the binary format.
pub fn read_bin<S: Scalar, R: Read>(mut reader: R) -> Result<CooTensor<S>> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);

    let need = |buf: &Bytes, n: usize| -> Result<()> {
        if buf.remaining() < n {
            Err(IoError::Parse("truncated binary tensor".into()))
        } else {
            Ok(())
        }
    };

    need(&buf, 6)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Parse(format!("bad magic {magic:?}")));
    }
    let vwidth = buf.get_u8();
    if vwidth as u64 != S::BYTES {
        return Err(IoError::Parse(format!(
            "value width {vwidth} does not match requested scalar ({} bytes)",
            S::BYTES
        )));
    }
    let order = buf.get_u8() as usize;
    if order == 0 {
        return Err(IoError::Parse("zero-order tensor".into()));
    }
    need(&buf, order * 4 + 8)?;
    let dims: Vec<u32> = (0..order).map(|_| buf.get_u32_le()).collect();
    if dims.contains(&0) {
        return Err(IoError::Parse("zero dimension".into()));
    }
    let nnz = buf.get_u64_le() as usize;
    need(&buf, nnz * (order * 4 + vwidth as usize))?;
    let mut inds: Vec<Vec<u32>> = Vec::with_capacity(order);
    for _ in 0..order {
        inds.push((0..nnz).map(|_| buf.get_u32_le()).collect());
    }
    let vals: Vec<S> = (0..nnz)
        .map(|_| match vwidth {
            4 => S::from_f64(f32::from_bits(buf.get_u32_le()) as f64),
            _ => S::from_f64(f64::from_bits(buf.get_u64_le())),
        })
        .collect();

    Ok(CooTensor::from_parts(Shape::new(dims), inds, vals)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![10, 20, 30]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![9, 19, 29], -2.5),
                (vec![3, 7, 11], 0.125),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_f32() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.to_map(), t.to_map());
    }

    #[test]
    fn round_trip_f64() {
        let t = CooTensor::<f64>::from_entries(
            Shape::new(vec![4, 4]),
            vec![(vec![1, 2], std::f64::consts::PI)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back: CooTensor<f64> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.vals()[0], std::f64::consts::PI);
    }

    #[test]
    fn rejects_wrong_scalar_width() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let r: Result<CooTensor<f64>> = read_bin(buf.as_slice());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_input() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        for cut in [3usize, 10, buf.len() - 1] {
            let r: Result<CooTensor<f32>> = read_bin(&buf[..cut]);
            assert!(r.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let r: Result<CooTensor<f32>> = read_bin(&b"XXXX\x04\x02"[..]);
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn empty_tensor_round_trips() {
        let t = CooTensor::<f32>::empty(Shape::new(vec![5, 5]));
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), 0);
        assert_eq!(back.shape().dims(), &[5, 5]);
    }
}
