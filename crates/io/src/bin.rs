//! Compact binary tensor format.
//!
//! Two on-disk layouts share the `.tnb` extension (both little-endian):
//!
//! `TNB2` (current, written by [`write_bin`]):
//!
//! ```text
//! magic   [u8; 4] = b"TNB2"
//! vwidth  u8           value width in bytes (4 = f32, 8 = f64)
//! order   u8
//! dims    [u32; order]
//! nnz     u64
//! hcrc    u32          CRC-32 of every header byte above
//! inds    order arrays of nnz u32
//! icrc    u32          CRC-32 of the inds section
//! vals    nnz values (f32 or f64 bits)
//! vcrc    u32          CRC-32 of the vals section
//! ```
//!
//! `TNB1` (legacy, still readable): the same layout minus the three CRC
//! words.
//!
//! Reloading a generated tensor from this format is orders of magnitude
//! faster than re-running the generator or re-parsing `.tns`, which matters
//! when the harness sweeps all thirty datasets — and a sweep must survive a
//! damaged cache file. Readers therefore treat the input as untrusted:
//! the header's `order`/`dims`/`nnz` are validated against the remaining
//! input length and a configurable allocation budget *before* any
//! size-derived allocation, all arithmetic is checked, and (for `TNB2`)
//! every section must pass its CRC. Corruption surfaces as [`IoError`],
//! never a panic or an OOM.

use std::io::{Read, Write};

use bytes::{BufMut, BytesMut};
use tenbench_core::coo::CooTensor;
use tenbench_core::scalar::Scalar;
use tenbench_core::shape::Shape;

use crate::crc32::crc32;
use crate::{IoError, Result};

const MAGIC_V1: &[u8; 4] = b"TNB1";
const MAGIC_V2: &[u8; 4] = b"TNB2";

/// Highest tensor order the binary reader accepts. The suite's kernels and
/// generators top out at order 4; 16 leaves generous headroom while keeping
/// a lying header from requesting gigabytes of index arrays.
pub const MAX_ORDER: usize = 16;

/// Options controlling how much a reader is willing to allocate.
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Upper bound, in bytes, on the payload (indices + values) a header
    /// may request. Headers over this return [`IoError::BudgetExceeded`]
    /// before anything is allocated.
    pub max_bytes: u64,
}

impl Default for ReadOptions {
    fn default() -> Self {
        // 4 GiB: comfortably above the largest bench dataset, far below
        // anything that would OOM the sweep host on a lying header.
        ReadOptions { max_bytes: 4 << 30 }
    }
}

/// A bounds-checked little-endian cursor over the raw file bytes. Every
/// accessor returns `Err` on underflow instead of panicking, so corrupt
/// input can never reach the panicking slice paths. Shared with the
/// checkpoint reader in [`crate::ckpt`].
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(IoError::Corrupt {
                section,
                detail: format!(
                    "truncated: need {n} more bytes, {} remain",
                    self.remaining()
                ),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, section: &'static str) -> Result<u8> {
        Ok(self.take(1, section)?[0])
    }

    pub(crate) fn u16(&mut self, section: &'static str) -> Result<u16> {
        let b = self.take(2, section)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, section: &'static str) -> Result<u32> {
        let b = self.take(4, section)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, section: &'static str) -> Result<u64> {
        let b = self.take(8, section)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

fn checked_payload_bytes(nnz: u64, order: usize, vwidth: u8) -> Result<u64> {
    let per_nnz = 4u64
        .checked_mul(order as u64)
        .and_then(|b| b.checked_add(vwidth as u64))
        .ok_or(IoError::Tensor(tenbench_core::TensorError::SizeOverflow))?;
    nnz.checked_mul(per_nnz)
        .ok_or(IoError::Tensor(tenbench_core::TensorError::SizeOverflow))
}

/// Serialize a tensor into the current (`TNB2`) binary format.
pub fn write_bin<S: Scalar, W: Write>(tensor: &CooTensor<S>, writer: W) -> Result<()> {
    write_bin_impl(tensor, writer, true)
}

/// Serialize a tensor into the legacy (`TNB1`) format, for compatibility
/// testing and producing files older tools can read.
pub fn write_bin_legacy<S: Scalar, W: Write>(tensor: &CooTensor<S>, writer: W) -> Result<()> {
    write_bin_impl(tensor, writer, false)
}

fn write_bin_impl<S: Scalar, W: Write>(
    tensor: &CooTensor<S>,
    mut writer: W,
    crcs: bool,
) -> Result<()> {
    let order = tensor.order();
    let nnz = tensor.nnz();

    let mut header = BytesMut::with_capacity(18 + order * 4);
    header.put_slice(if crcs { MAGIC_V2 } else { MAGIC_V1 });
    header.put_u8(S::BYTES as u8);
    header.put_u8(order as u8);
    for &d in tensor.shape().dims() {
        header.put_u32_le(d);
    }
    header.put_u64_le(nnz as u64);

    let mut inds = BytesMut::with_capacity(nnz * order * 4);
    for m in 0..order {
        for &i in tensor.mode_inds(m) {
            inds.put_u32_le(i);
        }
    }

    let mut vals = BytesMut::with_capacity(nnz * S::BYTES as usize);
    for &v in tensor.vals() {
        match S::BYTES {
            4 => vals.put_u32_le((v.to_f64() as f32).to_bits()),
            _ => vals.put_u64_le(v.to_f64().to_bits()),
        }
    }

    writer.write_all(&header)?;
    if crcs {
        writer.write_all(&crc32(&header).to_le_bytes())?;
    }
    writer.write_all(&inds)?;
    if crcs {
        writer.write_all(&crc32(&inds).to_le_bytes())?;
    }
    writer.write_all(&vals)?;
    if crcs {
        writer.write_all(&crc32(&vals).to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Deserialize a tensor from either binary format with default limits.
pub fn read_bin<S: Scalar, R: Read>(reader: R) -> Result<CooTensor<S>> {
    read_bin_with(reader, ReadOptions::default())
}

/// Deserialize a tensor with an explicit allocation budget.
pub fn read_bin_with<S: Scalar, R: Read>(reader: R, opts: ReadOptions) -> Result<CooTensor<S>> {
    // Never buffer more than the budget (plus header slack) even if the
    // file claims otherwise: a multi-terabyte file cannot OOM the reader.
    let file_cap = opts
        .max_bytes
        .saturating_add(64 + 4 * MAX_ORDER as u64 + 12);
    let mut raw = Vec::new();
    reader.take(file_cap + 1).read_to_end(&mut raw)?;
    if raw.len() as u64 > file_cap {
        return Err(IoError::BudgetExceeded {
            needed: raw.len() as u64,
            budget: opts.max_bytes,
        });
    }

    let mut cur = Cursor::new(&raw);
    let mut magic = [0u8; 4];
    magic.copy_from_slice(cur.take(4, "header")?);
    let v2 = match &magic {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => return Err(IoError::Parse(format!("bad magic {magic:?}"))),
    };

    let vwidth = cur.u8("header")?;
    if vwidth as u64 != S::BYTES {
        return Err(IoError::Parse(format!(
            "value width {vwidth} does not match requested scalar ({} bytes)",
            S::BYTES
        )));
    }
    let order = cur.u8("header")? as usize;
    if order == 0 {
        return Err(IoError::Parse("zero-order tensor".into()));
    }
    if order > MAX_ORDER {
        return Err(IoError::Parse(format!(
            "order {order} exceeds the supported maximum {MAX_ORDER}"
        )));
    }
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        dims.push(cur.u32("header")?);
    }
    if dims.contains(&0) {
        return Err(IoError::Parse("zero dimension".into()));
    }
    let nnz64 = cur.u64("header")?;

    // Sanity caps BEFORE any size-derived allocation: the payload the
    // header implies must fit both the remaining input and the budget.
    let payload = checked_payload_bytes(nnz64, order, vwidth)?;
    if payload > opts.max_bytes {
        return Err(IoError::BudgetExceeded {
            needed: payload,
            budget: opts.max_bytes,
        });
    }
    let crc_overhead = if v2 { 8 } else { 0 };
    if payload + crc_overhead > cur.remaining() as u64 {
        return Err(IoError::Corrupt {
            section: "header",
            detail: format!(
                "header claims {nnz64} nonzeros ({payload} payload bytes) but only {} bytes follow",
                cur.remaining()
            ),
        });
    }
    let nnz = nnz64 as usize;

    if v2 {
        let header_end = cur.pos;
        let expect = cur.u32("header")?;
        let got = crc32(&raw[..header_end]);
        if got != expect {
            return Err(IoError::Corrupt {
                section: "header",
                detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
            });
        }
    }

    let ind_start = cur.pos;
    let mut inds: Vec<Vec<u32>> = Vec::with_capacity(order);
    for _ in 0..order {
        let sec = cur.take(nnz * 4, "indices")?;
        inds.push(
            sec.chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    if v2 {
        let expect = cur.u32("indices")?;
        let got = crc32(&raw[ind_start..ind_start + nnz * 4 * order]);
        if got != expect {
            return Err(IoError::Corrupt {
                section: "indices",
                detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
            });
        }
    }

    let val_start = cur.pos;
    let vals: Vec<S> = match vwidth {
        4 => cur
            .take(nnz * 4, "values")?
            .chunks_exact(4)
            .map(|b| S::from_f64(f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64))
            .collect(),
        _ => cur
            .take(nnz * 8, "values")?
            .chunks_exact(8)
            .map(|b| {
                S::from_f64(f64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]))
            })
            .collect(),
    };
    if v2 {
        let expect = cur.u32("values")?;
        let got = crc32(&raw[val_start..val_start + nnz * vwidth as usize]);
        if got != expect {
            return Err(IoError::Corrupt {
                section: "values",
                detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
            });
        }
        if cur.remaining() != 0 {
            return Err(IoError::Corrupt {
                section: "values",
                detail: format!("{} trailing bytes after final crc", cur.remaining()),
            });
        }
    }

    Ok(CooTensor::from_parts(Shape::new(dims), inds, vals)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![10, 20, 30]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![9, 19, 29], -2.5),
                (vec![3, 7, 11], 0.125),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_f32() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC_V2);
        let back: CooTensor<f32> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.to_map(), t.to_map());
    }

    #[test]
    fn round_trip_f64() {
        let t = CooTensor::<f64>::from_entries(
            Shape::new(vec![4, 4]),
            vec![(vec![1, 2], std::f64::consts::PI)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back: CooTensor<f64> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.vals()[0], std::f64::consts::PI);
    }

    #[test]
    fn legacy_tnb1_still_reads() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin_legacy(&t, &mut buf).unwrap();
        assert_eq!(&buf[..4], MAGIC_V1);
        let back: CooTensor<f32> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.to_map(), t.to_map());
    }

    #[test]
    fn rejects_wrong_scalar_width() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let r: Result<CooTensor<f64>> = read_bin(buf.as_slice());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_input() {
        for legacy in [false, true] {
            let t = sample();
            let mut buf = Vec::new();
            if legacy {
                write_bin_legacy(&t, &mut buf).unwrap();
            } else {
                write_bin(&t, &mut buf).unwrap();
            }
            for cut in [3usize, 10, buf.len() - 1] {
                let r: Result<CooTensor<f32>> = read_bin(&buf[..cut]);
                assert!(r.is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let r: Result<CooTensor<f32>> = read_bin(&b"XXXX\x04\x02"[..]);
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn empty_tensor_round_trips() {
        let t = CooTensor::<f32>::empty(Shape::new(vec![5, 5]));
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let back: CooTensor<f32> = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), 0);
        assert_eq!(back.shape().dims(), &[5, 5]);
    }

    /// The original allocation-bomb: a tiny file whose header claims a
    /// gigantic `nnz`. Must be rejected before any allocation, in both
    /// formats, including values that overflow `nnz * bytes_per_nnz`.
    #[test]
    fn rejects_allocation_bomb_headers() {
        for magic in [MAGIC_V1, MAGIC_V2] {
            for nnz in [u64::MAX, u64::MAX / 8, 1u64 << 61, 1u64 << 40] {
                let mut buf = Vec::new();
                buf.extend_from_slice(magic);
                buf.push(4); // f32
                buf.push(3); // order
                for d in [10u32, 10, 10] {
                    buf.extend_from_slice(&d.to_le_bytes());
                }
                buf.extend_from_slice(&nnz.to_le_bytes());
                let r: Result<CooTensor<f32>> = read_bin(buf.as_slice());
                assert!(
                    matches!(
                        r,
                        Err(IoError::Corrupt { .. })
                            | Err(IoError::BudgetExceeded { .. })
                            | Err(IoError::Tensor(_))
                    ),
                    "nnz {nnz:#x} accepted"
                );
            }
        }
    }

    #[test]
    fn rejects_excessive_order() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.push(4);
        buf.push(200); // order 200
        let r: Result<CooTensor<f32>> = read_bin(buf.as_slice());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn budget_is_enforced() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        let r: Result<CooTensor<f32>> = read_bin_with(buf.as_slice(), ReadOptions { max_bytes: 8 });
        assert!(matches!(r, Err(IoError::BudgetExceeded { .. })));
    }

    #[test]
    fn bit_flip_anywhere_is_detected_in_tnb2() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            let r: Result<CooTensor<f32>> = read_bin(bad.as_slice());
            assert!(r.is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn rejects_trailing_garbage_in_tnb2() {
        let t = sample();
        let mut buf = Vec::new();
        write_bin(&t, &mut buf).unwrap();
        buf.extend_from_slice(&[0u8; 7]);
        let r: Result<CooTensor<f32>> = read_bin(buf.as_slice());
        assert!(matches!(r, Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn rejects_out_of_bounds_indices() {
        // Valid CRCs but an index outside the declared shape: caught by the
        // core validator at construction.
        let t =
            CooTensor::<f32>::from_entries(Shape::new(vec![100, 100]), vec![(vec![50, 99], 1.0)])
                .unwrap();
        let mut buf = Vec::new();
        write_bin_legacy(&t, &mut buf).unwrap();
        // Shrink dims in the legacy header (no CRC to fix up): dims start
        // at offset 6.
        buf[6..10].copy_from_slice(&10u32.to_le_bytes());
        let r: Result<CooTensor<f32>> = read_bin(buf.as_slice());
        assert!(matches!(
            r,
            Err(IoError::Tensor(
                tenbench_core::TensorError::IndexOutOfBounds { .. }
            ))
        ));
    }
}
