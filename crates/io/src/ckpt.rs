//! Factor-matrix checkpoint container for long-running decomposition jobs.
//!
//! One on-disk layout, `TNC1` (little-endian), following the same
//! CRC-32-per-section discipline as the `TNB2` tensor format in
//! [`crate::bin`]:
//!
//! ```text
//! magic     [u8; 4] = b"TNC1"
//! kind      u8           caller-defined job-kind tag
//! vwidth    u8           value width in bytes (4 = f32, 8 = f64)
//! iteration u64          completed iterations at checkpoint time
//! fit       u64          f64 bits of the per-iteration progress metric
//! nsec      u16          number of factor-matrix sections
//! blob_len  u64          opaque blob byte length (e.g. a nested TNB2)
//! secdims   [u32; 2*nsec] rows, cols per section
//! hcrc      u32          CRC-32 of every header byte above
//! per section: rows*cols values (vwidth each), then its CRC-32
//! blob bytes, then its CRC-32
//! ```
//!
//! A checkpoint is the unit of recovery for a supervised decomposition job,
//! so a *damaged* checkpoint must never resume silently wrong: readers
//! treat the input as untrusted exactly like the tensor reader — header
//! fields are validated against the remaining input and an allocation
//! budget *before* any size-derived allocation, all arithmetic is checked,
//! every section must pass its CRC, and trailing bytes are rejected.
//! Damage at any byte offset surfaces as [`IoError`], never a panic and
//! never a wrong state (see `crates/io/tests/corruption.rs`).

use std::io::{Read, Write};

use bytes::{BufMut, BytesMut};
use tenbench_core::scalar::Scalar;

use crate::bin::{Cursor, ReadOptions};
use crate::crc32::crc32;
use crate::{IoError, Result};

const MAGIC: &[u8; 4] = b"TNC1";

/// Highest number of factor-matrix sections a checkpoint may carry. The
/// decomposition methods top out at one factor per mode plus a weight
/// vector; 64 leaves generous headroom while keeping a lying header from
/// requesting huge dimension tables.
pub const MAX_SECTIONS: usize = 64;

/// One checkpointed factor matrix (row-major). A vector is `cols == 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMatrix<S: Scalar> {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Row-major values, `rows * cols` of them.
    pub data: Vec<S>,
}

/// A decomposition-job checkpoint: iteration counter, progress metric,
/// factor matrices, and an opaque blob for states that are not matrices
/// (the TTM-chain stores its COO intermediate as nested TNB2 bytes).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<S: Scalar> {
    /// Caller-defined job-kind tag, echoed back on read.
    pub kind: u8,
    /// Completed iterations at checkpoint time.
    pub iteration: u64,
    /// Progress metric (CP-ALS fit, power-method eigenvalue, …); stored as
    /// raw f64 bits so round-trips are bitwise-exact.
    pub fit: f64,
    /// Factor matrices, in method-defined order.
    pub matrices: Vec<CheckpointMatrix<S>>,
    /// Opaque extra payload (may be empty).
    pub blob: Vec<u8>,
}

/// Serialize a checkpoint into the `TNC1` format.
pub fn write_ckpt<S: Scalar, W: Write>(c: &Checkpoint<S>, mut writer: W) -> Result<()> {
    if c.matrices.len() > MAX_SECTIONS {
        return Err(IoError::Parse(format!(
            "checkpoint has {} sections, max {MAX_SECTIONS}",
            c.matrices.len()
        )));
    }
    let mut header = BytesMut::with_capacity(32 + c.matrices.len() * 8);
    header.put_slice(MAGIC);
    header.put_u8(c.kind);
    header.put_u8(S::BYTES as u8);
    header.put_u64_le(c.iteration);
    header.put_u64_le(c.fit.to_bits());
    header.put_u16_le(c.matrices.len() as u16);
    header.put_u64_le(c.blob.len() as u64);
    for m in &c.matrices {
        if m.rows.checked_mul(m.cols) != Some(m.data.len()) {
            return Err(IoError::Parse(format!(
                "section claims {}x{} but holds {} values",
                m.rows,
                m.cols,
                m.data.len()
            )));
        }
        if m.rows > u32::MAX as usize || m.cols > u32::MAX as usize {
            return Err(IoError::Parse(format!(
                "section dimensions {}x{} exceed u32",
                m.rows, m.cols
            )));
        }
        header.put_u32_le(m.rows as u32);
        header.put_u32_le(m.cols as u32);
    }
    writer.write_all(&header)?;
    writer.write_all(&crc32(&header).to_le_bytes())?;
    for m in &c.matrices {
        let mut sec = BytesMut::with_capacity(m.data.len() * S::BYTES as usize);
        for &v in &m.data {
            match S::BYTES {
                4 => sec.put_u32_le((v.to_f64() as f32).to_bits()),
                _ => sec.put_u64_le(v.to_f64().to_bits()),
            }
        }
        writer.write_all(&sec)?;
        writer.write_all(&crc32(&sec).to_le_bytes())?;
    }
    writer.write_all(&c.blob)?;
    writer.write_all(&crc32(&c.blob).to_le_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Deserialize a checkpoint with default limits.
pub fn read_ckpt<S: Scalar, R: Read>(reader: R) -> Result<Checkpoint<S>> {
    read_ckpt_with(reader, ReadOptions::default())
}

/// Deserialize a checkpoint with an explicit allocation budget.
pub fn read_ckpt_with<S: Scalar, R: Read>(reader: R, opts: ReadOptions) -> Result<Checkpoint<S>> {
    // Never buffer more than the budget (plus header slack) even if the
    // input claims otherwise.
    let header_slack = 64 + 8 * MAX_SECTIONS as u64 + 4 * (MAX_SECTIONS as u64 + 2);
    let file_cap = opts.max_bytes.saturating_add(header_slack);
    let mut raw = Vec::new();
    reader.take(file_cap + 1).read_to_end(&mut raw)?;
    if raw.len() as u64 > file_cap {
        return Err(IoError::BudgetExceeded {
            needed: raw.len() as u64,
            budget: opts.max_bytes,
        });
    }

    let mut cur = Cursor::new(&raw);
    let mut magic = [0u8; 4];
    magic.copy_from_slice(cur.take(4, "header")?);
    if &magic != MAGIC {
        return Err(IoError::Parse(format!("bad checkpoint magic {magic:?}")));
    }
    let kind = cur.u8("header")?;
    let vwidth = cur.u8("header")?;
    if vwidth as u64 != S::BYTES {
        return Err(IoError::Parse(format!(
            "value width {vwidth} does not match requested scalar ({} bytes)",
            S::BYTES
        )));
    }
    let iteration = cur.u64("header")?;
    let fit = f64::from_bits(cur.u64("header")?);
    let nsec = cur.u16("header")? as usize;
    if nsec > MAX_SECTIONS {
        return Err(IoError::Parse(format!(
            "{nsec} sections exceed the supported maximum {MAX_SECTIONS}"
        )));
    }
    let blob_len = cur.u64("header")?;

    // Sanity caps BEFORE any size-derived allocation: the payload the
    // header implies must fit both the remaining input and the budget.
    let overflow = || IoError::Tensor(tenbench_core::TensorError::SizeOverflow);
    let mut dims = Vec::with_capacity(nsec);
    let mut payload = blob_len;
    for _ in 0..nsec {
        let rows = cur.u32("header")?;
        let cols = cur.u32("header")?;
        let bytes = (rows as u64 * cols as u64)
            .checked_mul(S::BYTES)
            .ok_or_else(overflow)?;
        payload = payload.checked_add(bytes).ok_or_else(overflow)?;
        dims.push((rows, cols));
    }
    if payload > opts.max_bytes {
        return Err(IoError::BudgetExceeded {
            needed: payload,
            budget: opts.max_bytes,
        });
    }
    let crc_overhead = 4 * (nsec as u64 + 1);
    if payload + crc_overhead > cur.remaining() as u64 {
        return Err(IoError::Corrupt {
            section: "header",
            detail: format!(
                "header claims {payload} payload bytes but only {} bytes follow",
                cur.remaining()
            ),
        });
    }

    let header_end = cur.pos();
    let expect = cur.u32("header")?;
    let got = crc32(&raw[..header_end]);
    if got != expect {
        return Err(IoError::Corrupt {
            section: "header",
            detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
        });
    }

    let mut matrices = Vec::with_capacity(nsec);
    for &(rows, cols) in &dims {
        let n = rows as usize * cols as usize;
        let start = cur.pos();
        let sec = cur.take(n * S::BYTES as usize, "factors")?;
        let data: Vec<S> = match vwidth {
            4 => sec
                .chunks_exact(4)
                .map(|b| S::from_f64(f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64))
                .collect(),
            _ => sec
                .chunks_exact(8)
                .map(|b| {
                    S::from_f64(f64::from_le_bytes([
                        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                    ]))
                })
                .collect(),
        };
        let expect = cur.u32("factors")?;
        let got = crc32(&raw[start..start + n * S::BYTES as usize]);
        if got != expect {
            return Err(IoError::Corrupt {
                section: "factors",
                detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
            });
        }
        matrices.push(CheckpointMatrix {
            rows: rows as usize,
            cols: cols as usize,
            data,
        });
    }

    let start = cur.pos();
    let blob = cur.take(blob_len as usize, "blob")?.to_vec();
    let expect = cur.u32("blob")?;
    let got = crc32(&raw[start..start + blob_len as usize]);
    if got != expect {
        return Err(IoError::Corrupt {
            section: "blob",
            detail: format!("crc mismatch: stored {expect:#010x}, computed {got:#010x}"),
        });
    }
    if cur.remaining() != 0 {
        return Err(IoError::Corrupt {
            section: "blob",
            detail: format!("{} trailing bytes after final crc", cur.remaining()),
        });
    }

    Ok(Checkpoint {
        kind,
        iteration,
        fit,
        matrices,
        blob,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint<f32> {
        Checkpoint {
            kind: 1,
            iteration: 7,
            fit: 0.987654321,
            matrices: vec![
                CheckpointMatrix {
                    rows: 3,
                    cols: 2,
                    data: vec![1.0, -2.5, 0.125, 3.75, -0.5, 9.0],
                },
                CheckpointMatrix {
                    rows: 4,
                    cols: 1,
                    data: vec![0.1, 0.2, 0.3, 0.4],
                },
            ],
            blob: b"nested-bytes".to_vec(),
        }
    }

    fn bytes_of(c: &Checkpoint<f32>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_ckpt(c, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_bitwise_exact_f32() {
        let c = sample();
        let back: Checkpoint<f32> = read_ckpt(bytes_of(&c).as_slice()).unwrap();
        assert_eq!(back.kind, c.kind);
        assert_eq!(back.iteration, c.iteration);
        assert_eq!(back.fit.to_bits(), c.fit.to_bits());
        assert_eq!(back.blob, c.blob);
        for (a, b) in back.matrices.iter().zip(&c.matrices) {
            assert_eq!((a.rows, a.cols), (b.rows, b.cols));
            let ab: Vec<u32> = a.data.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }

    #[test]
    fn round_trip_f64_and_empty() {
        let c = Checkpoint::<f64> {
            kind: 3,
            iteration: 0,
            fit: std::f64::consts::PI,
            matrices: vec![],
            blob: vec![],
        };
        let mut buf = Vec::new();
        write_ckpt(&c, &mut buf).unwrap();
        let back: Checkpoint<f64> = read_ckpt(buf.as_slice()).unwrap();
        assert_eq!(back.fit.to_bits(), c.fit.to_bits());
        assert!(back.matrices.is_empty());
        assert!(back.blob.is_empty());
    }

    #[test]
    fn rejects_wrong_scalar_width() {
        let buf = bytes_of(&sample());
        let r: Result<Checkpoint<f64>> = read_ckpt(buf.as_slice());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn rejects_dims_data_mismatch_on_write() {
        let mut c = sample();
        c.matrices[0].rows = 5;
        let mut buf = Vec::new();
        assert!(matches!(write_ckpt(&c, &mut buf), Err(IoError::Parse(_))));
    }

    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let buf = bytes_of(&sample());
        for cut in 0..buf.len() {
            let r: Result<Checkpoint<f32>> = read_ckpt(&buf[..cut]);
            assert!(r.is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let buf = bytes_of(&sample());
        for at in 0..buf.len() {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            let r: Result<Checkpoint<f32>> = read_ckpt(bad.as_slice());
            assert!(r.is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut buf = bytes_of(&sample());
        buf.extend_from_slice(&[0u8; 5]);
        let r: Result<Checkpoint<f32>> = read_ckpt(buf.as_slice());
        assert!(matches!(r, Err(IoError::Corrupt { .. })));
    }

    #[test]
    fn rejects_allocation_bomb_headers() {
        // A tiny input whose header claims gigantic sections or blob: must
        // be rejected before any size-derived allocation.
        for (rows, cols, blob) in [
            (u32::MAX, u32::MAX, 0u64),
            (1 << 30, 1 << 30, 0),
            (1, 1, u64::MAX),
        ] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MAGIC);
            buf.push(0);
            buf.push(4);
            buf.extend_from_slice(&0u64.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes());
            buf.extend_from_slice(&1u16.to_le_bytes());
            buf.extend_from_slice(&blob.to_le_bytes());
            buf.extend_from_slice(&rows.to_le_bytes());
            buf.extend_from_slice(&cols.to_le_bytes());
            let r: Result<Checkpoint<f32>> = read_ckpt(buf.as_slice());
            assert!(
                matches!(
                    r,
                    Err(IoError::Corrupt { .. })
                        | Err(IoError::BudgetExceeded { .. })
                        | Err(IoError::Tensor(_))
                ),
                "bomb ({rows}, {cols}, {blob}) accepted: {r:?}"
            );
        }
    }

    #[test]
    fn rejects_excessive_section_count() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(0);
        buf.push(4);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(MAX_SECTIONS as u16 + 1).to_le_bytes());
        let r: Result<Checkpoint<f32>> = read_ckpt(buf.as_slice());
        assert!(matches!(r, Err(IoError::Parse(_))));
    }

    #[test]
    fn budget_is_enforced() {
        let buf = bytes_of(&sample());
        let r: Result<Checkpoint<f32>> =
            read_ckpt_with(buf.as_slice(), ReadOptions { max_bytes: 4 });
        assert!(matches!(r, Err(IoError::BudgetExceeded { .. })));
    }
}
