//! Length-prefixed wire frames for the networked serving tier.
//!
//! One `TNF1` frame per request or response, little-endian throughout,
//! with the same CRC-32 discipline as the `TNB2` tensor format: the
//! header and the payload are each covered by their own checksum, so a
//! flipped bit anywhere in a frame is caught before its contents are
//! interpreted.
//!
//! ```text
//! magic  [u8; 4] = b"TNF1"
//! kind   u8            frame kind (request / response / error)
//! ctx    u64           originating TraceCtx id (0 = none)
//! len    u32           payload length in bytes
//! hcrc   u32           CRC-32 of the 17 header bytes above
//! payload [u8; len]
//! pcrc   u32           CRC-32 of the payload
//! ```
//!
//! The reader treats the stream as untrusted, exactly like the file
//! readers in this crate: `len` is validated against the caller's
//! allocation budget *before* any allocation, truncation and CRC
//! mismatches surface as [`IoError::Corrupt`], and end-of-stream exactly
//! on a frame boundary is the clean-close signal `Ok(None)` — anything
//! mid-frame is corruption. The `ctx` word is how causal traces cross
//! the socket: the client stamps its [`TraceCtx`] id, the server mints a
//! child of it, and a flight-recorder dump stitches client → shard →
//! pool worker.
//!
//! [`TraceCtx`]: https://docs.rs/ (tenbench_obs::TraceCtx)

use std::io::{ErrorKind, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::crc32::crc32;
use crate::{IoError, Result};

const MAGIC: &[u8; 4] = b"TNF1";

/// Bytes before the payload: magic + kind + ctx + len + hcrc.
pub const HEADER_BYTES: usize = 4 + 1 + 8 + 4 + 4;

/// Fixed overhead a frame adds around its payload (header + payload CRC).
pub const FRAME_OVERHEAD: usize = HEADER_BYTES + 4;

/// What a frame carries. The wire value is the discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: a kernel request.
    Request = 1,
    /// Server → client: a completed (or typed-rejected) response.
    Response = 2,
    /// Server → client: the request could not be understood at the
    /// protocol level (corrupt frame, oversized payload, bad encoding).
    Error = 3,
}

impl FrameKind {
    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Response),
            3 => Some(FrameKind::Error),
            _ => None,
        }
    }
}

/// A decoded frame. The payload is an owned [`Bytes`] buffer so the
/// receiver can hand it to a zero-copy parser ([`Bytes::chunk`]) without
/// re-slicing or copying.
#[derive(Debug)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Trace-context id stamped by the sender (0 = none).
    pub ctx: u64,
    /// The verified payload.
    pub payload: Bytes,
}

/// Write one frame. The payload must fit a `u32` length prefix.
pub fn write_frame<W: Write>(w: &mut W, kind: FrameKind, ctx: u64, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        IoError::Parse(format!(
            "frame payload of {} bytes exceeds the u32 length prefix",
            payload.len()
        ))
    })?;
    let mut head = BytesMut::with_capacity(FRAME_OVERHEAD);
    head.put_slice(MAGIC);
    head.put_u8(kind as u8);
    head.put_u64_le(ctx);
    head.put_u32_le(len);
    let hcrc = crc32(&head);
    head.put_u32_le(hcrc);
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    Ok(())
}

/// Read the next frame off the stream.
///
/// * `Ok(Some(frame))` — a verified frame.
/// * `Ok(None)` — the stream ended cleanly on a frame boundary.
/// * `Err(..)` — truncation mid-frame, bad magic/kind, CRC mismatch, or
///   a `len` over `max_payload` (rejected before allocating).
pub fn read_frame<R: Read>(r: &mut R, max_payload: u64) -> Result<Option<Frame>> {
    let mut head = [0u8; HEADER_BYTES];
    if !read_full(r, &mut head, "frame header")? {
        return Ok(None);
    }
    let mut cur = Bytes::from(head.to_vec());
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IoError::Corrupt {
            section: "frame header",
            detail: format!("bad magic {magic:02x?}"),
        });
    }
    let kind_raw = cur.get_u8();
    let ctx = cur.get_u64_le();
    let len = cur.get_u32_le();
    let hcrc = cur.get_u32_le();
    let computed = crc32(&head[..HEADER_BYTES - 4]);
    if hcrc != computed {
        return Err(IoError::Corrupt {
            section: "frame header",
            detail: format!("header crc {hcrc:#010x} != computed {computed:#010x}"),
        });
    }
    // The CRC passed, so `kind` and `len` are what the sender wrote;
    // anything still invalid is a protocol violation, not line noise.
    let kind = FrameKind::from_u8(kind_raw).ok_or(IoError::Corrupt {
        section: "frame header",
        detail: format!("unknown frame kind {kind_raw}"),
    })?;
    if u64::from(len) > max_payload {
        return Err(IoError::BudgetExceeded {
            needed: u64::from(len),
            budget: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload, "frame payload")? && len > 0 {
        return Err(IoError::Corrupt {
            section: "frame payload",
            detail: format!("stream ended before {len}-byte payload"),
        });
    }
    let mut pcrc_b = [0u8; 4];
    if !read_full(r, &mut pcrc_b, "frame payload crc")? {
        return Err(IoError::Corrupt {
            section: "frame payload",
            detail: "stream ended before payload crc".into(),
        });
    }
    let pcrc = u32::from_le_bytes(pcrc_b);
    let computed = crc32(&payload);
    if pcrc != computed {
        return Err(IoError::Corrupt {
            section: "frame payload",
            detail: format!("payload crc {pcrc:#010x} != computed {computed:#010x}"),
        });
    }
    Ok(Some(Frame {
        kind,
        ctx,
        payload: Bytes::from(payload),
    }))
}

/// Fill `buf` from the stream. `Ok(true)` on success; `Ok(false)` when
/// the stream was already at EOF (nothing read); `Err` on a partial fill
/// (EOF mid-buffer is truncation, not a clean close).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], section: &'static str) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(IoError::Corrupt {
                    section,
                    detail: format!("truncated after {filled} of {} bytes", buf.len()),
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(IoError::Io(e)),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_bytes(kind: FrameKind, ctx: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, ctx, payload).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_kind_ctx_payload() {
        let payload = b"tensor request body".to_vec();
        let bytes = frame_bytes(FrameKind::Request, 0xABCD_EF01_2345, &payload);
        assert_eq!(bytes.len(), FRAME_OVERHEAD + payload.len());
        let mut r = bytes.as_slice();
        let f = read_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Request);
        assert_eq!(f.ctx, 0xABCD_EF01_2345);
        assert_eq!(f.payload.chunk(), payload.as_slice());
        // The stream is now at a frame boundary: clean close.
        assert!(read_frame(&mut r, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn empty_payload_frames_work() {
        let bytes = frame_bytes(FrameKind::Error, 0, b"");
        let f = read_frame(&mut bytes.as_slice(), 16).unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Error);
        assert_eq!(f.payload.chunk().len(), 0);
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut stream = frame_bytes(FrameKind::Request, 1, b"one");
        stream.extend(frame_bytes(FrameKind::Response, 2, b"two"));
        let mut r = stream.as_slice();
        let a = read_frame(&mut r, 64).unwrap().unwrap();
        let b = read_frame(&mut r, 64).unwrap().unwrap();
        assert_eq!((a.ctx, a.payload.chunk()), (1, b"one".as_slice()));
        assert_eq!((b.ctx, b.payload.chunk()), (2, b"two".as_slice()));
        assert!(read_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // A frame honestly declaring a payload over the reader's budget:
        // header CRC is valid, so this exercises the budget check alone.
        let bytes = frame_bytes(FrameKind::Request, 0, &vec![0u8; 4096]);
        let r = read_frame(&mut bytes.as_slice(), 1024);
        assert!(matches!(
            r,
            Err(IoError::BudgetExceeded {
                needed: 4096,
                budget: 1024
            })
        ));
    }

    #[test]
    fn giant_forged_length_fails_header_crc_not_allocation() {
        // Flipping the length field to 2^32-1 breaks the header CRC, so
        // the reader never even consults the budget for a forged length.
        let mut bytes = frame_bytes(FrameKind::Request, 0, b"x");
        bytes[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = read_frame(&mut bytes.as_slice(), u64::MAX);
        assert!(matches!(r, Err(IoError::Corrupt { .. })), "{r:?}");
    }
}
