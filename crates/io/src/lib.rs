//! # tenbench-io
//!
//! Tensor I/O for the `tenbench` suite:
//!
//! * [`tns`] — the FROSTT `.tns` text format (one 1-based coordinate tuple
//!   plus value per line), the interchange format of the paper's dataset
//!   collections ("the benchmark suite can be run against any set of
//!   tensors provided that they are expressed using coordinate format").
//! * [`bin`] — a compact little-endian binary format for fast reloads of
//!   generated tensors.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bin;
pub mod tns;

use std::fmt;

/// Errors produced by tensor readers and writers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input (message includes the line number where relevant).
    Parse(String),
    /// The parsed structure was rejected by the core validators.
    Tensor(tenbench_core::TensorError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
            IoError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse(_) => None,
            IoError::Tensor(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<tenbench_core::TensorError> for IoError {
    fn from(e: tenbench_core::TensorError) -> Self {
        IoError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IoError>;
