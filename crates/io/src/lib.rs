//! # tenbench-io
//!
//! Tensor I/O for the `tenbench` suite:
//!
//! * [`tns`] — the FROSTT `.tns` text format (one 1-based coordinate tuple
//!   plus value per line), the interchange format of the paper's dataset
//!   collections ("the benchmark suite can be run against any set of
//!   tensors provided that they are expressed using coordinate format").
//! * [`bin`] — a compact little-endian binary format for fast reloads of
//!   generated tensors: `TNB2` with per-section CRC-32s (written by
//!   default), with transparent read support for the legacy `TNB1` layout.
//! * [`ckpt`] — the `TNC1` factor-matrix checkpoint container used by
//!   long-running decomposition jobs, with the same CRC-32-per-section
//!   discipline as `TNB2`.
//! * [`frame`] — the `TNF1` length-prefixed wire frame used by the
//!   networked serving tier, carrying the same CRC-32-per-section
//!   discipline onto the socket.
//! * [`crc32`] — the CRC-32 used by `TNB2`, `TNC1`, and `TNF1`.
//! * [`fault`] — fault-injection `Read`/`Write` wrappers for corruption
//!   testing.
//!
//! All readers treat their input as untrusted: malformed, truncated, or
//! bit-flipped files must produce an [`IoError`], never a panic or an
//! allocation sized from an unvalidated header.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bin;
pub mod ckpt;
pub mod crc32;
pub mod fault;
pub mod frame;
pub mod tns;

use std::fmt;

/// Errors produced by tensor readers and writers.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input (message includes the line number where relevant).
    Parse(String),
    /// The parsed structure was rejected by the core validators.
    Tensor(tenbench_core::TensorError),
    /// A section failed its integrity check (CRC mismatch, truncation,
    /// trailing garbage) — the bytes do not match what was written.
    Corrupt {
        /// Which section of the file failed (`"header"`, `"indices"`, ...).
        section: &'static str,
        /// What exactly was wrong.
        detail: String,
    },
    /// The header asked for more memory than the configured allocation
    /// budget allows; nothing was allocated.
    BudgetExceeded {
        /// Bytes the header implies the payload needs.
        needed: u64,
        /// The configured cap.
        budget: u64,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg) => write!(f, "parse error: {msg}"),
            IoError::Tensor(e) => write!(f, "tensor error: {e}"),
            IoError::Corrupt { section, detail } => {
                write!(f, "corrupt {section} section: {detail}")
            }
            IoError::BudgetExceeded { needed, budget } => {
                write!(
                    f,
                    "header requests {needed} bytes, over the {budget}-byte allocation budget"
                )
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<tenbench_core::TensorError> for IoError {
    fn from(e: tenbench_core::TensorError) -> Self {
        IoError::Tensor(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, IoError>;
