//! Tensor shapes and coordinate helpers.

use std::fmt;

use crate::error::{Result, TensorError};

/// The shape (dimension sizes) of a tensor of arbitrary order.
///
/// Dimension sizes are `u32`, matching the paper's 32-bit indices; the
/// largest mode in the paper's dataset (25 M for `nell1`) fits comfortably.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<u32>,
}

impl Shape {
    /// Create a shape from dimension sizes. Every dimension must be >= 1.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero; shapes are
    /// programmer-supplied constants, not data, so this is an assert-style
    /// contract rather than a `Result`.
    pub fn new(dims: Vec<u32>) -> Self {
        assert!(!dims.is_empty(), "tensor order must be >= 1");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be >= 1");
        Shape { dims }
    }

    /// Shape of a cubical tensor: `order` modes, each of size `dim`.
    pub fn cubical(order: usize, dim: u32) -> Self {
        Shape::new(vec![dim; order])
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Dimension size of `mode`.
    #[inline]
    pub fn dim(&self, mode: usize) -> u32 {
        self.dims[mode]
    }

    /// All dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Total number of positions (dense element count) as `f64`; `f64` is
    /// used because 4th-order shapes like `(8.3M)^4` overflow `u128` densities
    /// more gracefully in floating point.
    pub fn dense_count(&self) -> f64 {
        self.dims.iter().map(|&d| d as f64).product()
    }

    /// Density of a tensor with `nnz` nonzeros at this shape.
    pub fn density(&self, nnz: usize) -> f64 {
        nnz as f64 / self.dense_count()
    }

    /// Validate that `mode` is in range.
    pub fn check_mode(&self, mode: usize) -> Result<()> {
        if mode >= self.order() {
            Err(TensorError::ModeOutOfRange {
                mode,
                order: self.order(),
            })
        } else {
            Ok(())
        }
    }

    /// Validate a single coordinate tuple against this shape.
    pub fn check_coord(&self, coord: &[u32]) -> Result<()> {
        if coord.len() != self.order() {
            return Err(TensorError::OrderMismatch {
                left: self.order(),
                right: coord.len(),
            });
        }
        for (mode, (&i, &d)) in coord.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    mode,
                    index: i,
                    dim: d,
                });
            }
        }
        Ok(())
    }

    /// The shape obtained by removing `mode` (the output shape of Ttv).
    pub fn without_mode(&self, mode: usize) -> Result<Shape> {
        self.check_mode(mode)?;
        if self.order() < 2 {
            return Err(TensorError::OrderTooSmall {
                min: 2,
                actual: self.order(),
            });
        }
        let dims = self
            .dims
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != mode)
            .map(|(_, &d)| d)
            .collect();
        Ok(Shape::new(dims))
    }

    /// The shape obtained by replacing `mode`'s size with `r` (the output
    /// shape of Ttm with an `I_n x R` matrix).
    pub fn with_mode_size(&self, mode: usize, r: u32) -> Result<Shape> {
        self.check_mode(mode)?;
        let mut dims = self.dims.clone();
        dims[mode] = r;
        Ok(Shape::new(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

/// Returns the mode iteration order that places `mode` innermost (last),
/// keeping the remaining modes in ascending order. This is the sort order
/// required by the fiber-based Ttv/Ttm kernels: nonzeros of one mode-`n`
/// fiber become consecutive.
pub fn mode_last_order(order: usize, mode: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    perm.push(mode);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Shape::new(vec![4, 5, 6]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.dim(1), 5);
        assert_eq!(s.dense_count(), 120.0);
        assert_eq!(s.density(12), 0.1);
        assert_eq!(s.to_string(), "4x5x6");
    }

    #[test]
    fn cubical_builds_equal_dims() {
        let s = Shape::cubical(4, 8);
        assert_eq!(s.dims(), &[8, 8, 8, 8]);
    }

    #[test]
    #[should_panic(expected = "order must be >= 1")]
    fn empty_shape_panics() {
        let _ = Shape::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be >= 1")]
    fn zero_dim_panics() {
        let _ = Shape::new(vec![3, 0]);
    }

    #[test]
    fn check_coord_detects_out_of_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.check_coord(&[1, 1]).is_ok());
        assert_eq!(
            s.check_coord(&[1, 2]),
            Err(TensorError::IndexOutOfBounds {
                mode: 1,
                index: 2,
                dim: 2
            })
        );
        assert!(matches!(
            s.check_coord(&[1]),
            Err(TensorError::OrderMismatch { .. })
        ));
    }

    #[test]
    fn without_mode_drops_the_right_dim() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.without_mode(1).unwrap().dims(), &[3, 5]);
        assert!(s.without_mode(3).is_err());
    }

    #[test]
    fn without_mode_rejects_order_one() {
        let s = Shape::new(vec![9]);
        assert!(matches!(
            s.without_mode(0),
            Err(TensorError::OrderTooSmall { .. })
        ));
    }

    #[test]
    fn with_mode_size_replaces() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.with_mode_size(2, 16).unwrap().dims(), &[3, 4, 16]);
    }

    #[test]
    fn mode_last_order_places_mode_innermost() {
        assert_eq!(mode_last_order(3, 0), vec![1, 2, 0]);
        assert_eq!(mode_last_order(3, 2), vec![0, 1, 2]);
        assert_eq!(mode_last_order(4, 1), vec![0, 2, 3, 1]);
    }
}
