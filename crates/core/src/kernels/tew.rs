//! Tew — tensor element-wise operations (paper §2.1, §3.2).
//!
//! The trivial case is two tensors with exactly the same nonzero pattern:
//! one loop over the value arrays (the case Table 1 analyzes, OI = 1/12).
//! The general case iterates both tensors in lexicographic order and matches
//! coordinates as execution proceeds; the output pattern depends on the
//! operation:
//!
//! * `Add`/`Sub` — union of the patterns (a missing operand contributes 0),
//! * `Mul` — intersection (a missing operand annihilates the product),
//! * `Div` — the left operand's pattern; where the divisor is missing the
//!   IEEE quotient `x / 0` (infinity) is stored, making the behaviour
//!   explicit rather than silently dropping entries.

use std::cmp::Ordering;

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::analysis;
use crate::coo::{CooTensor, SortState};
use crate::error::{Result, TensorError};
use crate::hicoo::{HicooTensor, VbHicooTensor};
use crate::scalar::Scalar;
use crate::simd::{self, KernelBackend};

use super::EwOp;

/// Chunk size for the parallel value loops; large enough that the SIMD body
/// amortizes rayon's per-task overhead.
const CHUNK: usize = 1024;

/// Compare the coordinates of `a`'s nonzero `i` and `b`'s nonzero `j`
/// lexicographically by mode.
#[inline]
fn cmp_at(a: &[Vec<u32>], i: usize, b: &[Vec<u32>], j: usize) -> Ordering {
    for (am, bm) in a.iter().zip(b) {
        match am[i].cmp(&bm[j]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// First position in `inds[..len]` whose coordinate is `>=` the coordinate
/// at `other[pos]`.
fn lower_bound(inds: &[Vec<u32>], len: usize, other: &[Vec<u32>], pos: usize) -> usize {
    let (mut lo, mut hi) = (0usize, len);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cmp_at(inds, mid, other, pos) == Ordering::Less {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn check_same_shape<S: Scalar>(x: &CooTensor<S>, y: &CooTensor<S>) -> Result<()> {
    if x.shape() != y.shape() {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().dims().to_vec(),
            right: y.shape().dims().to_vec(),
        });
    }
    Ok(())
}

/// Charge one Tew invocation over `m` value pairs (`analysis::tew_cost`,
/// the same-pattern case Table 1 analyzes).
fn charge(m: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::tew_cost(m as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Same-pattern Tew, parallel over nonzeros (COO-Tew-OMP). The output shares
/// the inputs' index arrays and sort state; only values are computed.
pub fn tew_same_pattern<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
) -> Result<CooTensor<S>> {
    tew_same_pattern_backend(x, y, op, simd::current_backend())
}

/// [`tew_same_pattern`] with an explicit kernel backend.
pub fn tew_same_pattern_backend<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    check_same_shape(x, y)?;
    if !x.same_pattern(y) {
        return Err(TensorError::PatternMismatch);
    }
    let _span = obs::span!("tew.coo");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut vals: Vec<S> = vec![S::ZERO; x.nnz()];
    vals.par_chunks_mut(CHUNK)
        .zip(x.vals().par_chunks(CHUNK))
        .zip(y.vals().par_chunks(CHUNK))
        .for_each(|((o, a), b)| simd::ew_combine_into(backend, op, a, b, o));
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Sequential same-pattern Tew (the single-thread baseline).
pub fn tew_same_pattern_seq<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
) -> Result<CooTensor<S>> {
    tew_same_pattern_seq_backend(x, y, op, simd::current_backend())
}

/// [`tew_same_pattern_seq`] with an explicit kernel backend.
pub fn tew_same_pattern_seq_backend<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    check_same_shape(x, y)?;
    if !x.same_pattern(y) {
        return Err(TensorError::PatternMismatch);
    }
    let _span = obs::span!("tew.seq");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut vals: Vec<S> = vec![S::ZERO; x.nnz()];
    simd::ew_combine_into(backend, op, x.vals(), y.vals(), &mut vals);
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Merge one aligned coordinate range of `x` and `y` into the output arrays.
fn merge_range<S: Scalar>(
    x: &CooTensor<S>,
    xr: std::ops::Range<usize>,
    y: &CooTensor<S>,
    yr: std::ops::Range<usize>,
    op: EwOp,
    out_inds: &mut [Vec<u32>],
    out_vals: &mut Vec<S>,
) {
    let order = x.order();
    let (xi, yi) = (x.inds(), y.inds());
    let push_from = |src: &[Vec<u32>], at: usize, out_inds: &mut [Vec<u32>]| {
        for m in 0..order {
            out_inds[m].push(src[m][at]);
        }
    };
    let (mut i, mut j) = (xr.start, yr.start);
    while i < xr.end && j < yr.end {
        match cmp_at(xi, i, yi, j) {
            Ordering::Equal => {
                push_from(xi, i, out_inds);
                out_vals.push(op.apply(x.vals()[i], y.vals()[j]));
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                // Present only in x.
                match op {
                    EwOp::Add | EwOp::Sub => {
                        push_from(xi, i, out_inds);
                        out_vals.push(x.vals()[i]);
                    }
                    EwOp::Div => {
                        push_from(xi, i, out_inds);
                        out_vals.push(x.vals()[i] / S::ZERO);
                    }
                    EwOp::Mul => {}
                }
                i += 1;
            }
            Ordering::Greater => {
                // Present only in y.
                match op {
                    EwOp::Add => {
                        push_from(yi, j, out_inds);
                        out_vals.push(y.vals()[j]);
                    }
                    EwOp::Sub => {
                        push_from(yi, j, out_inds);
                        out_vals.push(-y.vals()[j]);
                    }
                    EwOp::Mul | EwOp::Div => {}
                }
                j += 1;
            }
        }
    }
    while i < xr.end {
        match op {
            EwOp::Add | EwOp::Sub => {
                push_from(xi, i, out_inds);
                out_vals.push(x.vals()[i]);
            }
            EwOp::Div => {
                push_from(xi, i, out_inds);
                out_vals.push(x.vals()[i] / S::ZERO);
            }
            EwOp::Mul => {}
        }
        i += 1;
    }
    while j < yr.end {
        match op {
            EwOp::Add => {
                push_from(yi, j, out_inds);
                out_vals.push(y.vals()[j]);
            }
            EwOp::Sub => {
                push_from(yi, j, out_inds);
                out_vals.push(-y.vals()[j]);
            }
            EwOp::Mul | EwOp::Div => {}
        }
        j += 1;
    }
}

fn default_order(order: usize) -> Vec<usize> {
    (0..order).collect()
}

/// General-pattern Tew over two lexicographically sorted tensors,
/// sequential merge.
pub fn tew_general_seq<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
) -> Result<CooTensor<S>> {
    check_same_shape(x, y)?;
    let ord = default_order(x.order());
    if !x.sort_state().is_lexicographic(&ord) || !y.sort_state().is_lexicographic(&ord) {
        return Err(TensorError::InvalidStructure(
            "general Tew requires both operands lexicographically sorted".into(),
        ));
    }
    let mut out_inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
    let mut out_vals: Vec<S> = Vec::new();
    merge_range(
        x,
        0..x.nnz(),
        y,
        0..y.nnz(),
        op,
        &mut out_inds,
        &mut out_vals,
    );
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        out_inds,
        out_vals,
        SortState::Lexicographic(ord),
    ))
}

/// General-pattern Tew, parallel merge: `x` is cut into contiguous segments,
/// `y` is partitioned at the same split coordinates by binary search, and
/// segment pairs merge independently.
pub fn tew_general<S: Scalar>(
    x: &CooTensor<S>,
    y: &CooTensor<S>,
    op: EwOp,
) -> Result<CooTensor<S>> {
    check_same_shape(x, y)?;
    let ord = default_order(x.order());
    if !x.sort_state().is_lexicographic(&ord) || !y.sort_state().is_lexicographic(&ord) {
        return Err(TensorError::InvalidStructure(
            "general Tew requires both operands lexicographically sorted".into(),
        ));
    }
    let _span = obs::span!("tew.general");
    let segments = (rayon::current_num_threads() * 4).max(1);
    let mx = x.nnz();
    if mx == 0 || segments == 1 {
        return tew_general_seq(x, y, op);
    }

    // Segment boundaries: positions in x, matched positions in y.
    let mut xb: Vec<usize> = (0..=segments).map(|s| s * mx / segments).collect();
    xb.dedup();
    let yb: Vec<usize> = xb
        .iter()
        .map(|&p| {
            if p == 0 {
                0
            } else if p >= mx {
                y.nnz()
            } else {
                lower_bound(y.inds(), y.nnz(), x.inds(), p)
            }
        })
        .collect();

    let parts: Vec<(Vec<Vec<u32>>, Vec<S>)> = (0..xb.len() - 1)
        .into_par_iter()
        .map(|s| {
            let mut inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
            let mut vals: Vec<S> = Vec::new();
            merge_range(
                x,
                xb[s]..xb[s + 1],
                y,
                yb[s]..yb[s + 1],
                op,
                &mut inds,
                &mut vals,
            );
            (inds, vals)
        })
        .collect();

    let total: usize = parts.iter().map(|(_, v)| v.len()).sum();
    let mut out_inds: Vec<Vec<u32>> = vec![Vec::with_capacity(total); x.order()];
    let mut out_vals: Vec<S> = Vec::with_capacity(total);
    for (inds, vals) in parts {
        for (m, arr) in inds.into_iter().enumerate() {
            out_inds[m].extend(arr);
        }
        out_vals.extend(vals);
    }
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        out_inds,
        out_vals,
        SortState::Lexicographic(ord),
    ))
}

/// Convenience dispatcher: uses the same-pattern fast path when possible,
/// otherwise sorts copies of the operands as needed and merges.
pub fn tew<S: Scalar>(x: &CooTensor<S>, y: &CooTensor<S>, op: EwOp) -> Result<CooTensor<S>> {
    check_same_shape(x, y)?;
    if x.same_pattern(y) {
        return tew_same_pattern(x, y, op);
    }
    let ord = default_order(x.order());
    let sorted = |t: &CooTensor<S>| -> CooTensor<S> {
        let mut c = t.clone();
        c.sort_lexicographic(&ord);
        c
    };
    match (
        x.sort_state().is_lexicographic(&ord),
        y.sort_state().is_lexicographic(&ord),
    ) {
        (true, true) => tew_general(x, y, op),
        (true, false) => tew_general(x, &sorted(y), op),
        (false, true) => tew_general(&sorted(x), y, op),
        (false, false) => tew_general(&sorted(x), &sorted(y), op),
    }
}

/// Same-pattern Tew over HiCOO operands (HiCOO-Tew-OMP): identical value
/// loop; the output shares the inputs' block structure. The pre-processing
/// difference (allocating HiCOO instead of COO indices) is what
/// distinguishes it from the COO kernel in the paper's measurements.
pub fn tew_hicoo_same_pattern<S: Scalar>(
    x: &HicooTensor<S>,
    y: &HicooTensor<S>,
    op: EwOp,
) -> Result<HicooTensor<S>> {
    tew_hicoo_same_pattern_backend(x, y, op, simd::current_backend())
}

/// [`tew_hicoo_same_pattern`] with an explicit kernel backend.
pub fn tew_hicoo_same_pattern_backend<S: Scalar>(
    x: &HicooTensor<S>,
    y: &HicooTensor<S>,
    op: EwOp,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    if x.shape() != y.shape() {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().dims().to_vec(),
            right: y.shape().dims().to_vec(),
        });
    }
    if !x.same_pattern(y) {
        return Err(TensorError::PatternMismatch);
    }
    let _span = obs::span!("tew.hicoo");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut out = x.clone();
    out.vals_mut()
        .par_chunks_mut(CHUNK)
        .zip(y.vals().par_chunks(CHUNK))
        .for_each(|(a, b)| simd::ew_combine_assign(backend, op, a, b));
    Ok(out)
}

/// Same-pattern Tew over vb-HiCOO operands: streams the *padded* value
/// arrays — every chunk starts 64-byte aligned and full lanes cover the
/// padding — then re-zeroes the padding lanes (Div writes `0/0` there).
pub fn tew_vb_same_pattern<S: Scalar>(
    x: &VbHicooTensor<S>,
    y: &VbHicooTensor<S>,
    op: EwOp,
) -> Result<VbHicooTensor<S>> {
    tew_vb_same_pattern_backend(x, y, op, simd::current_backend())
}

/// [`tew_vb_same_pattern`] with an explicit kernel backend.
pub fn tew_vb_same_pattern_backend<S: Scalar>(
    x: &VbHicooTensor<S>,
    y: &VbHicooTensor<S>,
    op: EwOp,
    backend: KernelBackend,
) -> Result<VbHicooTensor<S>> {
    if x.shape() != y.shape() {
        return Err(TensorError::ShapeMismatch {
            left: x.shape().dims().to_vec(),
            right: y.shape().dims().to_vec(),
        });
    }
    if !x.same_pattern(y) {
        return Err(TensorError::PatternMismatch);
    }
    let _span = obs::span!("tew.vb");
    charge(x.nnz());
    simd::note_dispatch(backend);
    let mut out = x.clone();
    out.padded_vals_mut()
        .par_chunks_mut(CHUNK)
        .zip(y.padded_vals().par_chunks(CHUNK))
        .for_each(|(a, b)| simd::ew_combine_assign(backend, op, a, b));
    out.rezero_padding();
    Ok(out)
}

/// General-pattern Tew for HiCOO operands. The paper analyzes only the
/// same-pattern case; for completeness the general case routes through COO
/// expansion and re-blocks the result.
pub fn tew_hicoo_general<S: Scalar>(
    x: &HicooTensor<S>,
    y: &HicooTensor<S>,
    op: EwOp,
) -> Result<HicooTensor<S>> {
    let z = tew(&x.to_coo(), &y.to_coo(), op)?;
    HicooTensor::from_coo(&z, x.block_bits())
}

#[cfg(test)]
mod tests {
    use crate::shape::Shape;

    use super::*;

    fn t(entries: Vec<(Vec<u32>, f32)>) -> CooTensor<f32> {
        CooTensor::from_entries(Shape::new(vec![4, 4]), entries).unwrap()
    }

    #[test]
    fn same_pattern_all_ops() {
        let x = t(vec![(vec![0, 0], 6.0), (vec![1, 2], 8.0)]);
        let y = t(vec![(vec![0, 0], 2.0), (vec![1, 2], 4.0)]);
        assert_eq!(
            tew_same_pattern(&x, &y, EwOp::Add).unwrap().vals(),
            &[8.0, 12.0]
        );
        assert_eq!(
            tew_same_pattern(&x, &y, EwOp::Sub).unwrap().vals(),
            &[4.0, 4.0]
        );
        assert_eq!(
            tew_same_pattern(&x, &y, EwOp::Mul).unwrap().vals(),
            &[12.0, 32.0]
        );
        assert_eq!(
            tew_same_pattern(&x, &y, EwOp::Div).unwrap().vals(),
            &[3.0, 2.0]
        );
    }

    #[test]
    fn same_pattern_rejects_different_patterns() {
        let x = t(vec![(vec![0, 0], 1.0)]);
        let y = t(vec![(vec![0, 1], 1.0)]);
        assert_eq!(
            tew_same_pattern(&x, &y, EwOp::Add),
            Err(TensorError::PatternMismatch)
        );
    }

    #[test]
    fn general_add_is_union() {
        let x = t(vec![(vec![0, 0], 1.0), (vec![2, 2], 3.0)]);
        let y = t(vec![(vec![0, 0], 10.0), (vec![1, 1], 20.0)]);
        let z = tew(&x, &y, EwOp::Add).unwrap();
        let m = z.to_map();
        assert_eq!(m.len(), 3);
        assert_eq!(m[&vec![0, 0]], 11.0);
        assert_eq!(m[&vec![1, 1]], 20.0);
        assert_eq!(m[&vec![2, 2]], 3.0);
    }

    #[test]
    fn general_sub_negates_right_only_entries() {
        let x = t(vec![(vec![0, 0], 1.0)]);
        let y = t(vec![(vec![1, 1], 5.0)]);
        let z = tew(&x, &y, EwOp::Sub).unwrap();
        assert_eq!(z.to_map()[&vec![1, 1]], -5.0);
    }

    #[test]
    fn general_mul_is_intersection() {
        let x = t(vec![(vec![0, 0], 2.0), (vec![2, 2], 3.0)]);
        let y = t(vec![(vec![0, 0], 10.0), (vec![1, 1], 20.0)]);
        let z = tew(&x, &y, EwOp::Mul).unwrap();
        let m = z.to_map();
        assert_eq!(m.len(), 1);
        assert_eq!(m[&vec![0, 0]], 20.0);
    }

    #[test]
    fn general_div_keeps_left_pattern_with_ieee_infinity() {
        let x = t(vec![(vec![0, 0], 2.0), (vec![2, 2], 3.0)]);
        let y = t(vec![(vec![0, 0], 4.0)]);
        let z = tew(&x, &y, EwOp::Div).unwrap();
        assert_eq!(z.nnz(), 2);
        let m = z.to_map();
        assert_eq!(m[&vec![0, 0]], 0.5);
        assert!(m[&vec![2, 2]].is_infinite());
    }

    #[test]
    fn parallel_merge_matches_sequential_on_larger_input() {
        let xe: Vec<(Vec<u32>, f32)> = (0..500)
            .map(|i| (vec![i % 100, (i * 7) % 97], i as f32))
            .collect();
        let ye: Vec<(Vec<u32>, f32)> = (0..500)
            .map(|i| (vec![(i * 3) % 100, (i * 11) % 97], -(i as f32)))
            .collect();
        let shape = Shape::new(vec![100, 97]);
        let x = CooTensor::from_entries(shape.clone(), xe).unwrap();
        let y = CooTensor::from_entries(shape, ye).unwrap();
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul] {
            let par = tew_general(&x, &y, op).unwrap();
            let seq = tew_general_seq(&x, &y, op).unwrap();
            assert_eq!(par.to_map(), seq.to_map(), "{op:?}");
            assert!(par.sort_state().is_lexicographic(&[0, 1]));
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let x = t(vec![(vec![0, 0], 1.0)]);
        let y =
            CooTensor::from_entries(Shape::new(vec![4, 5]), vec![(vec![0, 0], 1.0f32)]).unwrap();
        assert!(matches!(
            tew(&x, &y, EwOp::Add),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn hicoo_same_pattern_matches_coo() {
        let x = t(vec![
            (vec![0, 0], 6.0),
            (vec![1, 2], 8.0),
            (vec![3, 3], 1.0),
        ]);
        let y = t(vec![
            (vec![0, 0], 2.0),
            (vec![1, 2], 4.0),
            (vec![3, 3], 2.0),
        ]);
        let hx = HicooTensor::from_coo(&x, 1).unwrap();
        let hy = HicooTensor::from_coo(&y, 1).unwrap();
        let hz = tew_hicoo_same_pattern(&hx, &hy, EwOp::Mul).unwrap();
        let z = tew(&x, &y, EwOp::Mul).unwrap();
        assert_eq!(hz.to_map(), z.to_map());
    }

    #[test]
    fn hicoo_general_reblocks() {
        let x = t(vec![(vec![0, 0], 1.0), (vec![2, 2], 3.0)]);
        let y = t(vec![(vec![1, 1], 20.0)]);
        let hx = HicooTensor::from_coo(&x, 1).unwrap();
        let hy = HicooTensor::from_coo(&y, 1).unwrap();
        let hz = tew_hicoo_general(&hx, &hy, EwOp::Add).unwrap();
        assert_eq!(hz.nnz(), 3);
        assert!(hz.validate().is_ok());
    }

    #[test]
    fn backends_are_bitwise_identical() {
        let n = 777u32; // not a lane multiple
        let xe: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| (vec![i % 50, i / 50], ((i * 31 % 19) as f32) - 9.0))
            .collect();
        let ye: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| (vec![i % 50, i / 50], ((i * 13 % 23) as f32) - 11.0))
            .collect();
        let shape = Shape::new(vec![50, 16]);
        let x = CooTensor::from_entries(shape.clone(), xe).unwrap();
        let y = CooTensor::from_entries(shape, ye).unwrap();
        let hx = HicooTensor::from_coo(&x, 2).unwrap();
        let hy = HicooTensor::from_coo(&y, 2).unwrap();
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            use crate::simd::KernelBackend::{Scalar, Simd};
            let zs = tew_same_pattern_backend(&x, &y, op, Scalar).unwrap();
            let zv = tew_same_pattern_backend(&x, &y, op, Simd).unwrap();
            assert_eq!(
                zs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                zv.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{op:?} parallel"
            );
            let zq = tew_same_pattern_seq_backend(&x, &y, op, Simd).unwrap();
            assert_eq!(
                zs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                zq.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{op:?} seq"
            );
            let hs = tew_hicoo_same_pattern_backend(&hx, &hy, op, Scalar).unwrap();
            let hv = tew_hicoo_same_pattern_backend(&hx, &hy, op, Simd).unwrap();
            assert_eq!(
                hs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                hv.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{op:?} hicoo"
            );
        }
    }

    #[test]
    fn vb_matches_hicoo_and_keeps_padding_clean() {
        let n = 333u32;
        let xe: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![i % 9, (i / 9) % 9, i / 81],
                    ((i * 7 % 17) as f32) - 8.0,
                )
            })
            .collect();
        let ye: Vec<(Vec<u32>, f32)> = (0..n)
            .map(|i| {
                (
                    vec![i % 9, (i / 9) % 9, i / 81],
                    ((i * 11 % 13) as f32) - 6.0,
                )
            })
            .collect();
        let shape = Shape::new(vec![9, 9, 38]);
        let x = CooTensor::from_entries(shape.clone(), xe).unwrap();
        let y = CooTensor::from_entries(shape, ye).unwrap();
        let hx = HicooTensor::from_coo(&x, 2).unwrap();
        let hy = HicooTensor::from_coo(&y, 2).unwrap();
        let vx = VbHicooTensor::from_hicoo(&hx);
        let vy = VbHicooTensor::from_hicoo(&hy);
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            for backend in [
                crate::simd::KernelBackend::Scalar,
                crate::simd::KernelBackend::Simd,
            ] {
                let h = tew_hicoo_same_pattern_backend(&hx, &hy, op, backend).unwrap();
                let v = tew_vb_same_pattern_backend(&vx, &vy, op, backend).unwrap();
                assert!(v.validate().is_ok(), "{op:?} {backend:?} padding");
                let vh = v.to_hicoo();
                assert_eq!(
                    h.vals().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    vh.vals().iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    "{op:?} {backend:?}"
                );
            }
        }
    }

    #[test]
    fn tew_dispatcher_sorts_unsorted_inputs() {
        let x = CooTensor::from_parts(
            Shape::new(vec![4, 4]),
            vec![vec![2, 0], vec![2, 0]],
            vec![3.0f32, 1.0],
        )
        .unwrap();
        let y = t(vec![(vec![0, 0], 10.0)]);
        let z = tew(&x, &y, EwOp::Add).unwrap();
        assert_eq!(z.to_map()[&vec![0, 0]], 11.0);
    }
}
