//! Sparse tensor contraction — listed by the paper (§7) among the
//! operations to add to the suite ("tensor contraction, a sparse tensor
//! with a sparse vector/matrix operations"); provided here as an extension.
//!
//! `contract(x, mode_x, y, mode_y)` computes
//! `Z[i.., j..] = Σ_k X[i.., k at mode_x] * Y[j.. with k at mode_y]`,
//! generalizing matrix multiplication (order-2 × order-2 over the inner
//! modes). Both operands are iterated fiber-by-fiber over the contracted
//! mode after mode-last sorts; matching `k` groups produce outer-product
//! contributions that are accumulated by coordinate.

use std::collections::HashMap;

use rayon::prelude::*;

use crate::coo::{CooTensor, SortState};
use crate::error::{Result, TensorError};
use crate::scalar::Scalar;
use crate::shape::Shape;

/// Index ranges of each distinct contracted-mode value, over a tensor
/// sorted with that mode *first* (so equal `k` are consecutive).
fn groups_by_mode<S: Scalar>(t: &CooTensor<S>, mode: usize) -> Vec<(u32, std::ops::Range<usize>)> {
    let inds = t.mode_inds(mode);
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=inds.len() {
        if i == inds.len() || inds[i] != inds[i - 1] {
            out.push((inds[start], start..i));
            start = i;
        }
    }
    out
}

/// Contract `x`'s `mode_x` with `y`'s `mode_y` (their extents must match).
/// The output's modes are `x`'s modes without `mode_x` followed by `y`'s
/// modes without `mode_y`; duplicate output coordinates are summed.
///
/// The result can densify rapidly (the "curse of dimensionality" the paper
/// opens with): contracting two order-`N` tensors yields order `2N-2`.
pub fn contract<S: Scalar>(
    x: &CooTensor<S>,
    mode_x: usize,
    y: &CooTensor<S>,
    mode_y: usize,
) -> Result<CooTensor<S>> {
    x.shape().check_mode(mode_x)?;
    y.shape().check_mode(mode_y)?;
    if x.shape().dim(mode_x) != y.shape().dim(mode_y) {
        return Err(TensorError::OperandLengthMismatch {
            expected: x.shape().dim(mode_x) as usize,
            actual: y.shape().dim(mode_y) as usize,
        });
    }
    if x.order() < 2 || y.order() < 2 {
        return Err(TensorError::OrderTooSmall {
            min: 2,
            actual: x.order().min(y.order()),
        });
    }

    // Sort both with the contracted mode outermost so each k is one run.
    let sort_mode_first = |t: &CooTensor<S>, mode: usize| -> CooTensor<S> {
        let mut order: Vec<usize> = (0..t.order()).filter(|&m| m != mode).collect();
        order.insert(0, mode);
        let mut c = t.clone();
        c.sort_lexicographic(&order);
        c
    };
    let xs = sort_mode_first(x, mode_x);
    let ys = sort_mode_first(y, mode_y);

    let x_free: Vec<usize> = (0..x.order()).filter(|&m| m != mode_x).collect();
    let y_free: Vec<usize> = (0..y.order()).filter(|&m| m != mode_y).collect();
    let out_order = x_free.len() + y_free.len();
    let mut out_dims: Vec<u32> = x_free.iter().map(|&m| x.shape().dim(m)).collect();
    out_dims.extend(y_free.iter().map(|&m| y.shape().dim(m)));
    let out_shape = Shape::new(out_dims);

    // Merge the two sorted k-group lists; matched pairs contribute outer
    // products, accumulated per rayon task and merged at the end.
    let gx = groups_by_mode(&xs, mode_x);
    let gy = groups_by_mode(&ys, mode_y);
    let mut pairs: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < gx.len() && j < gy.len() {
        match gx[i].0.cmp(&gy[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                pairs.push((gx[i].1.clone(), gy[j].1.clone()));
                i += 1;
                j += 1;
            }
        }
    }

    let partials: Vec<HashMap<Vec<u32>, S>> = pairs
        .par_iter()
        .with_min_len(8)
        .map(|(rx, ry)| {
            let mut acc: HashMap<Vec<u32>, S> = HashMap::new();
            for px in rx.clone() {
                let xv = xs.vals()[px];
                for py in ry.clone() {
                    let mut coord = Vec::with_capacity(out_order);
                    for &m in &x_free {
                        coord.push(xs.mode_inds(m)[px]);
                    }
                    for &m in &y_free {
                        coord.push(ys.mode_inds(m)[py]);
                    }
                    *acc.entry(coord).or_insert(S::ZERO) += xv * ys.vals()[py];
                }
            }
            acc
        })
        .collect();

    let mut total: HashMap<Vec<u32>, S> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            *total.entry(k).or_insert(S::ZERO) += v;
        }
    }
    let mut entries: Vec<(Vec<u32>, S)> = total.into_iter().collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut inds: Vec<Vec<u32>> = vec![Vec::with_capacity(entries.len()); out_order];
    let mut vals: Vec<S> = Vec::with_capacity(entries.len());
    for (coord, v) in entries {
        for (m, &c) in coord.iter().enumerate() {
            inds[m].push(c);
        }
        vals.push(v);
    }
    Ok(CooTensor::from_parts_unchecked(
        out_shape,
        inds,
        vals,
        SortState::Lexicographic((0..out_order).collect()),
    ))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn matrix(rows: u32, cols: u32, entries: Vec<(u32, u32, f64)>) -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![rows, cols]),
            entries
                .into_iter()
                .map(|(i, j, v)| (vec![i, j], v))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn order2_contraction_is_matrix_multiply() {
        // A (2x3) * B (3x2): contract A mode 1 with B mode 0.
        let a = matrix(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let b = matrix(3, 2, vec![(0, 0, 4.0), (1, 1, 5.0), (2, 0, 6.0)]);
        let c = contract(&a, 1, &b, 0).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        let m = c.to_map();
        // C[0,0] = A[0,0]*B[0,0] + A[0,2]*B[2,0] = 4 + 12 = 16.
        assert_eq!(m[&vec![0, 0]], 16.0);
        // C[1,1] = A[1,1]*B[1,1] = 15.
        assert_eq!(m[&vec![1, 1]], 15.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn contraction_matches_dense_reference_order3() {
        let x = CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 1, 2], 1.5f64),
                (vec![2, 3, 2], -2.0),
                (vec![1, 0, 4], 3.0),
                (vec![0, 2, 0], 0.5),
            ],
        )
        .unwrap();
        let y = CooTensor::from_entries(
            Shape::new(vec![5, 2]),
            vec![(vec![2, 0], 2.0f64), (vec![2, 1], -1.0), (vec![4, 1], 4.0)],
        )
        .unwrap();
        // Contract x mode 2 with y mode 0 -> order 3 output (3,4,2).
        let z = contract(&x, 2, &y, 0).unwrap();
        assert_eq!(z.shape().dims(), &[3, 4, 2]);
        // Dense reference.
        let mut expect: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (cx, vx) in x.iter_entries() {
            for (cy, vy) in y.iter_entries() {
                if cx[2] == cy[0] {
                    *expect.entry(vec![cx[0], cx[1], cy[1]]).or_insert(0.0) += vx * vy;
                }
            }
        }
        expect.retain(|_, v| *v != 0.0);
        let mut got = z.to_map();
        got.retain(|_, v| *v != 0.0);
        assert_eq!(got, expect);
    }

    #[test]
    fn mismatched_inner_extent_is_rejected() {
        let a = matrix(2, 3, vec![(0, 0, 1.0)]);
        let b = matrix(4, 2, vec![(0, 0, 1.0)]);
        assert!(matches!(
            contract(&a, 1, &b, 0),
            Err(TensorError::OperandLengthMismatch { .. })
        ));
    }

    #[test]
    fn disjoint_inner_support_gives_empty_output() {
        let a = matrix(2, 4, vec![(0, 0, 1.0), (1, 1, 2.0)]);
        let b = matrix(4, 2, vec![(2, 0, 3.0), (3, 1, 4.0)]);
        let c = contract(&a, 1, &b, 0).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn contraction_with_order3_pair_produces_order4() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 2, 3]),
            vec![(vec![0, 1, 2], 2.0f64), (vec![1, 0, 1], 3.0)],
        )
        .unwrap();
        let y = CooTensor::from_entries(
            Shape::new(vec![3, 2, 2]),
            vec![(vec![2, 1, 1], 4.0f64), (vec![1, 0, 0], 5.0)],
        )
        .unwrap();
        let z = contract(&x, 2, &y, 0).unwrap();
        assert_eq!(z.order(), 4);
        let m = z.to_map();
        assert_eq!(m[&vec![0, 1, 1, 1]], 8.0);
        assert_eq!(m[&vec![1, 0, 0, 0]], 15.0);
    }

    #[test]
    fn cancellation_keeps_structural_zero() {
        // Two contributions to the same output cell that cancel exactly:
        // COO keeps whatever the accumulation produced (a stored zero).
        let a = matrix(1, 2, vec![(0, 0, 1.0), (0, 1, -1.0)]);
        let b = matrix(2, 1, vec![(0, 0, 1.0), (1, 0, 1.0)]);
        let c = contract(&a, 1, &b, 0).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.vals()[0], 0.0);
    }
}
