//! Ttm — tensor-times-matrix (the n-mode product, paper §2.4).
//!
//! `Y = X ×_n U` with `U ∈ R^{I_n x R}` (the paper's transposed convention
//! so that `U`'s rows are contiguous under row-major storage). By the
//! sparse-dense property the output is semi-sparse: mode `n` becomes dense
//! with stripe length `R`, the other modes keep the input's fiber pattern.
//! The output is therefore pre-allocated in sCOO (COO kernels) or sHiCOO
//! (HiCOO kernels) with `M_F` fibers, and fibers are parallelized without
//! races — COO-Ttm-OMP mirrors COO-Ttv-OMP (§3.2.1).

use rayon::prelude::*;

use crate::coo::{CooTensor, FiberPartition, SemiSparseTensor};
use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::hicoo::{GHicooTensor, GhFiberPartition, HicooTensor, SemiSparseHicooTensor};
use crate::par::Schedule;
use crate::scalar::Scalar;
use crate::shape::Shape;

fn check_operand<S: Scalar>(shape: &Shape, mode: usize, u: &DenseMatrix<S>) -> Result<()> {
    shape.check_mode(mode)?;
    if u.rows() != shape.dim(mode) as usize {
        return Err(TensorError::OperandLengthMismatch {
            expected: shape.dim(mode) as usize,
            actual: u.rows(),
        });
    }
    if u.cols() == 0 {
        return Err(TensorError::OperandLengthMismatch {
            expected: 1,
            actual: 0,
        });
    }
    Ok(())
}

/// COO-Ttm over a mode-last-sorted tensor with a precomputed fiber
/// partition, parallel over fibers. Output in sCOO.
pub fn ttm_prepared<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
) -> Result<SemiSparseTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, u)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttm requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let r = u.cols();
    let mf = fp.num_fibers();
    let out_shape = x.shape().with_mode_size(mode, r as u32)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);

    let mut vals = vec![S::ZERO; mf * r];
    let body = |f: usize, stripe: &mut [S]| {
        for m in fp.fiber_range(f) {
            let val = xv[m];
            let urow = u.row(xk[m] as usize);
            for (o, &uc) in stripe.iter_mut().zip(urow) {
                *o += val * uc;
            }
        }
    };
    match sched {
        Schedule::Static => {
            let workers = rayon::current_num_threads().max(1);
            let chunk = mf.div_ceil(workers).max(1);
            vals.par_chunks_mut(chunk * r)
                .enumerate()
                .for_each(|(c, slice)| {
                    for (off, stripe) in slice.chunks_mut(r).enumerate() {
                        body(c * chunk + off, stripe);
                    }
                });
        }
        Schedule::Dynamic { grain } => {
            vals.par_chunks_mut(r)
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(f, stripe)| body(f, stripe));
        }
    }

    let mut inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
    for (md, arr) in inds.iter_mut().enumerate() {
        if md != mode {
            let src = x.mode_inds(md);
            *arr = (0..mf)
                .into_par_iter()
                .with_min_len(1024)
                .map(|f| src[fp.fptr[f]])
                .collect();
        }
    }
    Ok(SemiSparseTensor::from_parts_unchecked(
        out_shape, mode, inds, vals,
    ))
}

/// Sequential COO-Ttm baseline.
pub fn ttm_prepared_seq<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
) -> Result<SemiSparseTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, u)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttm requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let r = u.cols();
    let mf = fp.num_fibers();
    let out_shape = x.shape().with_mode_size(mode, r as u32)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);

    let mut vals = vec![S::ZERO; mf * r];
    for f in 0..mf {
        let stripe = &mut vals[f * r..(f + 1) * r];
        for m in fp.fiber_range(f) {
            let val = xv[m];
            let urow = u.row(xk[m] as usize);
            for (o, &uc) in stripe.iter_mut().zip(urow) {
                *o += val * uc;
            }
        }
    }
    let mut inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
    for (md, arr) in inds.iter_mut().enumerate() {
        if md != mode {
            let src = x.mode_inds(md);
            *arr = (0..mf).map(|f| src[fp.fptr[f]]).collect();
        }
    }
    Ok(SemiSparseTensor::from_parts_unchecked(
        out_shape, mode, inds, vals,
    ))
}

/// Convenience COO-Ttm: sorts a copy if needed, computes fibers, runs the
/// parallel kernel.
pub fn ttm<S: Scalar>(
    x: &CooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<SemiSparseTensor<S>> {
    check_operand(x.shape(), mode, u)?;
    if x.sort_state().is_mode_last(x.order(), mode) {
        let fp = x.fibers_sorted(mode)?;
        ttm_prepared(x, &fp, u, Schedule::default())
    } else {
        let mut c = x.clone();
        let fp = c.fibers(mode)?;
        ttm_prepared(&c, &fp, u, Schedule::default())
    }
}

/// HiCOO-Ttm over a gHiCOO tensor (product mode uncompressed) with a
/// precomputed fiber partition. Output in sHiCOO with the input's blocks.
pub fn ttm_ghicoo<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
) -> Result<SemiSparseHicooTensor<S>> {
    let mode = fp.mode;
    check_operand(g.shape(), mode, u)?;
    let r = u.cols();
    let mf = fp.num_fibers();
    let nb = g.num_blocks();
    let out_shape = g.shape().with_mode_size(mode, r as u32)?;
    let gv = g.vals();
    let gk = g.find(mode);

    let mut vals = vec![S::ZERO; mf * r];
    let body = |f: usize, stripe: &mut [S]| {
        for m in fp.fiber_range(f) {
            let val = gv[m];
            let urow = u.row(gk[m] as usize);
            for (o, &uc) in stripe.iter_mut().zip(urow) {
                *o += val * uc;
            }
        }
    };
    match sched {
        Schedule::Static => {
            let workers = rayon::current_num_threads().max(1);
            let chunk = mf.div_ceil(workers).max(1);
            vals.par_chunks_mut(chunk * r)
                .enumerate()
                .for_each(|(c, slice)| {
                    for (off, stripe) in slice.chunks_mut(r).enumerate() {
                        body(c * chunk + off, stripe);
                    }
                });
        }
        Schedule::Dynamic { grain } => {
            vals.par_chunks_mut(r)
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(f, stripe)| body(f, stripe));
        }
    }

    let other_modes: Vec<usize> = (0..g.order()).filter(|&m| m != mode).collect();
    let bptr: Vec<u64> = fp.block_fiber_ptr.iter().map(|&f| f as u64).collect();
    let mut binds: Vec<Vec<u32>> = vec![Vec::new(); g.order()];
    let mut einds: Vec<Vec<u8>> = vec![Vec::new(); g.order()];
    for &md in &other_modes {
        binds[md] = (0..nb).map(|b| g.block_ind(b, md)).collect();
        let src = g.eind(md);
        einds[md] = (0..mf).map(|f| src[fp.fptr[f]]).collect();
    }

    Ok(SemiSparseHicooTensor::from_parts_unchecked(
        out_shape,
        g.block_bits(),
        mode,
        bptr,
        binds,
        einds,
        vals,
    ))
}

/// Convenience HiCOO-Ttm: re-blocks into the gHiCOO layout for `mode`,
/// computes fibers, and runs the parallel kernel.
pub fn ttm_hicoo<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<SemiSparseHicooTensor<S>> {
    check_operand(h.shape(), mode, u)?;
    let g = GHicooTensor::from_coo_for_mode(&h.to_coo(), h.block_bits(), mode)?;
    let fp = g.fibers(mode)?;
    ttm_ghicoo(&g, &fp, u, Schedule::default())
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
            ],
        )
        .unwrap()
    }

    fn reference(
        x: &CooTensor<f32>,
        u: &DenseMatrix<f32>,
        mode: usize,
    ) -> BTreeMap<Vec<u32>, f64> {
        let mut out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (c, val) in x.iter_entries() {
            let k = c[mode] as usize;
            for rr in 0..u.cols() {
                let mut key = c.clone();
                key[mode] = rr as u32;
                *out.entry(key).or_insert(0.0) += (val * u[(k, rr)]) as f64;
            }
        }
        out.retain(|_, v| *v != 0.0);
        out
    }

    #[test]
    fn matches_dense_reference_every_mode() {
        let x = sample();
        for mode in 0..3 {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, 4, |i, j| (i + 2 * j + 1) as f32);
            let y = ttm(&x, &u, mode).unwrap();
            assert_eq!(y.dense_mode(), mode);
            assert_eq!(y.dense_size(), 4);
            assert_eq!(y.to_map(), reference(&x, &u, mode), "mode {mode}");
            assert!(y.validate().is_ok());
        }
    }

    #[test]
    fn seq_matches_parallel() {
        let mut x = sample();
        let fp = x.fibers(1).unwrap();
        let u = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32);
        let a = ttm_prepared(&x, &fp, &u, Schedule::Static).unwrap();
        let b = ttm_prepared_seq(&x, &fp, &u).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn output_fiber_count_matches_partition() {
        let mut x = sample();
        let fp = x.fibers(2).unwrap();
        let u = DenseMatrix::constant(5, 2, 1.0f32);
        let y = ttm_prepared(&x, &fp, &u, Schedule::default()).unwrap();
        assert_eq!(y.num_fibers(), fp.num_fibers());
        assert_eq!(y.num_values(), fp.num_fibers() * 2);
    }

    #[test]
    fn rejects_wrong_matrix_rows() {
        let x = sample();
        let u = DenseMatrix::constant(4, 2, 1.0f32);
        assert!(matches!(
            ttm(&x, &u, 2),
            Err(TensorError::OperandLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_columns() {
        let x = sample();
        let u = DenseMatrix::constant(5, 0, 1.0f32);
        assert!(ttm(&x, &u, 2).is_err());
    }

    #[test]
    fn hicoo_matches_coo_every_mode() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        for mode in 0..3 {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, 4, |i, j| (i + j + 1) as f32);
            let y_coo = ttm(&x, &u, mode).unwrap();
            let y_h = ttm_hicoo(&h, &u, mode).unwrap();
            assert!(y_h.validate().is_ok(), "mode {mode}");
            assert_eq!(y_h.to_map(), y_coo.to_map(), "mode {mode}");
        }
    }

    #[test]
    fn fourth_order_ttm() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 3, 4, 5]),
            vec![
                (vec![0, 1, 2, 3], 2.0f32),
                (vec![0, 1, 2, 4], 3.0),
                (vec![1, 2, 0, 0], 4.0),
            ],
        )
        .unwrap();
        let u = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f32);
        let y = ttm(&x, &u, 1).unwrap();
        assert_eq!(y.order(), 4);
        let m = y.to_map();
        // Entry (0,1,2,3): row 1 of u = [1, 2].
        assert_eq!(m[&vec![0, 0, 2, 3]], 2.0);
        assert_eq!(m[&vec![0, 1, 2, 3]], 4.0);
    }
}
