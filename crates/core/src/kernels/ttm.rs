//! Ttm — tensor-times-matrix (the n-mode product, paper §2.4).
//!
//! `Y = X ×_n U` with `U ∈ R^{I_n x R}` (the paper's transposed convention
//! so that `U`'s rows are contiguous under row-major storage). By the
//! sparse-dense property the output is semi-sparse: mode `n` becomes dense
//! with stripe length `R`, the other modes keep the input's fiber pattern.
//! The output is therefore pre-allocated in sCOO (COO kernels) or sHiCOO
//! (HiCOO kernels) with `M_F` fibers, and fibers are parallelized without
//! races — COO-Ttm-OMP mirrors COO-Ttv-OMP (§3.2.1).

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::analysis;
use crate::coo::{CooTensor, FiberPartition, SemiSparseTensor};
use crate::dense::DenseMatrix;
use crate::error::{Result, TensorError};
use crate::hicoo::{GHicooTensor, GhFiberPartition, HicooTensor, SemiSparseHicooTensor};
use crate::kernels::ttv::MAX_SCHED_ORDER;
use crate::par::Schedule;
use crate::scalar::Scalar;
use crate::sched::ComplementSchedule;
use crate::shape::Shape;
use crate::simd::{self, KernelBackend};

fn check_operand<S: Scalar>(shape: &Shape, mode: usize, u: &DenseMatrix<S>) -> Result<()> {
    shape.check_mode(mode)?;
    if u.rows() != shape.dim(mode) as usize {
        return Err(TensorError::OperandLengthMismatch {
            expected: shape.dim(mode) as usize,
            actual: u.rows(),
        });
    }
    if u.cols() == 0 {
        return Err(TensorError::OperandLengthMismatch {
            expected: 1,
            actual: 0,
        });
    }
    Ok(())
}

/// Charge one Ttm invocation over `m` nonzeros folding into `mf` output
/// fibers of dense stripe length `r` (`analysis::ttm_cost`).
fn charge(order: usize, m: usize, mf: usize, r: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::ttm_cost(order, m as u64, mf as u64, r as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// COO-Ttm over a mode-last-sorted tensor with a precomputed fiber
/// partition, parallel over fibers. Output in sCOO.
pub fn ttm_prepared<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
) -> Result<SemiSparseTensor<S>> {
    ttm_prepared_backend(x, fp, u, sched, simd::current_backend())
}

/// [`ttm_prepared`] with an explicit kernel backend.
pub fn ttm_prepared_backend<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
    backend: KernelBackend,
) -> Result<SemiSparseTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, u)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttm requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let _span = obs::span!("ttm.coo");
    let r = u.cols();
    let mf = fp.num_fibers();
    charge(x.order(), x.nnz(), mf, r);
    simd::note_dispatch(backend);
    let out_shape = x.shape().with_mode_size(mode, r as u32)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);

    let mut vals = crate::par::first_touch_filled(mf * r, S::ZERO);
    let body = |f: usize, stripe: &mut [S]| {
        for m in fp.fiber_range(f) {
            simd::axpy(backend, stripe, u.row(xk[m] as usize), xv[m]);
        }
    };
    match sched {
        Schedule::Static => {
            let workers = rayon::current_num_threads().max(1);
            let chunk = mf.div_ceil(workers).max(1);
            vals.par_chunks_mut(chunk * r)
                .enumerate()
                .for_each(|(c, slice)| {
                    for (off, stripe) in slice.chunks_mut(r).enumerate() {
                        body(c * chunk + off, stripe);
                    }
                });
        }
        Schedule::Dynamic { grain } => {
            vals.par_chunks_mut(r)
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(f, stripe)| body(f, stripe));
        }
    }

    let mut inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
    for (md, arr) in inds.iter_mut().enumerate() {
        if md != mode {
            let src = x.mode_inds(md);
            *arr = (0..mf)
                .into_par_iter()
                .with_min_len(1024)
                .map(|f| src[fp.fptr[f]])
                .collect();
        }
    }
    Ok(SemiSparseTensor::from_parts_unchecked(
        out_shape, mode, inds, vals,
    ))
}

/// Sequential COO-Ttm baseline.
pub fn ttm_prepared_seq<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
) -> Result<SemiSparseTensor<S>> {
    ttm_prepared_seq_backend(x, fp, u, simd::current_backend())
}

/// [`ttm_prepared_seq`] with an explicit kernel backend.
pub fn ttm_prepared_seq_backend<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    u: &DenseMatrix<S>,
    backend: KernelBackend,
) -> Result<SemiSparseTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, u)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttm requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let _span = obs::span!("ttm.seq");
    let r = u.cols();
    let mf = fp.num_fibers();
    charge(x.order(), x.nnz(), mf, r);
    simd::note_dispatch(backend);
    let out_shape = x.shape().with_mode_size(mode, r as u32)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);

    let mut vals = vec![S::ZERO; mf * r];
    for f in 0..mf {
        let stripe = &mut vals[f * r..(f + 1) * r];
        for m in fp.fiber_range(f) {
            simd::axpy(backend, stripe, u.row(xk[m] as usize), xv[m]);
        }
    }
    let mut inds: Vec<Vec<u32>> = vec![Vec::new(); x.order()];
    for (md, arr) in inds.iter_mut().enumerate() {
        if md != mode {
            let src = x.mode_inds(md);
            *arr = (0..mf).map(|f| src[fp.fptr[f]]).collect();
        }
    }
    Ok(SemiSparseTensor::from_parts_unchecked(
        out_shape, mode, inds, vals,
    ))
}

/// Convenience COO-Ttm: sorts a copy if needed, computes fibers, runs the
/// parallel kernel.
pub fn ttm<S: Scalar>(
    x: &CooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<SemiSparseTensor<S>> {
    ttm_backend(x, u, mode, simd::current_backend())
}

/// [`ttm`] with an explicit kernel backend.
pub fn ttm_backend<S: Scalar>(
    x: &CooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<SemiSparseTensor<S>> {
    check_operand(x.shape(), mode, u)?;
    if x.sort_state().is_mode_last(x.order(), mode) {
        let fp = x.fibers_sorted(mode)?;
        ttm_prepared_backend(x, &fp, u, Schedule::default(), backend)
    } else {
        let mut c = x.clone();
        let fp = c.fibers(mode)?;
        ttm_prepared_backend(&c, &fp, u, Schedule::default(), backend)
    }
}

/// HiCOO-Ttm over a gHiCOO tensor (product mode uncompressed) with a
/// precomputed fiber partition. Output in sHiCOO with the input's blocks.
pub fn ttm_ghicoo<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
) -> Result<SemiSparseHicooTensor<S>> {
    ttm_ghicoo_backend(g, fp, u, sched, simd::current_backend())
}

/// [`ttm_ghicoo`] with an explicit kernel backend.
pub fn ttm_ghicoo_backend<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    u: &DenseMatrix<S>,
    sched: Schedule,
    backend: KernelBackend,
) -> Result<SemiSparseHicooTensor<S>> {
    let mode = fp.mode;
    check_operand(g.shape(), mode, u)?;
    let _span = obs::span!("ttm.ghicoo");
    let r = u.cols();
    let mf = fp.num_fibers();
    charge(g.order(), g.nnz(), mf, r);
    simd::note_dispatch(backend);
    let nb = g.num_blocks();
    let out_shape = g.shape().with_mode_size(mode, r as u32)?;
    let gv = g.vals();
    let gk = g.find(mode);

    let mut vals = crate::par::first_touch_filled(mf * r, S::ZERO);
    let body = |f: usize, stripe: &mut [S]| {
        for m in fp.fiber_range(f) {
            simd::axpy(backend, stripe, u.row(gk[m] as usize), gv[m]);
        }
    };
    match sched {
        Schedule::Static => {
            let workers = rayon::current_num_threads().max(1);
            let chunk = mf.div_ceil(workers).max(1);
            vals.par_chunks_mut(chunk * r)
                .enumerate()
                .for_each(|(c, slice)| {
                    for (off, stripe) in slice.chunks_mut(r).enumerate() {
                        body(c * chunk + off, stripe);
                    }
                });
        }
        Schedule::Dynamic { grain } => {
            vals.par_chunks_mut(r)
                .with_min_len(grain.max(1))
                .enumerate()
                .for_each(|(f, stripe)| body(f, stripe));
        }
    }

    let other_modes: Vec<usize> = (0..g.order()).filter(|&m| m != mode).collect();
    let bptr: Vec<u64> = fp.block_fiber_ptr.iter().map(|&f| f as u64).collect();
    let mut binds: Vec<Vec<u32>> = vec![Vec::new(); g.order()];
    let mut einds: Vec<Vec<u8>> = vec![Vec::new(); g.order()];
    for &md in &other_modes {
        binds[md] = (0..nb).map(|b| g.block_ind(b, md)).collect();
        let src = g.eind(md);
        einds[md] = (0..mf).map(|f| src[fp.fptr[f]]).collect();
    }

    Ok(SemiSparseHicooTensor::from_parts_unchecked(
        out_shape,
        g.block_bits(),
        mode,
        bptr,
        binds,
        einds,
        vals,
    ))
}

/// Convenience HiCOO-Ttm: re-blocks into the gHiCOO layout for `mode`,
/// computes fibers, and runs the parallel kernel.
pub fn ttm_hicoo<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<SemiSparseHicooTensor<S>> {
    ttm_hicoo_backend(h, u, mode, simd::current_backend())
}

/// [`ttm_hicoo`] with an explicit kernel backend.
pub fn ttm_hicoo_backend<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<SemiSparseHicooTensor<S>> {
    check_operand(h.shape(), mode, u)?;
    let g = GHicooTensor::from_coo_for_mode(&h.to_coo(), h.block_bits(), mode)?;
    let fp = g.fibers(mode)?;
    ttm_ghicoo_backend(&g, &fp, u, Schedule::default(), backend)
}

/// Scheduled HiCOO-Ttm: contracts `mode` directly on the HiCOO blocks using
/// the cached [`crate::sched::complement_schedule`], with no COO round-trip
/// and no gHiCOO re-blocking. Tensors of order above
/// [`MAX_SCHED_ORDER`](crate::kernels::ttv::MAX_SCHED_ORDER) fall back to
/// [`ttm_hicoo`].
pub fn ttm_hicoo_sched<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
) -> Result<SemiSparseHicooTensor<S>> {
    ttm_hicoo_sched_backend(h, u, mode, simd::current_backend())
}

/// [`ttm_hicoo_sched`] with an explicit kernel backend.
pub fn ttm_hicoo_sched_backend<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<SemiSparseHicooTensor<S>> {
    check_operand(h.shape(), mode, u)?;
    if h.order() > MAX_SCHED_ORDER {
        return ttm_hicoo_backend(h, u, mode, backend);
    }
    let cs = crate::sched::complement_schedule(h, mode);
    ttm_hicoo_sched_with_backend(h, u, mode, &cs, backend)
}

/// Scheduled HiCOO-Ttm against a prebuilt [`ComplementSchedule`]. Same
/// group structure as [`super::ttv::ttv_hicoo_sched_with`], but every output
/// fiber is a dense length-`R` stripe accumulated from `val * U[i_n, :]`.
/// Groups write disjoint output blocks, so there is no synchronization and
/// the accumulation order is fixed (bitwise-deterministic results).
pub fn ttm_hicoo_sched_with<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
    cs: &ComplementSchedule,
) -> Result<SemiSparseHicooTensor<S>> {
    ttm_hicoo_sched_with_backend(h, u, mode, cs, simd::current_backend())
}

/// [`ttm_hicoo_sched_with`] with an explicit kernel backend.
pub fn ttm_hicoo_sched_with_backend<S: Scalar>(
    h: &HicooTensor<S>,
    u: &DenseMatrix<S>,
    mode: usize,
    cs: &ComplementSchedule,
    backend: KernelBackend,
) -> Result<SemiSparseHicooTensor<S>> {
    check_operand(h.shape(), mode, u)?;
    if cs.mode() != mode {
        return Err(TensorError::InvalidStructure(format!(
            "schedule built for mode {}, kernel invoked for mode {mode}",
            cs.mode()
        )));
    }
    let order = h.order();
    if order > MAX_SCHED_ORDER {
        return Err(TensorError::InvalidStructure(format!(
            "scheduled Ttm supports order <= {MAX_SCHED_ORDER}, got {order}"
        )));
    }
    let _span = obs::span!("ttm.hicoo.scheduled");
    simd::note_dispatch(backend);
    let r = u.cols();
    let out_shape = h.shape().with_mode_size(mode, r as u32)?;
    let other: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    let key_width = other.len();
    let bits = h.block_bits();

    // One output block per group: fiber keys and folded `R`-stripes.
    let groups: Vec<(Vec<u64>, Vec<S>)> = (0..cs.num_groups())
        .into_par_iter()
        .map(|g| {
            let mut entries: Vec<(u64, u32, u32)> = Vec::new();
            for &b in cs.group_blocks(g) {
                let b = b as usize;
                let mode_base = (h.block_ind(b, mode) as usize) << bits;
                for z in h.block_range(b) {
                    let mut key = 0u64;
                    for (j, &m) in other.iter().enumerate() {
                        key |= (h.einds()[m][z] as u64) << ((key_width - 1 - j) * 8);
                    }
                    let idx = mode_base + h.einds()[mode][z] as usize;
                    entries.push((key, idx as u32, z as u32));
                }
            }
            entries.sort_unstable();
            let mut keys = Vec::new();
            let mut vals = Vec::new();
            let mut i = 0;
            while i < entries.len() {
                let key = entries[i].0;
                let start = vals.len();
                vals.resize(start + r, S::ZERO);
                while i < entries.len() && entries[i].0 == key {
                    let (_, idx, z) = entries[i];
                    simd::axpy(
                        backend,
                        &mut vals[start..start + r],
                        u.row(idx as usize),
                        h.vals()[z as usize],
                    );
                    i += 1;
                }
                keys.push(key);
            }
            (keys, vals)
        })
        .collect();

    // Sequential assembly in group order. sHiCOO keeps full-order index
    // arrays with the dense mode's left empty.
    let mut bptr: Vec<u64> = Vec::with_capacity(groups.len() + 1);
    bptr.push(0);
    let mut binds: Vec<Vec<u32>> = vec![Vec::new(); order];
    let mut einds: Vec<Vec<u8>> = vec![Vec::new(); order];
    let mut vals: Vec<S> = Vec::new();
    let mut nf = 0u64;
    for (g, (keys, gvals)) in groups.iter().enumerate() {
        let b0 = cs.group_blocks(g)[0] as usize;
        for (j, &m) in other.iter().enumerate() {
            binds[m].push(h.block_ind(b0, m));
            let shift = (key_width - 1 - j) * 8;
            for &key in keys {
                einds[m].push(((key >> shift) & 0xFF) as u8);
            }
        }
        vals.extend_from_slice(gvals);
        nf += keys.len() as u64;
        bptr.push(nf);
    }
    // The fiber count is only known after folding, so charge at the end.
    charge(order, h.nnz(), nf as usize, r);
    Ok(SemiSparseHicooTensor::from_parts_unchecked(
        out_shape, bits, mode, bptr, binds, einds, vals,
    ))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
            ],
        )
        .unwrap()
    }

    fn reference(x: &CooTensor<f32>, u: &DenseMatrix<f32>, mode: usize) -> BTreeMap<Vec<u32>, f64> {
        let mut out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (c, val) in x.iter_entries() {
            let k = c[mode] as usize;
            for rr in 0..u.cols() {
                let mut key = c.clone();
                key[mode] = rr as u32;
                *out.entry(key).or_insert(0.0) += (val * u[(k, rr)]) as f64;
            }
        }
        out.retain(|_, v| *v != 0.0);
        out
    }

    #[test]
    fn matches_dense_reference_every_mode() {
        let x = sample();
        for mode in 0..3 {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, 4, |i, j| (i + 2 * j + 1) as f32);
            let y = ttm(&x, &u, mode).unwrap();
            assert_eq!(y.dense_mode(), mode);
            assert_eq!(y.dense_size(), 4);
            assert_eq!(y.to_map(), reference(&x, &u, mode), "mode {mode}");
            assert!(y.validate().is_ok());
        }
    }

    #[test]
    fn seq_matches_parallel() {
        let mut x = sample();
        let fp = x.fibers(1).unwrap();
        let u = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32);
        let a = ttm_prepared(&x, &fp, &u, Schedule::Static).unwrap();
        let b = ttm_prepared_seq(&x, &fp, &u).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn output_fiber_count_matches_partition() {
        let mut x = sample();
        let fp = x.fibers(2).unwrap();
        let u = DenseMatrix::constant(5, 2, 1.0f32);
        let y = ttm_prepared(&x, &fp, &u, Schedule::default()).unwrap();
        assert_eq!(y.num_fibers(), fp.num_fibers());
        assert_eq!(y.num_values(), fp.num_fibers() * 2);
    }

    #[test]
    fn rejects_wrong_matrix_rows() {
        let x = sample();
        let u = DenseMatrix::constant(4, 2, 1.0f32);
        assert!(matches!(
            ttm(&x, &u, 2),
            Err(TensorError::OperandLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_zero_columns() {
        let x = sample();
        let u = DenseMatrix::constant(5, 0, 1.0f32);
        assert!(ttm(&x, &u, 2).is_err());
    }

    #[test]
    fn hicoo_matches_coo_every_mode() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        for mode in 0..3 {
            let rows = x.shape().dim(mode) as usize;
            let u = DenseMatrix::from_fn(rows, 4, |i, j| (i + j + 1) as f32);
            let y_coo = ttm(&x, &u, mode).unwrap();
            let y_h = ttm_hicoo(&h, &u, mode).unwrap();
            assert!(y_h.validate().is_ok(), "mode {mode}");
            assert_eq!(y_h.to_map(), y_coo.to_map(), "mode {mode}");
        }
    }

    #[test]
    fn sched_matches_hicoo_every_mode() {
        let x = sample();
        for bits in [1u8, 2, 7] {
            let h = HicooTensor::from_coo(&x, bits).unwrap();
            for mode in 0..3 {
                let rows = x.shape().dim(mode) as usize;
                let u = DenseMatrix::from_fn(rows, 4, |i, j| (i + j + 1) as f32);
                let expect = ttm_hicoo(&h, &u, mode).unwrap();
                let got = ttm_hicoo_sched(&h, &u, mode).unwrap();
                assert!(got.validate().is_ok(), "bits {bits} mode {mode}");
                assert_eq!(got.to_map(), expect.to_map(), "bits {bits} mode {mode}");
            }
        }
    }

    #[test]
    fn sched_is_bitwise_deterministic() {
        let entries: Vec<(Vec<u32>, f32)> = (0..2000)
            .map(|i| {
                (
                    vec![(i * 3) % 24, (i * 7) % 24, (i * 5) % 24],
                    0.5 * (i % 11) as f32,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![24, 24, 24]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for mode in 0..3 {
            let u = DenseMatrix::from_fn(24, 8, |i, j| (i * 8 + j) as f32 * 0.1 - 5.0);
            let a = ttm_hicoo_sched(&h, &u, mode).unwrap();
            let b = crate::par::with_threads(4, || ttm_hicoo_sched(&h, &u, mode).unwrap());
            assert_eq!(a.vals(), b.vals(), "mode {mode} not bitwise equal");
        }
    }

    #[test]
    fn sched_handles_empty_tensor() {
        let x = CooTensor::<f32>::empty(Shape::new(vec![4, 4, 4]));
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        let u = DenseMatrix::constant(4, 3, 1.0f32);
        let y = ttm_hicoo_sched(&h, &u, 0).unwrap();
        assert_eq!(y.num_fibers(), 0);
        assert!(y.validate().is_ok());
    }

    #[test]
    fn sched_rejects_mode_mismatched_schedule() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        let cs = crate::sched::complement_schedule(&h, 2);
        let u = DenseMatrix::constant(4, 2, 1.0f32);
        assert!(ttm_hicoo_sched_with(&h, &u, 1, &cs).is_err());
    }

    #[test]
    fn backends_are_bitwise_identical() {
        use crate::simd::KernelBackend::{Scalar, Simd};
        let entries: Vec<(Vec<u32>, f32)> = (0..2500)
            .map(|i| {
                (
                    vec![(i * 3) % 18, (i * 7) % 18, (i * 5) % 18],
                    0.25 * ((i % 15) as f32) - 1.5,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![18, 18, 18]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        // Ranks spanning partial lanes, exact lanes, and lanes plus a tail.
        for rank in [3usize, 8, 17] {
            for mode in 0..3 {
                let u = DenseMatrix::from_fn(18, rank, |i, j| (i * rank + j) as f32 * 0.1 - 4.0);
                let a = ttm_backend(&x, &u, mode, Scalar).unwrap();
                let b = ttm_backend(&x, &u, mode, Simd).unwrap();
                assert_eq!(
                    a.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "coo rank {rank} mode {mode}"
                );
                let hs = ttm_hicoo_sched_backend(&h, &u, mode, Scalar).unwrap();
                let hv = ttm_hicoo_sched_backend(&h, &u, mode, Simd).unwrap();
                assert_eq!(
                    hs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    hv.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "hicoo sched rank {rank} mode {mode}"
                );
            }
        }
    }

    #[test]
    fn fourth_order_ttm() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 3, 4, 5]),
            vec![
                (vec![0, 1, 2, 3], 2.0f32),
                (vec![0, 1, 2, 4], 3.0),
                (vec![1, 2, 0, 0], 4.0),
            ],
        )
        .unwrap();
        let u = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f32);
        let y = ttm(&x, &u, 1).unwrap();
        assert_eq!(y.order(), 4);
        let m = y.to_map();
        // Entry (0,1,2,3): row 1 of u = [1, 2].
        assert_eq!(m[&vec![0, 0, 2, 3]], 2.0);
        assert_eq!(m[&vec![0, 1, 2, 3]], 4.0);
    }
}
