//! Ttv — tensor-times-vector in mode `n` (paper §2.3, Algorithm 1).
//!
//! By the sparse-dense property (§3.2.1) the output of a mode-`n` Ttv has
//! one nonzero per mode-`n` fiber of the input, with the same indices in the
//! remaining modes. Pre-processing computes the fiber pointer `fptr` and the
//! output is pre-allocated with `M_F` nonzeros, so parallel fibers never
//! race — this is the COO-Ttv-OMP algorithm first proposed in the paper.
//!
//! The HiCOO-side implementation follows §3.4.1: the input is represented in
//! gHiCOO with the product mode left uncompressed, which keeps every fiber
//! inside a single block and produces the output directly in HiCOO.

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::analysis;
use crate::coo::{CooTensor, FiberPartition, SortState};
use crate::dense::DenseVector;
use crate::error::{Result, TensorError};
use crate::hicoo::{GHicooTensor, GhFiberPartition, HicooTensor};
use crate::par::{par_for_each_indexed, Schedule};
use crate::scalar::Scalar;
use crate::sched::ComplementSchedule;
use crate::shape::Shape;
use crate::simd::{self, KernelBackend};

/// Largest tensor order for which the scheduled HiCOO contraction kernels
/// can pack the `order - 1` surviving 8-bit element coordinates of a fiber
/// into one `u64` sort key. Larger orders fall back to the re-blocking path.
pub(crate) const MAX_SCHED_ORDER: usize = 9;

fn check_operand<S: Scalar>(shape: &Shape, mode: usize, v: &DenseVector<S>) -> Result<()> {
    shape.check_mode(mode)?;
    if shape.order() < 2 {
        return Err(TensorError::OrderTooSmall {
            min: 2,
            actual: shape.order(),
        });
    }
    if v.len() != shape.dim(mode) as usize {
        return Err(TensorError::OperandLengthMismatch {
            expected: shape.dim(mode) as usize,
            actual: v.len(),
        });
    }
    Ok(())
}

/// Charge one Ttv invocation over `m` nonzeros folding into `mf` output
/// fibers (`analysis::ttv_cost`).
fn charge(order: usize, m: usize, mf: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::ttv_cost(order, m as u64, mf as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// COO-Ttv over a mode-last-sorted tensor with a precomputed fiber
/// partition, parallel over fibers (Algorithm 1).
pub fn ttv_prepared<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    v: &DenseVector<S>,
    sched: Schedule,
) -> Result<CooTensor<S>> {
    ttv_prepared_backend(x, fp, v, sched, simd::current_backend())
}

/// [`ttv_prepared`] with an explicit kernel backend.
pub fn ttv_prepared_backend<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    v: &DenseVector<S>,
    sched: Schedule,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, v)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttv requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let _span = obs::span!("ttv.coo");
    let mf = fp.num_fibers();
    charge(x.order(), x.nnz(), mf);
    simd::note_dispatch(backend);
    let out_shape = x.shape().without_mode(mode)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);
    let vv = v.as_slice();

    let mut vals = crate::par::first_touch_filled(mf, S::ZERO);
    par_for_each_indexed(&mut vals, sched, |f, out| {
        let r = fp.fiber_range(f);
        *out = simd::fiber_dot(backend, &xv[r.clone()], &xk[r], vv);
    });

    let other_modes: Vec<usize> = (0..x.order()).filter(|&m| m != mode).collect();
    let out_inds: Vec<Vec<u32>> = other_modes
        .iter()
        .map(|&md| {
            let src = x.mode_inds(md);
            (0..mf)
                .into_par_iter()
                .with_min_len(1024)
                .map(|f| src[fp.fptr[f]])
                .collect()
        })
        .collect();

    let order = out_shape.order();
    Ok(CooTensor::from_parts_unchecked(
        out_shape,
        out_inds,
        vals,
        SortState::Lexicographic((0..order).collect()),
    ))
}

/// Sequential COO-Ttv baseline over a prepared tensor.
pub fn ttv_prepared_seq<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    v: &DenseVector<S>,
) -> Result<CooTensor<S>> {
    ttv_prepared_seq_backend(x, fp, v, simd::current_backend())
}

/// [`ttv_prepared_seq`] with an explicit kernel backend.
pub fn ttv_prepared_seq_backend<S: Scalar>(
    x: &CooTensor<S>,
    fp: &FiberPartition,
    v: &DenseVector<S>,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    let mode = fp.mode;
    check_operand(x.shape(), mode, v)?;
    if !x.sort_state().is_mode_last(x.order(), mode) {
        return Err(TensorError::InvalidStructure(format!(
            "Ttv requires the tensor sorted with mode {mode} innermost"
        )));
    }
    let _span = obs::span!("ttv.seq");
    let mf = fp.num_fibers();
    charge(x.order(), x.nnz(), mf);
    simd::note_dispatch(backend);
    let out_shape = x.shape().without_mode(mode)?;
    let xv = x.vals();
    let xk = x.mode_inds(mode);
    let vv = v.as_slice();

    let mut vals = Vec::with_capacity(mf);
    for f in 0..mf {
        let r = fp.fiber_range(f);
        vals.push(simd::fiber_dot(backend, &xv[r.clone()], &xk[r], vv));
    }
    let other_modes: Vec<usize> = (0..x.order()).filter(|&m| m != mode).collect();
    let out_inds: Vec<Vec<u32>> = other_modes
        .iter()
        .map(|&md| {
            let src = x.mode_inds(md);
            (0..mf).map(|f| src[fp.fptr[f]]).collect()
        })
        .collect();
    let order = out_shape.order();
    Ok(CooTensor::from_parts_unchecked(
        out_shape,
        out_inds,
        vals,
        SortState::Lexicographic((0..order).collect()),
    ))
}

/// Convenience COO-Ttv: sorts a copy of the input if needed, computes the
/// fiber partition, and runs the parallel kernel.
///
/// # Examples
/// ```
/// use tenbench_core::prelude::*;
/// use tenbench_core::kernels::ttv::ttv;
///
/// // X is 2x3 with entries X[0,1] = 2 and X[1,2] = 3.
/// let x = CooTensor::<f32>::from_entries(
///     Shape::new(vec![2, 3]),
///     vec![(vec![0, 1], 2.0), (vec![1, 2], 3.0)],
/// )?;
/// // Contract mode 1 with v = [1, 10, 100].
/// let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
/// let y = ttv(&x, &v, 1)?;
/// assert_eq!(y.to_map()[&vec![0]], 20.0);
/// assert_eq!(y.to_map()[&vec![1]], 300.0);
/// # Ok::<(), TensorError>(())
/// ```
pub fn ttv<S: Scalar>(x: &CooTensor<S>, v: &DenseVector<S>, mode: usize) -> Result<CooTensor<S>> {
    ttv_backend(x, v, mode, simd::current_backend())
}

/// [`ttv`] with an explicit kernel backend.
pub fn ttv_backend<S: Scalar>(
    x: &CooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<CooTensor<S>> {
    check_operand(x.shape(), mode, v)?;
    if x.sort_state().is_mode_last(x.order(), mode) {
        let fp = x.fibers_sorted(mode)?;
        ttv_prepared_backend(x, &fp, v, Schedule::default(), backend)
    } else {
        let mut c = x.clone();
        let fp = c.fibers(mode)?;
        ttv_prepared_backend(&c, &fp, v, Schedule::default(), backend)
    }
}

/// HiCOO-Ttv over a gHiCOO tensor whose only uncompressed mode is the
/// product mode, with a precomputed fiber partition. The output is a HiCOO
/// tensor of order `N-1` whose blocks mirror the input's blocks.
pub fn ttv_ghicoo<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    v: &DenseVector<S>,
    sched: Schedule,
) -> Result<HicooTensor<S>> {
    ttv_ghicoo_backend(g, fp, v, sched, simd::current_backend())
}

/// [`ttv_ghicoo`] with an explicit kernel backend.
pub fn ttv_ghicoo_backend<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    v: &DenseVector<S>,
    sched: Schedule,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    let mode = fp.mode;
    check_operand(g.shape(), mode, v)?;
    let _span = obs::span!("ttv.ghicoo");
    let mf = fp.num_fibers();
    charge(g.order(), g.nnz(), mf);
    simd::note_dispatch(backend);
    let nb = g.num_blocks();
    let out_shape = g.shape().without_mode(mode)?;
    let out_order = out_shape.order();
    let other_modes: Vec<usize> = (0..g.order()).filter(|&m| m != mode).collect();

    // Value computation: one dot product per fiber (same loop as COO).
    let gv = g.vals();
    let gk = g.find(mode);
    let vv = v.as_slice();
    let mut vals = crate::par::first_touch_filled(mf, S::ZERO);
    par_for_each_indexed(&mut vals, sched, |f, out| {
        let r = fp.fiber_range(f);
        *out = simd::fiber_dot(backend, &gv[r.clone()], &gk[r], vv);
    });

    // Output structure: block b of the output holds the fibers of input
    // block b; block indices are the compressed block coords, element
    // indices are the compressed element coords at each fiber start.
    let bptr: Vec<u64> = fp.block_fiber_ptr.iter().map(|&f| f as u64).collect();
    let binds: Vec<Vec<u32>> = other_modes
        .iter()
        .map(|&md| (0..nb).map(|b| g.block_ind(b, md)).collect())
        .collect();
    let einds: Vec<Vec<u8>> = other_modes
        .iter()
        .map(|&md| {
            let src = g.eind(md);
            (0..mf).map(|f| src[fp.fptr[f]]).collect()
        })
        .collect();

    debug_assert_eq!(binds.len(), out_order);
    Ok(HicooTensor::from_parts_unchecked(
        out_shape,
        g.block_bits(),
        bptr,
        binds,
        einds,
        vals,
    ))
}

/// Sequential HiCOO-Ttv baseline.
pub fn ttv_ghicoo_seq<S: Scalar>(
    g: &GHicooTensor<S>,
    fp: &GhFiberPartition,
    v: &DenseVector<S>,
) -> Result<HicooTensor<S>> {
    // The parallel version is deterministic per fiber; reuse it on one lane
    // by running with a sequential schedule over a local loop.
    let mode = fp.mode;
    check_operand(g.shape(), mode, v)?;
    let mf = fp.num_fibers();
    let gv = g.vals();
    let gk = g.find(mode);
    let vv = v.as_slice();
    let backend = simd::current_backend();
    let mut vals = vec![S::ZERO; mf];
    for (f, out) in vals.iter_mut().enumerate() {
        let r = fp.fiber_range(f);
        *out = simd::fiber_dot(backend, &gv[r.clone()], &gk[r], vv);
    }
    // Assemble through the parallel path's structure code by substituting
    // the computed values.
    let mut out = ttv_ghicoo(g, fp, v, Schedule::default())?;
    out.vals_mut().copy_from_slice(&vals);
    Ok(out)
}

/// Convenience HiCOO-Ttv: re-blocks the input into the gHiCOO layout for
/// `mode` (the paper's pre-processing), computes fibers, and runs the
/// parallel kernel.
pub fn ttv_hicoo<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
) -> Result<HicooTensor<S>> {
    ttv_hicoo_backend(h, v, mode, simd::current_backend())
}

/// [`ttv_hicoo`] with an explicit kernel backend.
pub fn ttv_hicoo_backend<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    check_operand(h.shape(), mode, v)?;
    let g = GHicooTensor::from_coo_for_mode(&h.to_coo(), h.block_bits(), mode)?;
    let fp = g.fibers(mode)?;
    ttv_ghicoo_backend(&g, &fp, v, Schedule::default(), backend)
}

/// Scheduled HiCOO-Ttv: contracts `mode` directly on the HiCOO blocks using
/// the cached [`crate::sched::complement_schedule`], with no COO round-trip
/// and no gHiCOO re-blocking (the pre-processing `ttv_hicoo` pays on every
/// call). Tensors of order above [`MAX_SCHED_ORDER`] fall back to
/// [`ttv_hicoo`].
pub fn ttv_hicoo_sched<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
) -> Result<HicooTensor<S>> {
    ttv_hicoo_sched_backend(h, v, mode, simd::current_backend())
}

/// [`ttv_hicoo_sched`] with an explicit kernel backend.
pub fn ttv_hicoo_sched_backend<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    check_operand(h.shape(), mode, v)?;
    if h.order() > MAX_SCHED_ORDER {
        return ttv_hicoo_backend(h, v, mode, backend);
    }
    let cs = crate::sched::complement_schedule(h, mode);
    ttv_hicoo_sched_with_backend(h, v, mode, &cs, backend)
}

/// Scheduled HiCOO-Ttv against a prebuilt [`ComplementSchedule`].
///
/// Each schedule group collects the blocks that share every block
/// coordinate except mode `n` — exactly the blocks whose nonzeros fold into
/// one output block. Groups are processed fully in parallel (their outputs
/// are disjoint by construction); within a group, fibers are identified by
/// packing the surviving element coordinates into a `u64` key, sorting, and
/// folding equal-key runs in a fixed order, so the result is
/// bitwise-deterministic across runs and thread counts.
pub fn ttv_hicoo_sched_with<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
    cs: &ComplementSchedule,
) -> Result<HicooTensor<S>> {
    ttv_hicoo_sched_with_backend(h, v, mode, cs, simd::current_backend())
}

/// [`ttv_hicoo_sched_with`] with an explicit kernel backend.
pub fn ttv_hicoo_sched_with_backend<S: Scalar>(
    h: &HicooTensor<S>,
    v: &DenseVector<S>,
    mode: usize,
    cs: &ComplementSchedule,
    backend: KernelBackend,
) -> Result<HicooTensor<S>> {
    check_operand(h.shape(), mode, v)?;
    if cs.mode() != mode {
        return Err(TensorError::InvalidStructure(format!(
            "schedule built for mode {}, kernel invoked for mode {mode}",
            cs.mode()
        )));
    }
    let order = h.order();
    if order > MAX_SCHED_ORDER {
        return Err(TensorError::InvalidStructure(format!(
            "scheduled Ttv supports order <= {MAX_SCHED_ORDER}, got {order}"
        )));
    }
    let _span = obs::span!("ttv.hicoo.scheduled");
    simd::note_dispatch(backend);
    let out_shape = h.shape().without_mode(mode)?;
    let other: Vec<usize> = (0..order).filter(|&m| m != mode).collect();
    let out_order = other.len();
    let bits = h.block_bits();
    let vv = v.as_slice();

    // One output block per group: fiber keys (packed surviving element
    // coords, lexicographic order) and the folded dot-product values.
    let groups: Vec<(Vec<u64>, Vec<S>)> = (0..cs.num_groups())
        .into_par_iter()
        .map(|g| {
            // (key, input value index in mode, nonzero position).
            let mut entries: Vec<(u64, u32, u32)> = Vec::new();
            for &b in cs.group_blocks(g) {
                let b = b as usize;
                let mode_base = (h.block_ind(b, mode) as usize) << bits;
                for z in h.block_range(b) {
                    let mut key = 0u64;
                    for (j, &m) in other.iter().enumerate() {
                        key |= (h.einds()[m][z] as u64) << ((out_order - 1 - j) * 8);
                    }
                    let idx = mode_base + h.einds()[mode][z] as usize;
                    entries.push((key, idx as u32, z as u32));
                }
            }
            entries.sort_unstable();
            let mut keys = Vec::new();
            let mut vals = Vec::new();
            // Equal-key runs gathered into contiguous buffers so the dot
            // product can use the vectorized primitive.
            let mut rvals: Vec<S> = Vec::new();
            let mut ridx: Vec<u32> = Vec::new();
            let mut i = 0;
            while i < entries.len() {
                let key = entries[i].0;
                rvals.clear();
                ridx.clear();
                while i < entries.len() && entries[i].0 == key {
                    let (_, idx, z) = entries[i];
                    rvals.push(h.vals()[z as usize]);
                    ridx.push(idx);
                    i += 1;
                }
                keys.push(key);
                vals.push(simd::fiber_dot(backend, &rvals, &ridx, vv));
            }
            (keys, vals)
        })
        .collect();

    // Sequential assembly in group order (groups are lexicographically
    // sorted by surviving block coords, keys sorted within each group).
    let mut bptr: Vec<u64> = Vec::with_capacity(groups.len() + 1);
    bptr.push(0);
    let mut binds: Vec<Vec<u32>> = vec![Vec::with_capacity(groups.len()); out_order];
    let mut einds: Vec<Vec<u8>> = vec![Vec::new(); out_order];
    let mut vals: Vec<S> = Vec::new();
    for (g, (keys, gvals)) in groups.iter().enumerate() {
        let b0 = cs.group_blocks(g)[0] as usize;
        for (j, &m) in other.iter().enumerate() {
            binds[j].push(h.block_ind(b0, m));
            let shift = (out_order - 1 - j) * 8;
            for &key in keys {
                einds[j].push(((key >> shift) & 0xFF) as u8);
            }
        }
        vals.extend_from_slice(gvals);
        bptr.push(vals.len() as u64);
    }
    // The fiber count is only known after folding, so charge at the end.
    charge(order, h.nnz(), vals.len());
    Ok(HicooTensor::from_parts_unchecked(
        out_shape, bits, bptr, binds, einds, vals,
    ))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![3, 4, 5]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![1, 2, 1], 3.0),
                (vec![2, 3, 0], 4.0),
                (vec![2, 3, 4], 5.0),
            ],
        )
        .unwrap()
    }

    /// Dense reference Ttv.
    fn reference(x: &CooTensor<f32>, v: &DenseVector<f32>, mode: usize) -> BTreeMap<Vec<u32>, f64> {
        let mut out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (c, val) in x.iter_entries() {
            let mut key = c.clone();
            let k = key.remove(mode) as usize;
            *out.entry(key).or_insert(0.0) += (val * v[k]) as f64;
        }
        out.retain(|_, v| *v != 0.0);
        out
    }

    #[test]
    fn matches_dense_reference_every_mode() {
        let x = sample();
        for mode in 0..3 {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i + 1) as f32);
            let y = ttv(&x, &v, mode).unwrap();
            let mut got = y.to_map();
            got.retain(|_, v| *v != 0.0);
            assert_eq!(got, reference(&x, &v, mode), "mode {mode}");
            assert_eq!(y.order(), 2);
        }
    }

    #[test]
    fn output_has_one_nonzero_per_fiber() {
        let mut x = sample();
        let fp = x.fibers(2).unwrap();
        let v = DenseVector::constant(5, 1.0);
        let y = ttv_prepared(&x, &fp, &v, Schedule::Static).unwrap();
        assert_eq!(y.nnz(), fp.num_fibers());
    }

    #[test]
    fn seq_matches_parallel() {
        let mut x = sample();
        let fp = x.fibers(1).unwrap();
        let v = DenseVector::from_fn(4, |i| (2 * i) as f32);
        let a = ttv_prepared(&x, &fp, &v, Schedule::Dynamic { grain: 1 }).unwrap();
        let b = ttv_prepared_seq(&x, &fp, &v).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_wrong_vector_length() {
        let x = sample();
        let v = DenseVector::constant(3, 1.0);
        assert!(matches!(
            ttv(&x, &v, 2),
            Err(TensorError::OperandLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_mode_and_low_order() {
        let x = sample();
        let v = DenseVector::constant(5, 1.0f32);
        assert!(matches!(
            ttv(&x, &v, 3),
            Err(TensorError::ModeOutOfRange { .. })
        ));
    }

    #[test]
    fn prepared_requires_matching_sort() {
        let mut x = sample();
        let fp = x.fibers(2).unwrap();
        x.sort_mode_last(0); // wrong order now
        let v = DenseVector::constant(5, 1.0f32);
        assert!(ttv_prepared(&x, &fp, &v, Schedule::Static).is_err());
    }

    #[test]
    fn hicoo_matches_coo_every_mode() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        for mode in 0..3 {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i + 1) as f32);
            let y_coo = ttv(&x, &v, mode).unwrap();
            let y_h = ttv_hicoo(&h, &v, mode).unwrap();
            assert!(y_h.validate().is_ok(), "mode {mode}");
            assert_eq!(y_h.to_map(), y_coo.to_map(), "mode {mode}");
        }
    }

    #[test]
    fn ghicoo_seq_matches_parallel() {
        let x = sample();
        let g = GHicooTensor::from_coo_for_mode(&x, 1, 2).unwrap();
        let fp = g.fibers(2).unwrap();
        let v = DenseVector::from_fn(5, |i| (i as f32) - 2.0);
        let a = ttv_ghicoo(&g, &fp, &v, Schedule::Static).unwrap();
        let b = ttv_ghicoo_seq(&g, &fp, &v).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sched_matches_hicoo_every_mode() {
        let x = sample();
        for bits in [1u8, 2, 7] {
            let h = HicooTensor::from_coo(&x, bits).unwrap();
            for mode in 0..3 {
                let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i + 1) as f32);
                let expect = ttv_hicoo(&h, &v, mode).unwrap();
                let got = ttv_hicoo_sched(&h, &v, mode).unwrap();
                assert!(got.validate().is_ok(), "bits {bits} mode {mode}");
                assert_eq!(got.to_map(), expect.to_map(), "bits {bits} mode {mode}");
            }
        }
    }

    #[test]
    fn sched_is_bitwise_deterministic_and_contended() {
        // Dense-ish tensor: many nonzeros fold into each output fiber.
        let entries: Vec<(Vec<u32>, f32)> = (0..3000)
            .map(|i| {
                (
                    vec![(i * 3) % 20, (i * 7) % 20, (i * 11) % 20],
                    0.25 * (i % 13) as f32,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![20, 20, 20]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for mode in 0..3 {
            let v = DenseVector::from_fn(20, |i| (i as f32) - 9.5);
            let a = ttv_hicoo_sched(&h, &v, mode).unwrap();
            let b = crate::par::with_threads(4, || ttv_hicoo_sched(&h, &v, mode).unwrap());
            assert_eq!(a.vals(), b.vals(), "mode {mode} not bitwise equal");
            let expect = ttv_hicoo(&h, &v, mode).unwrap();
            let (am, em) = (a.to_map(), expect.to_map());
            assert_eq!(am.len(), em.len());
            for (k, &val) in &am {
                assert!(
                    crate::scalar::approx_eq(val, em[k], 1e-3),
                    "mode {mode}: {val} vs {}",
                    em[k]
                );
            }
        }
    }

    #[test]
    fn sched_handles_empty_tensor() {
        let x = CooTensor::<f32>::empty(Shape::new(vec![4, 4, 4]));
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        let v = DenseVector::constant(4, 1.0);
        let y = ttv_hicoo_sched(&h, &v, 1).unwrap();
        assert_eq!(y.nnz(), 0);
        assert!(y.validate().is_ok());
    }

    #[test]
    fn sched_rejects_mode_mismatched_schedule() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        let cs = crate::sched::complement_schedule(&h, 0);
        let v = DenseVector::constant(4, 1.0f32);
        assert!(ttv_hicoo_sched_with(&h, &v, 1, &cs).is_err());
    }

    #[test]
    fn backends_are_bitwise_identical() {
        use crate::simd::KernelBackend::{Scalar, Simd};
        // Long fibers so the vectorized dot product exercises full lanes
        // plus a scalar tail.
        let entries: Vec<(Vec<u32>, f32)> = (0..4000)
            .map(|i| {
                (
                    vec![(i * 3) % 10, (i * 7) % 10, i % 40],
                    0.5 * ((i % 13) as f32) - 3.0,
                )
            })
            .collect();
        let x = CooTensor::from_entries(Shape::new(vec![10, 10, 40]), entries).unwrap();
        let h = HicooTensor::from_coo(&x, 2).unwrap();
        for mode in 0..3 {
            let v = DenseVector::from_fn(x.shape().dim(mode) as usize, |i| (i as f32) * 0.25 - 2.0);
            let a = ttv_backend(&x, &v, mode, Scalar).unwrap();
            let b = ttv_backend(&x, &v, mode, Simd).unwrap();
            assert_eq!(
                a.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "coo mode {mode}"
            );
            let hs = ttv_hicoo_sched_backend(&h, &v, mode, Scalar).unwrap();
            let hv = ttv_hicoo_sched_backend(&h, &v, mode, Simd).unwrap();
            assert_eq!(
                hs.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                hv.vals().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "hicoo sched mode {mode}"
            );
            let gs = ttv_hicoo_backend(&h, &v, mode, Scalar).unwrap();
            let gv = ttv_hicoo_backend(&h, &v, mode, Simd).unwrap();
            assert_eq!(gs.vals(), gv.vals(), "ghicoo mode {mode}");
        }
    }

    #[test]
    fn fourth_order_ttv() {
        let x = CooTensor::from_entries(
            Shape::new(vec![2, 3, 4, 5]),
            vec![
                (vec![0, 1, 2, 3], 2.0f32),
                (vec![0, 1, 2, 4], 3.0),
                (vec![1, 2, 0, 0], 4.0),
            ],
        )
        .unwrap();
        let v = DenseVector::from_fn(5, |i| (i + 1) as f32);
        let y = ttv(&x, &v, 3).unwrap();
        assert_eq!(y.order(), 3);
        let m = y.to_map();
        assert_eq!(m[&vec![0, 1, 2]], (2.0 * 4.0 + 3.0 * 5.0));
        assert_eq!(m[&vec![1, 2, 0]], 4.0);
    }
}
