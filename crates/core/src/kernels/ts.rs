//! Ts — tensor–scalar operations (paper §2.2).
//!
//! One loop over the nonzero values; the output pattern equals the input
//! pattern, so pre-processing only clones the index arrays. The paper
//! implements Tsa and Tsm ("sufficient to support them all"); this module
//! supports all four operations, with division by a zero scalar reported as
//! an error rather than silently producing infinities.

use rayon::prelude::*;

use tenbench_obs as obs;

use crate::analysis;
use crate::coo::CooTensor;
use crate::error::{Result, TensorError};
use crate::hicoo::HicooTensor;
use crate::scalar::Scalar;

use super::EwOp;

fn check_scalar<S: Scalar>(op: EwOp, s: S) -> Result<()> {
    if op == EwOp::Div && s == S::ZERO {
        Err(TensorError::DivisionByZero)
    } else {
        Ok(())
    }
}

/// Charge one Ts invocation over `m` nonzeros (`analysis::ts_cost`).
fn charge(m: usize) {
    if obs::counters::counters_enabled() {
        let c = analysis::ts_cost(m as u64);
        obs::counters::FLOPS.add(c.flops);
        obs::counters::BYTES.add(c.bytes);
        obs::counters::KERNEL_CALLS.add(1);
    }
}

/// Tensor–scalar operation, parallel over nonzeros (COO-Ts-OMP).
pub fn ts<S: Scalar>(x: &CooTensor<S>, s: S, op: EwOp) -> Result<CooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.coo");
    charge(x.nnz());
    let vals: Vec<S> = x
        .vals()
        .par_iter()
        .with_min_len(1024)
        .map(|&a| op.apply(a, s))
        .collect();
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Sequential tensor–scalar baseline.
pub fn ts_seq<S: Scalar>(x: &CooTensor<S>, s: S, op: EwOp) -> Result<CooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.seq");
    charge(x.nnz());
    let vals: Vec<S> = x.vals().iter().map(|&a| op.apply(a, s)).collect();
    Ok(CooTensor::from_parts_unchecked(
        x.shape().clone(),
        x.inds().to_vec(),
        vals,
        x.sort_state().clone(),
    ))
}

/// Tensor–scalar over HiCOO (HiCOO-Ts-OMP): identical value loop, output in
/// HiCOO with the input's block structure.
pub fn ts_hicoo<S: Scalar>(x: &HicooTensor<S>, s: S, op: EwOp) -> Result<HicooTensor<S>> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.hicoo");
    charge(x.nnz());
    let mut out = x.clone();
    out.vals_mut()
        .par_iter_mut()
        .with_min_len(1024)
        .for_each(|a| *a = op.apply(*a, s));
    Ok(out)
}

/// In-place variant reusing the input's allocation (the form tensor methods
/// use when the operand is a scratch tensor).
pub fn ts_in_place<S: Scalar>(x: &mut CooTensor<S>, s: S, op: EwOp) -> Result<()> {
    check_scalar(op, s)?;
    let _span = obs::span!("ts.in_place");
    charge(x.nnz());
    x.vals_mut()
        .par_iter_mut()
        .with_min_len(1024)
        .for_each(|a| *a = op.apply(*a, s));
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::shape::Shape;

    use super::*;

    fn sample() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![
                (vec![0, 0, 0], 2.0),
                (vec![1, 2, 3], 4.0),
                (vec![3, 3, 3], -6.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_ops_apply_elementwise() {
        let x = sample();
        assert_eq!(ts(&x, 2.0, EwOp::Add).unwrap().vals(), &[4.0, 6.0, -4.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Sub).unwrap().vals(), &[0.0, 2.0, -8.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Mul).unwrap().vals(), &[4.0, 8.0, -12.0]);
        assert_eq!(ts(&x, 2.0, EwOp::Div).unwrap().vals(), &[1.0, 2.0, -3.0]);
    }

    #[test]
    fn seq_matches_parallel() {
        let x = sample();
        for op in [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div] {
            assert_eq!(
                ts(&x, 3.5, op).unwrap().vals(),
                ts_seq(&x, 3.5, op).unwrap().vals()
            );
        }
    }

    #[test]
    fn pattern_and_sort_state_preserved() {
        let x = sample();
        let y = ts(&x, 1.0, EwOp::Mul).unwrap();
        assert!(x.same_pattern(&y));
        assert_eq!(x.sort_state(), y.sort_state());
    }

    #[test]
    fn division_by_zero_scalar_is_an_error() {
        let x = sample();
        assert_eq!(ts(&x, 0.0, EwOp::Div), Err(TensorError::DivisionByZero));
    }

    #[test]
    fn hicoo_matches_coo() {
        let x = sample();
        let h = HicooTensor::from_coo(&x, 1).unwrap();
        let hy = ts_hicoo(&h, 5.0, EwOp::Mul).unwrap();
        let y = ts(&x, 5.0, EwOp::Mul).unwrap();
        assert_eq!(hy.to_map(), y.to_map());
        assert!(hy.same_pattern(&h));
    }

    #[test]
    fn in_place_updates_values() {
        let mut x = sample();
        ts_in_place(&mut x, 10.0, EwOp::Add).unwrap();
        assert_eq!(x.vals(), &[12.0, 14.0, 4.0]);
    }
}
